//! `.drb` replay bundles: self-contained, tamper-evident run artifacts.
//!
//! A bundle freezes everything needed to re-execute and cross-check a
//! recorded run on another machine: the trace (in `.dtb` binary form), the
//! filesystem images the run started from and ended with, and the complete
//! recording configuration — chaos/crash/retry/durability seeds, mapper
//! settings, resume/salvage flags — plus the per-task outcomes the run
//! produced. Sections are chained with SHA-256 digests (each section's
//! digest covers the previous section's digest), so truncation, reordering
//! and any single flipped byte are all detected by [`ReplayBundle::verify_bytes`]
//! without re-executing anything.
//!
//! ## Wire format
//!
//! ```text
//! magic: 89 'D' 'R' 'B' 0D 0A 1A <version=01>
//! section*: tag:u8  name:str  payload:bytes  digest:[u8;32]
//! footer:   tag=00  chain:[u8;32]
//! ```
//!
//! `str` and `bytes` are varint-length-prefixed ([`dayu_trace::wire`]).
//! `digest = SHA256(prev_digest ‖ tag ‖ len(name) ‖ name ‖ len(payload) ‖
//! payload)` with a zero block as the initial chain value; the footer
//! repeats the final chain value. Section order is fixed: manifest, trace,
//! initial images (sorted by name), final images (sorted by name).

use crate::retry::RetryPolicy;
use crate::runner::{RecordOptions, TaskOutcome};
use dayu_hdf::Durability;
use dayu_mapper::MapperConfig;
use dayu_trace::sha256::{hex, Digest, Sha256};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::{Clock, ManualClock};
use dayu_trace::wire;
use dayu_vfd::{CrashSchedule, FaultSchedule, IoEngineConfig, IoEngineMode, MemFs};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Cursor, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Bundle file magic: non-ASCII guard byte, format name, CRLF/EOF tramplers
/// (detect text-mode mangling), then the format version.
pub const MAGIC: [u8; 8] = [0x89, b'D', b'R', b'B', 0x0D, 0x0A, 0x1A, 0x01];

const SEC_END: u8 = 0x00;
const SEC_MANIFEST: u8 = 0x01;
const SEC_TRACE: u8 = 0x02;
const SEC_INITIAL: u8 = 0x03;
const SEC_FINAL: u8 = 0x04;

/// Everything that can go wrong reading, verifying or decoding a bundle.
/// Every variant names the section or context at fault — corrupt input
/// yields a precise error, never a panic.
#[derive(Debug)]
pub enum BundleError {
    /// Underlying I/O failure (file missing, permission, …).
    Io(io::Error),
    /// The first 8 bytes are not a `.drb` header.
    BadMagic,
    /// A `.drb` of a format version this build does not understand.
    UnsupportedVersion(u8),
    /// The input ended mid-structure; `section` says where.
    Truncated { section: String },
    /// A section's recorded digest does not match its content.
    HashMismatch {
        section: String,
        expected: String,
        actual: String,
    },
    /// The footer's chain value disagrees with the recomputed chain.
    ChainMismatch { expected: String, actual: String },
    /// A section decoded to nonsense; `detail` explains.
    Malformed { section: String, detail: String },
    /// A required section is absent.
    MissingSection(&'static str),
    /// A singleton section appeared twice.
    DuplicateSection(&'static str),
    /// Re-executing the bundled workload failed outright (before any
    /// divergence comparison could run).
    ReplayFailed(String),
    /// The caller's workload spec does not match the bundled workload.
    WorkloadMismatch { bundle: String, spec: String },
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "bundle I/O error: {e}"),
            Self::BadMagic => write!(f, "not a .drb replay bundle (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported .drb format version {v:#04x}")
            }
            Self::Truncated { section } => {
                write!(f, "bundle truncated in section \"{section}\"")
            }
            Self::HashMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "hash mismatch in section \"{section}\": recorded {expected}, computed {actual}"
            ),
            Self::ChainMismatch { expected, actual } => write!(
                f,
                "footer chain mismatch: recorded {expected}, computed {actual}"
            ),
            Self::Malformed { section, detail } => {
                write!(f, "malformed section \"{section}\": {detail}")
            }
            Self::MissingSection(s) => write!(f, "bundle is missing its {s} section"),
            Self::DuplicateSection(s) => write!(f, "bundle has more than one {s} section"),
            Self::ReplayFailed(msg) => write!(f, "replay execution failed: {msg}"),
            Self::WorkloadMismatch { bundle, spec } => write!(
                f,
                "bundle records workload \"{bundle}\" but the supplied spec is \"{spec}\""
            ),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<io::Error> for BundleError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// The recording configuration and results, frozen into the bundle.
///
/// This mirrors [`RecordOptions`] field by field but is plain data: the
/// clock override collapses to a `manual_clock` flag and the replay
/// validator hook is absent (a bundle *produces* one on replay).
#[derive(Clone, Debug)]
pub struct BundleManifest {
    /// Workload identifier (the [`crate::spec::WorkflowSpec`] name).
    pub workload: String,
    /// Workload parameters as the producing tool encoded them (free-form,
    /// e.g. `scale=small`).
    pub params: String,
    /// Version of the tool that produced the bundle.
    pub tool_version: String,
    /// Profiler configuration of the recording.
    pub mapper: MapperConfig,
    /// Retry policy of the recording.
    pub retry: RetryPolicy,
    /// Chaos schedule, seeds included.
    pub chaos: Option<FaultSchedule>,
    /// Crash schedule, seeds included.
    pub crash: Option<CrashSchedule>,
    /// Durability mode files were created with.
    pub durability: Durability,
    /// Whether retry attempts resumed from recovered images.
    pub resume: bool,
    /// Whether failed tasks were salvaged as degraded fragments.
    pub salvage: bool,
    /// Whether the recording ran under a [`ManualClock`] (timestamps are
    /// then reproducible and a replay can be byte-identical).
    pub manual_clock: bool,
    /// I/O engine configuration of the recording (manifest layout v2;
    /// bundles written before the batched engine decode as scalar).
    pub io_engine: IoEngineConfig,
    /// Per-task fates of the recorded run.
    pub outcomes: Vec<TaskOutcome>,
}

impl BundleManifest {
    /// Freezes `opts` and `outcomes` into a manifest. `manual_clock` must
    /// say whether `opts.clock` was a [`ManualClock`] (the trait object
    /// cannot be inspected).
    pub fn new(
        workload: impl Into<String>,
        params: impl Into<String>,
        tool_version: impl Into<String>,
        opts: &RecordOptions,
        manual_clock: bool,
        outcomes: Vec<TaskOutcome>,
    ) -> Self {
        Self {
            workload: workload.into(),
            params: params.into(),
            tool_version: tool_version.into(),
            mapper: opts.mapper.clone(),
            retry: opts.retry.clone(),
            chaos: opts.chaos.clone(),
            crash: opts.crash.clone(),
            durability: opts.durability,
            resume: opts.resume,
            salvage: opts.salvage,
            manual_clock,
            io_engine: opts.io_engine,
            outcomes,
        }
    }

    /// Reconstructs the [`RecordOptions`] of the recorded run (replay
    /// validator unset; callers attach their own).
    pub fn record_options(&self) -> RecordOptions {
        RecordOptions {
            mapper: self.mapper.clone(),
            retry: self.retry.clone(),
            chaos: self.chaos.clone(),
            crash: self.crash.clone(),
            durability: self.durability,
            resume: self.resume,
            salvage: self.salvage,
            clock: self
                .manual_clock
                .then(|| Arc::new(ManualClock::new()) as Arc<dyn Clock>),
            replay: None,
            io_engine: self.io_engine,
        }
    }

    /// Whether the recorded trace has full per-op fidelity (every data op
    /// recorded), the precondition for op-by-op replay validation.
    pub fn full_fidelity(&self) -> bool {
        self.mapper.trace_io && self.mapper.skip_ops == 0
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Vec::new();
        let out = &mut w;
        // Layout v2 appends the I/O engine block after `manual_clock`;
        // decode still accepts v1 (pre-batched-engine bundles → scalar).
        wire::write_u8(out, 2).expect("vec write"); // manifest layout version
        wire::write_str(out, &self.workload).expect("vec write");
        wire::write_str(out, &self.params).expect("vec write");
        wire::write_str(out, &self.tool_version).expect("vec write");
        wire::write_str(out, &self.mapper.output).expect("vec write");
        wire::write_varint(out, self.mapper.page_size).expect("vec write");
        wire::write_varint(out, self.mapper.skip_ops).expect("vec write");
        write_bool(out, self.mapper.trace_io);
        write_bool(out, self.mapper.trace_vol);
        wire::write_varint(out, u64::from(self.retry.max_attempts)).expect("vec write");
        wire::write_varint(out, self.retry.base_backoff_ns).expect("vec write");
        wire::write_varint(out, self.retry.max_backoff_ns).expect("vec write");
        wire::write_f64(out, self.retry.jitter).expect("vec write");
        wire::write_opt_varint(out, self.retry.deadline_ns).expect("vec write");
        match &self.chaos {
            None => write_bool(out, false),
            Some(c) => {
                write_bool(out, true);
                wire::write_varint(out, c.seed).expect("vec write");
                wire::write_f64(out, c.read_fault_prob).expect("vec write");
                wire::write_f64(out, c.write_fault_prob).expect("vec write");
                write_bool(out, c.sticky_faults);
                wire::write_varint(out, c.transient_ops.len() as u64).expect("vec write");
                for op in &c.transient_ops {
                    wire::write_varint(out, *op).expect("vec write");
                }
                wire::write_opt_varint(out, c.dead_at_op).expect("vec write");
                write_bool(out, c.born_dead);
                wire::write_f64(out, c.latency_prob).expect("vec write");
                wire::write_varint(out, c.latency_ns).expect("vec write");
            }
        }
        match &self.crash {
            None => write_bool(out, false),
            Some(c) => {
                write_bool(out, true);
                wire::write_varint(out, c.seed).expect("vec write");
                wire::write_opt_varint(out, c.crash_at_write).expect("vec write");
                write_bool(out, c.tear);
                write_bool(out, c.drop_unflushed);
            }
        }
        wire::write_u8(
            out,
            match self.durability {
                Durability::WriteThrough => 0,
                Durability::Journal => 1,
            },
        )
        .expect("vec write");
        write_bool(out, self.resume);
        write_bool(out, self.salvage);
        write_bool(out, self.manual_clock);
        wire::write_u8(
            out,
            match self.io_engine.mode {
                IoEngineMode::Scalar => 0,
                IoEngineMode::Batched => 1,
            },
        )
        .expect("vec write");
        wire::write_varint(out, self.io_engine.queue_depth as u64).expect("vec write");
        write_bool(out, self.io_engine.coalesce);
        wire::write_varint(out, self.io_engine.max_coalesced_bytes).expect("vec write");
        wire::write_varint(out, self.io_engine.readahead_chunks).expect("vec write");
        wire::write_varint(out, self.outcomes.len() as u64).expect("vec write");
        for o in &self.outcomes {
            wire::write_str(out, &o.task).expect("vec write");
            wire::write_varint(out, u64::from(o.attempts)).expect("vec write");
            write_bool(out, o.degraded);
            match &o.error {
                None => write_bool(out, false),
                Some(e) => {
                    write_bool(out, true);
                    wire::write_str(out, e).expect("vec write");
                }
            }
            wire::write_varint(out, o.faults_injected).expect("vec write");
            wire::write_varint(out, o.recovered_files.len() as u64).expect("vec write");
            for f in &o.recovered_files {
                wire::write_str(out, f).expect("vec write");
            }
        }
        w
    }

    fn decode(payload: &[u8]) -> Result<Self, BundleError> {
        let r = &mut Cursor::new(payload);
        let ctx = |e: io::Error| map_section_err("manifest", e);
        let layout = wire::read_u8(r).map_err(ctx)?;
        if layout != 1 && layout != 2 {
            return Err(malformed(
                "manifest",
                format!("unknown manifest layout version {layout}"),
            ));
        }
        let workload = wire::read_str(r, "workload").map_err(ctx)?;
        let params = wire::read_str(r, "params").map_err(ctx)?;
        let tool_version = wire::read_str(r, "tool_version").map_err(ctx)?;
        let mapper = MapperConfig {
            output: wire::read_str(r, "mapper.output").map_err(ctx)?,
            page_size: wire::read_varint(r).map_err(ctx)?,
            skip_ops: wire::read_varint(r).map_err(ctx)?,
            trace_io: read_bool(r, "mapper.trace_io")?,
            trace_vol: read_bool(r, "mapper.trace_vol")?,
        };
        let retry = RetryPolicy {
            max_attempts: read_u32(r, "retry.max_attempts")?,
            base_backoff_ns: wire::read_varint(r).map_err(ctx)?,
            max_backoff_ns: wire::read_varint(r).map_err(ctx)?,
            jitter: wire::read_f64(r).map_err(ctx)?,
            deadline_ns: wire::read_opt_varint(r, "retry.deadline_ns").map_err(ctx)?,
        };
        let chaos = if read_bool(r, "chaos presence")? {
            let seed = wire::read_varint(r).map_err(ctx)?;
            let read_fault_prob = wire::read_f64(r).map_err(ctx)?;
            let write_fault_prob = wire::read_f64(r).map_err(ctx)?;
            let sticky_faults = read_bool(r, "chaos.sticky_faults")?;
            let n = wire::read_len(r, "chaos.transient_ops", 1 << 24).map_err(ctx)?;
            let mut transient_ops = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                transient_ops.push(wire::read_varint(r).map_err(ctx)?);
            }
            Some(FaultSchedule {
                seed,
                read_fault_prob,
                write_fault_prob,
                sticky_faults,
                transient_ops,
                dead_at_op: wire::read_opt_varint(r, "chaos.dead_at_op").map_err(ctx)?,
                born_dead: read_bool(r, "chaos.born_dead")?,
                latency_prob: wire::read_f64(r).map_err(ctx)?,
                latency_ns: wire::read_varint(r).map_err(ctx)?,
            })
        } else {
            None
        };
        let crash = if read_bool(r, "crash presence")? {
            Some(CrashSchedule {
                seed: wire::read_varint(r).map_err(ctx)?,
                crash_at_write: wire::read_opt_varint(r, "crash.crash_at_write").map_err(ctx)?,
                tear: read_bool(r, "crash.tear")?,
                drop_unflushed: read_bool(r, "crash.drop_unflushed")?,
            })
        } else {
            None
        };
        let durability = match wire::read_u8(r).map_err(ctx)? {
            0 => Durability::WriteThrough,
            1 => Durability::Journal,
            other => {
                return Err(malformed(
                    "manifest",
                    format!("unknown durability mode {other}"),
                ))
            }
        };
        let resume = read_bool(r, "resume")?;
        let salvage = read_bool(r, "salvage")?;
        let manual_clock = read_bool(r, "manual_clock")?;
        let io_engine = if layout >= 2 {
            let mode = match wire::read_u8(r).map_err(ctx)? {
                0 => IoEngineMode::Scalar,
                1 => IoEngineMode::Batched,
                other => {
                    return Err(malformed(
                        "manifest",
                        format!("unknown io engine mode {other}"),
                    ))
                }
            };
            let queue_depth = wire::read_varint(r).map_err(ctx)? as usize;
            let coalesce = read_bool(r, "io_engine.coalesce")?;
            let max_coalesced_bytes = wire::read_varint(r).map_err(ctx)?;
            let readahead_chunks = wire::read_varint(r).map_err(ctx)?;
            IoEngineConfig {
                mode,
                queue_depth: queue_depth.max(1),
                coalesce,
                max_coalesced_bytes,
                readahead_chunks,
            }
        } else {
            IoEngineConfig::default()
        };
        let n = wire::read_len(r, "outcomes", 1 << 24).map_err(ctx)?;
        let mut outcomes = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let task = wire::read_str(r, "outcome.task").map_err(ctx)?;
            let attempts = read_u32(r, "outcome.attempts")?;
            let degraded = read_bool(r, "outcome.degraded")?;
            let error = if read_bool(r, "outcome.error presence")? {
                Some(wire::read_str(r, "outcome.error").map_err(ctx)?)
            } else {
                None
            };
            let faults_injected = wire::read_varint(r).map_err(ctx)?;
            let nf = wire::read_len(r, "outcome.recovered_files", 1 << 24).map_err(ctx)?;
            let mut recovered_files = Vec::with_capacity(nf.min(1024));
            for _ in 0..nf {
                recovered_files.push(wire::read_str(r, "outcome.recovered_file").map_err(ctx)?);
            }
            outcomes.push(TaskOutcome {
                task,
                attempts,
                degraded,
                error,
                faults_injected,
                recovered_files,
            });
        }
        if r.position() != payload.len() as u64 {
            return Err(malformed(
                "manifest",
                format!(
                    "{} trailing byte(s) after manifest",
                    payload.len() as u64 - r.position()
                ),
            ));
        }
        Ok(Self {
            workload,
            params,
            tool_version,
            mapper,
            retry,
            chaos,
            crash,
            durability,
            resume,
            salvage,
            manual_clock,
            io_engine,
            outcomes,
        })
    }
}

fn write_bool(w: &mut Vec<u8>, v: bool) {
    wire::write_u8(w, u8::from(v)).expect("vec write");
}

fn read_bool(r: &mut Cursor<&[u8]>, what: &str) -> Result<bool, BundleError> {
    match wire::read_u8(r).map_err(|e| map_section_err("manifest", e))? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(malformed(
            "manifest",
            format!("{what}: bad bool byte {other:#04x}"),
        )),
    }
}

fn read_u32(r: &mut Cursor<&[u8]>, what: &str) -> Result<u32, BundleError> {
    let v = wire::read_varint(r).map_err(|e| map_section_err("manifest", e))?;
    u32::try_from(v).map_err(|_| malformed("manifest", format!("{what} {v} overflows u32")))
}

fn malformed(section: &str, detail: impl Into<String>) -> BundleError {
    BundleError::Malformed {
        section: section.to_owned(),
        detail: detail.into(),
    }
}

fn map_section_err(section: &str, e: io::Error) -> BundleError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        BundleError::Truncated {
            section: section.to_owned(),
        }
    } else {
        malformed(section, e.to_string())
    }
}

/// What [`ReplayBundle::verify_bytes`] found: every section with its size
/// and verified digest, plus the footer chain value.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Sections in file order.
    pub sections: Vec<SectionInfo>,
    /// Hex of the final chain value the footer carries.
    pub chain: String,
}

/// One verified section.
#[derive(Clone, Debug)]
pub struct SectionInfo {
    /// Section kind: `manifest`, `trace`, `initial`, `final`.
    pub kind: String,
    /// Section name (file name for image sections, empty otherwise).
    pub name: String,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Hex of the section's chained digest.
    pub digest: String,
}

fn section_label(tag: u8, name: &str) -> String {
    let kind = match tag {
        SEC_MANIFEST => "manifest",
        SEC_TRACE => "trace",
        SEC_INITIAL => "initial",
        SEC_FINAL => "final",
        _ => "unknown",
    };
    if name.is_empty() {
        kind.to_owned()
    } else {
        format!("{kind}:{name}")
    }
}

fn section_digest(prev: &Digest, tag: u8, name: &str, payload: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(prev);
    h.update(&[tag]);
    h.update(&(name.len() as u64).to_le_bytes());
    h.update(name.as_bytes());
    h.update(&(payload.len() as u64).to_le_bytes());
    h.update(payload);
    h.finalize()
}

/// A parsed-but-not-decoded section.
struct RawSection {
    tag: u8,
    name: String,
    payload: Vec<u8>,
    digest: Digest,
}

/// Walks the section stream, verifying the hash chain as it goes.
fn read_sections(bytes: &[u8]) -> Result<Vec<RawSection>, BundleError> {
    if bytes.len() < MAGIC.len() {
        return Err(BundleError::Truncated {
            section: "header".to_owned(),
        });
    }
    if bytes[..7] != MAGIC[..7] {
        return Err(BundleError::BadMagic);
    }
    if bytes[7] != MAGIC[7] {
        return Err(BundleError::UnsupportedVersion(bytes[7]));
    }
    let r = &mut Cursor::new(&bytes[MAGIC.len()..]);
    let mut chain = [0u8; 32];
    let mut sections = Vec::new();
    loop {
        let at = sections.last().map_or_else(
            || "header".to_owned(),
            |s: &RawSection| section_label(s.tag, &s.name),
        );
        let tag = wire::read_u8(r).map_err(|e| map_section_err(&format!("after {at}"), e))?;
        if tag == SEC_END {
            let mut footer = [0u8; 32];
            r.read_exact(&mut footer)
                .map_err(|e| map_section_err("footer", e))?;
            if footer != chain {
                return Err(BundleError::ChainMismatch {
                    expected: hex(&footer),
                    actual: hex(&chain),
                });
            }
            if r.position() != (bytes.len() - MAGIC.len()) as u64 {
                return Err(malformed("footer", "trailing bytes after footer"));
            }
            return Ok(sections);
        }
        let name = wire::read_str(r, "section name")
            .map_err(|e| map_section_err(&format!("after {at}"), e))?;
        let label = section_label(tag, &name);
        let payload =
            wire::read_bytes(r, "section payload").map_err(|e| map_section_err(&label, e))?;
        let mut digest = [0u8; 32];
        r.read_exact(&mut digest)
            .map_err(|e| map_section_err(&label, e))?;
        let computed = section_digest(&chain, tag, &name, &payload);
        if digest != computed {
            return Err(BundleError::HashMismatch {
                section: label,
                expected: hex(&digest),
                actual: hex(&computed),
            });
        }
        chain = computed;
        sections.push(RawSection {
            tag,
            name,
            payload,
            digest,
        });
    }
}

/// A fully decoded replay bundle.
#[derive(Clone, Debug)]
pub struct ReplayBundle {
    /// Recording configuration and outcomes.
    pub manifest: BundleManifest,
    /// The recorded trace.
    pub trace: TraceBundle,
    /// Filesystem images the run started from (usually empty).
    pub initial_images: BTreeMap<String, Vec<u8>>,
    /// Filesystem images the run left behind.
    pub final_images: BTreeMap<String, Vec<u8>>,
}

impl ReplayBundle {
    /// Assembles a bundle, snapshotting `fs` as the final images.
    pub fn pack(
        manifest: BundleManifest,
        trace: TraceBundle,
        initial_images: BTreeMap<String, Vec<u8>>,
        fs: &MemFs,
    ) -> Self {
        let final_images = fs
            .list()
            .into_iter()
            .filter_map(|name| fs.snapshot(&name).map(|bytes| (name, bytes)))
            .collect();
        Self {
            manifest,
            trace,
            initial_images,
            final_images,
        }
    }

    /// Serializes the bundle with its hash chain.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        let mut chain = [0u8; 32];
        let mut emit = |out: &mut Vec<u8>, tag: u8, name: &str, payload: &[u8]| {
            let digest = section_digest(&chain, tag, name, payload);
            wire::write_u8(out, tag).expect("vec write");
            wire::write_str(out, name).expect("vec write");
            wire::write_bytes(out, payload).expect("vec write");
            out.extend_from_slice(&digest);
            chain = digest;
        };
        emit(&mut out, SEC_MANIFEST, "", &self.manifest.encode());
        emit(&mut out, SEC_TRACE, "", &self.trace.to_binary_bytes());
        for (name, bytes) in &self.initial_images {
            emit(&mut out, SEC_INITIAL, name, bytes);
        }
        for (name, bytes) in &self.final_images {
            emit(&mut out, SEC_FINAL, name, bytes);
        }
        wire::write_u8(&mut out, SEC_END).expect("vec write");
        out.extend_from_slice(&chain);
        out
    }

    /// Writes the bundle to `path`.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), BundleError> {
        let bytes = self.to_bytes();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        Ok(())
    }

    /// Parses and fully decodes a bundle, verifying the hash chain.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BundleError> {
        let sections = read_sections(bytes)?;
        let mut manifest = None;
        let mut trace = None;
        let mut initial_images = BTreeMap::new();
        let mut final_images = BTreeMap::new();
        for s in sections {
            match s.tag {
                SEC_MANIFEST => {
                    if manifest.is_some() {
                        return Err(BundleError::DuplicateSection("manifest"));
                    }
                    manifest = Some(BundleManifest::decode(&s.payload)?);
                }
                SEC_TRACE => {
                    if trace.is_some() {
                        return Err(BundleError::DuplicateSection("trace"));
                    }
                    trace = Some(
                        TraceBundle::read_binary(Cursor::new(&s.payload[..]))
                            .map_err(|e| map_section_err("trace", e))?,
                    );
                }
                SEC_INITIAL => {
                    if initial_images.insert(s.name.clone(), s.payload).is_some() {
                        return Err(malformed(
                            &section_label(SEC_INITIAL, &s.name),
                            "duplicate initial image",
                        ));
                    }
                }
                SEC_FINAL => {
                    if final_images.insert(s.name.clone(), s.payload).is_some() {
                        return Err(malformed(
                            &section_label(SEC_FINAL, &s.name),
                            "duplicate final image",
                        ));
                    }
                }
                other => {
                    return Err(malformed(
                        &section_label(other, &s.name),
                        format!("unknown section tag {other:#04x}"),
                    ));
                }
            }
        }
        Ok(Self {
            manifest: manifest.ok_or(BundleError::MissingSection("manifest"))?,
            trace: trace.ok_or(BundleError::MissingSection("trace"))?,
            initial_images,
            final_images,
        })
    }

    /// Reads and decodes a bundle file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, BundleError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Verifies the hash chain without decoding section contents — the
    /// cheap integrity check (`dayu-analyze bundle verify`).
    pub fn verify_bytes(bytes: &[u8]) -> Result<VerifyReport, BundleError> {
        let sections = read_sections(bytes)?;
        let chain = sections
            .last()
            .map_or_else(|| hex(&[0u8; 32]), |s| hex(&s.digest));
        Ok(VerifyReport {
            sections: sections
                .iter()
                .map(|s| SectionInfo {
                    kind: match s.tag {
                        SEC_MANIFEST => "manifest",
                        SEC_TRACE => "trace",
                        SEC_INITIAL => "initial",
                        SEC_FINAL => "final",
                        _ => "unknown",
                    }
                    .to_owned(),
                    name: s.name.clone(),
                    bytes: s.payload.len(),
                    digest: hex(&s.digest),
                })
                .collect(),
            chain,
        })
    }

    /// Verifies a bundle file's hash chain.
    pub fn verify_file(path: impl AsRef<Path>) -> Result<VerifyReport, BundleError> {
        Self::verify_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> ReplayBundle {
        let opts = RecordOptions::default()
            .with_chaos(FaultSchedule::new(42).with_transient_at(3))
            .with_crash(CrashSchedule::new(7).with_crash_at(5).torn())
            .with_durability(Durability::Journal)
            .with_resume(true)
            .with_retry(RetryPolicy::default().attempts(4).with_backoff(10, 100));
        let manifest = BundleManifest::new(
            "wf",
            "scale=small",
            "0.1.0-test",
            &opts,
            true,
            vec![TaskOutcome {
                task: "producer".into(),
                attempts: 2,
                degraded: false,
                error: None,
                faults_injected: 1,
                recovered_files: vec!["a.h5".into()],
            }],
        );
        let mut trace = TraceBundle::new("wf");
        trace.meta.page_size = 4096;
        let mut initial = BTreeMap::new();
        initial.insert("seed.bin".to_owned(), vec![1u8, 2, 3]);
        let fs = MemFs::new();
        fs.restore("out.h5", vec![9u8; 100]);
        ReplayBundle::pack(manifest, trace, initial, &fs)
    }

    #[test]
    fn round_trips_through_bytes() {
        let b = sample_bundle();
        let bytes = b.to_bytes();
        let back = ReplayBundle::from_bytes(&bytes).unwrap();
        assert_eq!(back.manifest.workload, "wf");
        assert_eq!(back.manifest.params, "scale=small");
        assert_eq!(back.manifest.tool_version, "0.1.0-test");
        assert_eq!(back.manifest.durability, Durability::Journal);
        assert!(back.manifest.resume);
        assert!(back.manifest.manual_clock);
        assert_eq!(back.manifest.retry, b.manifest.retry);
        let chaos = back.manifest.chaos.as_ref().unwrap();
        assert_eq!(chaos.seed, 42);
        assert_eq!(chaos.transient_ops, vec![3]);
        let crash = back.manifest.crash.as_ref().unwrap();
        assert_eq!(crash.seed, 7);
        assert_eq!(crash.crash_at_write, Some(5));
        assert!(crash.tear);
        assert_eq!(back.manifest.outcomes, b.manifest.outcomes);
        assert_eq!(back.initial_images, b.initial_images);
        assert_eq!(back.final_images, b.final_images);
        assert_eq!(back.trace, b.trace);
        // Deterministic serialization: same bundle, same bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn verify_reports_every_section() {
        let bytes = sample_bundle().to_bytes();
        let report = ReplayBundle::verify_bytes(&bytes).unwrap();
        let kinds: Vec<&str> = report.sections.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(kinds, vec!["manifest", "trace", "initial", "final"]);
        assert_eq!(report.sections[2].name, "seed.bin");
        assert_eq!(report.sections[3].name, "out.h5");
        assert_eq!(report.chain.len(), 64);
    }

    #[test]
    fn truncation_yields_structured_error() {
        let bytes = sample_bundle().to_bytes();
        for cut in [0, 4, MAGIC.len(), bytes.len() / 2, bytes.len() - 1] {
            let err = ReplayBundle::verify_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, BundleError::Truncated { .. } | BundleError::BadMagic),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = sample_bundle().to_bytes();
        bytes[0] = 0x7F;
        assert!(matches!(
            ReplayBundle::verify_bytes(&bytes),
            Err(BundleError::BadMagic)
        ));
        let mut bytes = sample_bundle().to_bytes();
        bytes[7] = 0x63;
        assert!(matches!(
            ReplayBundle::verify_bytes(&bytes),
            Err(BundleError::UnsupportedVersion(0x63))
        ));
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        // The tamper-detection acceptance criterion, exhaustively: flip
        // each byte of the serialized bundle and verify must fail (the
        // magic bytes fail as BadMagic/UnsupportedVersion, everything else
        // as a named hash/chain/structure error).
        let bytes = sample_bundle().to_bytes();
        for i in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[i] ^= 0x01;
            assert!(
                ReplayBundle::verify_bytes(&tampered).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn hash_mismatch_names_the_section() {
        let b = sample_bundle();
        let bytes = b.to_bytes();
        // Locate the final image's payload bytes (100 bytes of 0x09) and
        // corrupt one.
        let pos = bytes
            .windows(8)
            .position(|w| w == [9u8; 8])
            .expect("image payload present");
        let mut tampered = bytes.clone();
        tampered[pos] = 0x10;
        match ReplayBundle::verify_bytes(&tampered).unwrap_err() {
            BundleError::HashMismatch { section, .. } => {
                assert_eq!(section, "final:out.h5");
            }
            other => panic!("expected HashMismatch, got {other}"),
        }
    }

    #[test]
    fn minimal_manifest_round_trips() {
        let manifest = BundleManifest::new(
            "plain",
            "",
            "0.0.0",
            &RecordOptions::default(),
            false,
            Vec::new(),
        );
        let b = ReplayBundle::pack(
            manifest,
            TraceBundle::new("plain"),
            BTreeMap::new(),
            &MemFs::new(),
        );
        let back = ReplayBundle::from_bytes(&b.to_bytes()).unwrap();
        assert!(back.manifest.chaos.is_none());
        assert!(back.manifest.crash.is_none());
        assert!(!back.manifest.manual_clock);
        assert_eq!(back.manifest.durability, Durability::WriteThrough);
        assert!(back.initial_images.is_empty());
        assert!(back.final_images.is_empty());
        let opts = back.manifest.record_options();
        assert!(opts.clock.is_none());
        assert!(opts.replay.is_none());
    }
}
