//! Trace → simulation bridge: turns a recorded run into a DES job.
//!
//! Each traced task becomes a [`SimTask`] whose program is its exact VFD
//! op stream (preceded by its modeled compute), with stage-barrier
//! dependencies and a node assignment from a [`Schedule`]. Replaying the
//! *same* op streams under different schedules/placements isolates the
//! effect of the optimization being evaluated — the methodology behind the
//! paper's Figures 11–13.

use crate::runner::RecordedRun;
use dayu_sim::program::{program_from_vfd_records, SimOp, SimTask};
use std::collections::HashMap;

/// Task → node assignment.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    node_of: HashMap<String, usize>,
}

impl Schedule {
    /// Empty schedule (everything on node 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Round-robin assignment: within each stage, tasks spread across
    /// `nodes` in declaration order — the baseline scheduler.
    pub fn round_robin(run: &RecordedRun, nodes: usize) -> Self {
        let mut s = Self::new();
        for stage in 0..run.stage_count() {
            for (i, task) in run.tasks_of_stage(stage).iter().enumerate() {
                s.node_of.insert((*task).to_owned(), i % nodes.max(1));
            }
        }
        s
    }

    /// Pins a task to a node.
    pub fn assign(&mut self, task: &str, node: usize) -> &mut Self {
        self.node_of.insert(task.to_owned(), node);
        self
    }

    /// The node a task runs on (default 0).
    pub fn node_of(&self, task: &str) -> usize {
        self.node_of.get(task).copied().unwrap_or(0)
    }
}

/// Converts a recorded run into simulator tasks with stage-barrier
/// dependencies.
pub fn to_sim_tasks(run: &RecordedRun, schedule: &Schedule) -> Vec<SimTask> {
    let order = &run.bundle.meta.task_order;
    let index: HashMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(i, t)| (t.as_str(), i))
        .collect();

    let mut out = Vec::with_capacity(order.len());
    for task in order {
        let name = task.as_str();
        let stage = run.stage_of.get(name).copied().unwrap_or(0);
        // Stage barrier: depend on every task of the previous stage.
        let deps: Vec<usize> = if stage == 0 {
            Vec::new()
        } else {
            run.tasks_of_stage(stage - 1)
                .iter()
                .filter_map(|t| index.get(t).copied())
                .collect()
        };
        let mut program = Vec::new();
        let compute = run.compute_ns.get(name).copied().unwrap_or(0);
        if compute > 0 {
            program.push(SimOp::compute(compute));
        }
        program.extend(program_from_vfd_records(
            run.bundle.vfd.iter().filter(|r| r.task.as_str() == name),
        ));
        out.push(SimTask {
            name: name.to_owned(),
            node: schedule.node_of(name),
            deps,
            program,
        });
    }
    out
}

/// Total bytes written to `file` across the recorded run (the file's
/// produced size, used to size stage-in copies).
pub fn file_written_bytes(run: &RecordedRun, file: &str) -> u64 {
    run.bundle
        .vfd
        .iter()
        .filter(|r| r.file.as_str() == file && r.kind == dayu_trace::vfd::IoKind::Write)
        .map(|r| r.len)
        .sum()
}

/// Task indexes whose programs write *data* to `file`. Metadata-only
/// writes (e.g. the superblock update every file close performs) do not
/// make a task a producer — readers update file metadata too.
pub fn producers_of(tasks: &[SimTask], file: &str) -> Vec<usize> {
    tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            t.program.iter().any(|op| {
                matches!(
                    op,
                    SimOp::Io {
                        file: f,
                        dir: dayu_sim::program::IoDir::Write,
                        metadata: false,
                        ..
                    } if f == file
                )
            })
        })
        .map(|(i, _)| i)
        .collect()
}

/// Task indexes whose programs read from `file`.
pub fn readers_of(tasks: &[SimTask], file: &str) -> Vec<usize> {
    tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            t.program.iter().any(|op| {
                matches!(
                    op,
                    SimOp::Io { file: f, dir: dayu_sim::program::IoDir::Read, .. } if f == file
                )
            })
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{TaskIo, TaskSpec, WorkflowSpec};
    use dayu_hdf::{DataType, DatasetBuilder};
    use dayu_vfd::MemFs;

    fn recorded() -> RecordedRun {
        let spec = WorkflowSpec::new("pc")
            .stage(
                "produce",
                vec![TaskSpec::new("producer", |io: &TaskIo| {
                    let f = io.create("data.h5")?;
                    let mut ds = f.root().create_dataset(
                        "d",
                        DatasetBuilder::new(DataType::Float { width: 8 }, &[128]),
                    )?;
                    ds.write_f64s(&[0.5; 128])?;
                    ds.close()?;
                    f.close()
                })
                .with_compute(500)],
            )
            .stage(
                "consume",
                vec![
                    TaskSpec::new("c0", |io: &TaskIo| {
                        let f = io.open("data.h5")?;
                        let mut ds = f.root().open_dataset("d")?;
                        ds.read_f64s()?;
                        ds.close()?;
                        f.close()
                    }),
                    TaskSpec::new("c1", |io: &TaskIo| {
                        let f = io.open("data.h5")?;
                        let mut ds = f.root().open_dataset("d")?;
                        ds.read_f64s()?;
                        ds.close()?;
                        f.close()
                    }),
                ],
            );
        crate::runner::record(&spec, &MemFs::new()).unwrap()
    }

    #[test]
    fn conversion_preserves_order_and_deps() {
        let run = recorded();
        let tasks = to_sim_tasks(&run, &Schedule::round_robin(&run, 2));
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].name, "producer");
        assert!(tasks[0].deps.is_empty());
        assert_eq!(tasks[1].deps, vec![0]);
        assert_eq!(tasks[2].deps, vec![0]);
        // Round-robin within the consume stage.
        assert_eq!(tasks[1].node, 0);
        assert_eq!(tasks[2].node, 1);
        // Compute op leads the producer's program.
        assert_eq!(tasks[0].program[0], SimOp::compute(500));
        assert!(tasks[0].io_op_count() > 0);
    }

    #[test]
    fn producers_and_readers() {
        let run = recorded();
        let tasks = to_sim_tasks(&run, &Schedule::new());
        assert_eq!(producers_of(&tasks, "data.h5"), vec![0]);
        assert_eq!(readers_of(&tasks, "data.h5"), vec![1, 2]);
        assert!(producers_of(&tasks, "nope.h5").is_empty());
    }

    #[test]
    fn file_written_bytes_counts_raw_and_metadata() {
        let run = recorded();
        let bytes = file_written_bytes(&run, "data.h5");
        assert!(
            bytes >= 128 * 8,
            "at least the raw payload was written: {bytes}"
        );
        assert_eq!(file_written_bytes(&run, "nope.h5"), 0);
    }

    #[test]
    fn schedule_assignment_overrides() {
        let run = recorded();
        let mut s = Schedule::round_robin(&run, 2);
        s.assign("c1", 7);
        assert_eq!(s.node_of("c1"), 7);
        assert_eq!(s.node_of("unknown"), 0);
    }
}
