//! Symbolic I/O contracts: declared task footprints.
//!
//! DaYu's thesis is that workflow optimization needs both *dynamics* (what
//! a run actually did — the recorded trace) and *semantics* (what tasks
//! intend to do). An [`IoContract`] is the semantics half: a set of
//! `(file, dataset, access mode, symbolic extent)` clauses attached to a
//! [`TaskSpec`](crate::spec::TaskSpec), where extents are affine
//! expressions over named parameters (task index, chunk size, …) with
//! declared domains. `dayu-lint` consumes contracts two ways:
//!
//! * **statically** — combining declared footprints with the stage
//!   happens-before to prove or refute races before any VFD is opened;
//! * **dynamically** — replaying a recorded trace against the contracts
//!   to flag out-of-footprint I/O and declared-but-never-touched waste.
//!
//! The canonical chunk-parallel declaration reads like the math:
//!
//! ```
//! use dayu_workflow::contract::{AffineExpr, IoContract, SymExtent};
//! const CHUNK: i64 = 4096;
//! let i = AffineExpr::var("i");
//! let contract = IoContract::new()
//!     .bind("i", 3) // this task is writer #3
//!     .writes("shared.h5", "/raw", SymExtent::span(i.clone() * CHUNK, (i + 1) * CHUNK));
//! assert!(contract.clauses.len() == 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// An affine expression `base + Σ coeffᵢ·paramᵢ` over named integer
/// parameters. Kept normalized: terms sorted by parameter name, zero
/// coefficients dropped.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AffineExpr {
    /// Constant term.
    pub base: i64,
    /// `(parameter name, coefficient)`, sorted, no zero coefficients.
    pub terms: Vec<(String, i64)>,
}

impl AffineExpr {
    /// The constant expression `v`.
    pub fn constant(v: i64) -> Self {
        Self {
            base: v,
            terms: Vec::new(),
        }
    }

    /// The expression `1·name`.
    pub fn var(name: impl Into<String>) -> Self {
        Self {
            base: 0,
            terms: vec![(name.into(), 1)],
        }
    }

    /// Whether the expression has no parameter terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates under a concrete parameter valuation. Parameters missing
    /// from `env` evaluate as 0.
    pub fn eval(&self, env: &BTreeMap<String, i64>) -> i64 {
        let mut v = self.base;
        for (name, coeff) in &self.terms {
            v = v.saturating_add(coeff.saturating_mul(env.get(name).copied().unwrap_or(0)));
        }
        v
    }

    fn normalize(mut self) -> Self {
        self.terms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(String, i64)> = Vec::with_capacity(self.terms.len());
        for (name, coeff) in self.terms {
            match merged.last_mut() {
                Some((last, c)) if *last == name => *c = c.saturating_add(coeff),
                _ => merged.push((name, coeff)),
            }
        }
        merged.retain(|(_, c)| *c != 0);
        self.terms = merged;
        self
    }
}

impl Add for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: AffineExpr) -> AffineExpr {
        self.base = self.base.saturating_add(rhs.base);
        self.terms.extend(rhs.terms);
        self.normalize()
    }
}

impl Add<i64> for AffineExpr {
    type Output = AffineExpr;
    fn add(mut self, rhs: i64) -> AffineExpr {
        self.base = self.base.saturating_add(rhs);
        self
    }
}

impl Sub for AffineExpr {
    type Output = AffineExpr;
    fn sub(mut self, rhs: AffineExpr) -> AffineExpr {
        self.base = self.base.saturating_sub(rhs.base);
        self.terms
            .extend(rhs.terms.into_iter().map(|(n, c)| (n, c.saturating_neg())));
        self.normalize()
    }
}

impl Sub<i64> for AffineExpr {
    type Output = AffineExpr;
    fn sub(mut self, rhs: i64) -> AffineExpr {
        self.base = self.base.saturating_sub(rhs);
        self
    }
}

impl Mul<i64> for AffineExpr {
    type Output = AffineExpr;
    fn mul(mut self, rhs: i64) -> AffineExpr {
        self.base = self.base.saturating_mul(rhs);
        for (_, c) in &mut self.terms {
            *c = c.saturating_mul(rhs);
        }
        self.normalize()
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (name, coeff) in &self.terms {
            if wrote {
                write!(f, " + ")?;
            }
            if *coeff == 1 {
                write!(f, "{name}")?;
            } else {
                write!(f, "{coeff}*{name}")?;
            }
            wrote = true;
        }
        if self.base != 0 || !wrote {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.base)?;
        }
        Ok(())
    }
}

/// Inclusive domain of a contract parameter. `lo == hi` is an exact
/// binding (the common case: a task knows its own index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamDomain {
    /// Smallest value the parameter can take.
    pub lo: i64,
    /// Largest value the parameter can take.
    pub hi: i64,
}

impl ParamDomain {
    /// An exact binding.
    pub fn exact(v: i64) -> Self {
        Self { lo: v, hi: v }
    }

    /// An inclusive range.
    pub fn range(lo: i64, hi: i64) -> Self {
        Self { lo, hi }
    }
}

/// A symbolic byte extent of one dataset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymExtent {
    /// ⊤ — the whole dataset, wherever its bytes live. The honest
    /// declaration for chunked or variable-length datasets whose physical
    /// layout interleaves, and for tasks that touch everything.
    All,
    /// The half-open dataset-relative byte range `[start, end)`.
    Span {
        /// First byte touched.
        start: AffineExpr,
        /// One past the last byte touched.
        end: AffineExpr,
    },
}

impl SymExtent {
    /// The whole dataset (⊤).
    pub fn all() -> Self {
        SymExtent::All
    }

    /// A symbolic half-open span.
    pub fn span(start: impl Into<AffineExpr>, end: impl Into<AffineExpr>) -> Self {
        SymExtent::Span {
            start: start.into(),
            end: end.into(),
        }
    }

    /// A concrete half-open span.
    pub fn bytes(start: u64, end: u64) -> Self {
        SymExtent::span(
            AffineExpr::constant(start.min(i64::MAX as u64) as i64),
            AffineExpr::constant(end.min(i64::MAX as u64) as i64),
        )
    }
}

impl From<AffineExpr> for SymExtent {
    /// Degenerate single-point start (rarely useful; spans are built with
    /// [`SymExtent::span`]).
    fn from(e: AffineExpr) -> Self {
        SymExtent::Span {
            start: e.clone(),
            end: e + 1,
        }
    }
}

impl From<i64> for AffineExpr {
    fn from(v: i64) -> Self {
        AffineExpr::constant(v)
    }
}

impl fmt::Display for SymExtent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymExtent::All => write!(f, "[*]"),
            SymExtent::Span { start, end } => write!(f, "[{start} .. {end})"),
        }
    }
}

/// Declared access direction of a clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessMode {
    /// The task reads the extent.
    Read,
    /// The task writes the extent.
    Write,
}

/// One declared access: `mode extent` of `dataset` in `file`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContractClause {
    /// File the access targets.
    pub file: String,
    /// Dataset path within the file (e.g. `"/raw"`).
    pub dataset: String,
    /// Read or write.
    pub mode: AccessMode,
    /// Symbolic byte extent, dataset-relative.
    pub extent: SymExtent,
}

/// A task's declared I/O footprint: parameter bindings plus access
/// clauses (and optionally files the task disposes of).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IoContract {
    /// Parameter domains the clause extents range over.
    pub params: BTreeMap<String, ParamDomain>,
    /// Declared accesses.
    pub clauses: Vec<ContractClause>,
    /// Files this task drops / stages out; later accesses by
    /// happens-after tasks are use-after-close defects.
    pub disposes: Vec<String>,
}

impl IoContract {
    /// An empty contract (declares nothing; add clauses with the builder).
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a parameter to an exact value.
    pub fn bind(mut self, name: impl Into<String>, v: i64) -> Self {
        self.params.insert(name.into(), ParamDomain::exact(v));
        self
    }

    /// Binds a parameter to an inclusive range.
    pub fn bind_range(mut self, name: impl Into<String>, lo: i64, hi: i64) -> Self {
        self.params.insert(name.into(), ParamDomain::range(lo, hi));
        self
    }

    /// Declares a read of `extent` of `dataset` in `file`.
    pub fn reads(
        mut self,
        file: impl Into<String>,
        dataset: impl Into<String>,
        extent: SymExtent,
    ) -> Self {
        self.clauses.push(ContractClause {
            file: file.into(),
            dataset: dataset.into(),
            mode: AccessMode::Read,
            extent,
        });
        self
    }

    /// Declares a whole-dataset read.
    pub fn reads_all(self, file: impl Into<String>, dataset: impl Into<String>) -> Self {
        self.reads(file, dataset, SymExtent::all())
    }

    /// Declares a write of `extent` of `dataset` in `file`.
    pub fn writes(
        mut self,
        file: impl Into<String>,
        dataset: impl Into<String>,
        extent: SymExtent,
    ) -> Self {
        self.clauses.push(ContractClause {
            file: file.into(),
            dataset: dataset.into(),
            mode: AccessMode::Write,
            extent,
        });
        self
    }

    /// Declares a whole-dataset write.
    pub fn writes_all(self, file: impl Into<String>, dataset: impl Into<String>) -> Self {
        self.writes(file, dataset, SymExtent::all())
    }

    /// Declares that this task disposes of `file`.
    pub fn disposes(mut self, file: impl Into<String>) -> Self {
        self.disposes.push(file.into());
        self
    }

    /// Whether the contract declares nothing at all.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty() && self.disposes.is_empty()
    }

    /// Files named by any clause or disposal, deduped, sorted.
    pub fn files(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .clauses
            .iter()
            .map(|c| c.file.as_str())
            .chain(self.disposes.iter().map(String::as_str))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_normalization_merges_and_drops_zeros() {
        let i = AffineExpr::var("i");
        let e = i.clone() * 4 + i.clone() * -4 + 7;
        assert!(e.is_constant());
        assert_eq!(e.base, 7);
        let e2 = i.clone() * 3 + AffineExpr::var("j") + i * 2;
        assert_eq!(
            e2.terms,
            vec![("i".to_owned(), 5), ("j".to_owned(), 1)],
            "sorted and merged"
        );
    }

    #[test]
    fn eval_under_valuation() {
        let chunk = 4096;
        let i = AffineExpr::var("i");
        let start = i.clone() * chunk;
        let end = (i + 1) * chunk;
        let env: BTreeMap<String, i64> = [("i".to_owned(), 3)].into();
        assert_eq!(start.eval(&env), 3 * chunk);
        assert_eq!(end.eval(&env), 4 * chunk);
        // Missing parameters read as zero.
        assert_eq!(start.eval(&BTreeMap::new()), 0);
    }

    #[test]
    fn builder_collects_clauses_params_and_disposals() {
        let i = AffineExpr::var("i");
        let c = IoContract::new()
            .bind("i", 2)
            .bind_range("epoch", 1, 8)
            .writes(
                "a.h5",
                "/raw",
                SymExtent::span(i.clone() * 10, (i + 1) * 10),
            )
            .reads_all("b.h5", "/in")
            .disposes("scratch.h5");
        assert_eq!(c.clauses.len(), 2);
        assert_eq!(c.params["i"], ParamDomain::exact(2));
        assert_eq!(c.params["epoch"], ParamDomain::range(1, 8));
        assert_eq!(c.files(), vec!["a.h5", "b.h5", "scratch.h5"]);
        assert!(!c.is_empty());
        assert!(IoContract::new().is_empty());
    }

    #[test]
    fn display_reads_like_the_math() {
        let i = AffineExpr::var("i");
        let s = SymExtent::span(i.clone() * 4096, (i + 1) * 4096);
        assert_eq!(s.to_string(), "[4096*i .. 4096*i + 4096)");
        assert_eq!(SymExtent::all().to_string(), "[*]");
        assert_eq!(AffineExpr::constant(0).to_string(), "0");
    }
}
