//! Retry policy for the record phase.
//!
//! Transient storage faults (the kind the chaos engine injects, and the
//! kind real parallel filesystems produce under load) should not abort a
//! whole workflow recording. The runner retries a failed task body with
//! exponential backoff and deterministic jitter, up to an attempt cap and
//! an optional per-task deadline.
//!
//! The backoff/deadline mechanics are the shared, error-agnostic
//! [`RetryPolicy`] from `dayu-vfd` (also used by the `dayu-served` ingest
//! path), re-exported here. What this module adds is the *classification*:
//! only *driver I/O errors* ([`HdfError::Vfd`] wrapping [`VfdError::Io`])
//! are retryable — they are the signature of environmental failure. Logical
//! errors — missing objects, type mismatches, corrupt structures — are
//! deterministic properties of the workflow and would fail identically on
//! every attempt.

use dayu_hdf::HdfError;
use dayu_vfd::VfdError;

pub use dayu_vfd::RetryPolicy;

/// Whether `err` is worth retrying (environmental I/O failures only).
pub fn retryable(err: &HdfError) -> bool {
    matches!(err, HdfError::Vfd(VfdError::Io(_)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(retryable(&HdfError::Vfd(VfdError::Io(
            std::io::Error::other("injected")
        ))));
        assert!(!retryable(&HdfError::NotFound("x".into())));
        assert!(!retryable(&HdfError::Corrupt("bad".into())));
        assert!(!retryable(&HdfError::Vfd(VfdError::Closed)));
        assert!(!retryable(&HdfError::Vfd(VfdError::OutOfBounds {
            offset: 0,
            len: 1,
            eof: 0
        })));
    }

    #[test]
    fn policy_reexport_is_the_shared_one() {
        // The workflow-facing type must be literally the shared policy so
        // served ingest and task retries can exchange configurations.
        let p: dayu_vfd::RetryPolicy = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
    }
}
