//! # dayu-workflow
//!
//! The workflow layer tying DaYu's pieces into the paper's methodology:
//!
//! 1. **Specify** a staged workflow ([`spec::WorkflowSpec`]) whose tasks
//!    perform real I/O through the instrumented format library;
//! 2. **Record** it ([`runner::record`]): tasks execute (stage-parallel,
//!    via rayon) over a shared in-memory filesystem, each under its own
//!    Data Semantic Mapper session, yielding a workflow-wide trace bundle.
//!    Recording is fault-tolerant ([`runner::record_opts`]): seeded chaos
//!    injection, retry with backoff ([`retry::RetryPolicy`]), per-task
//!    outcomes, and salvage of degraded trace fragments;
//! 3. **Replay** ([`replay::to_sim_tasks`]): the traced op streams become a
//!    discrete-event-simulation job with stage-barrier dependencies and a
//!    [`replay::Schedule`] mapping tasks to cluster nodes;
//! 4. **Transform** ([`transform`]): apply the optimizations DaYu's
//!    guidelines suggest — co-scheduling, node-local placement, stage-in
//!    prefetch, async stage-out, unused-access elimination, pipelining —
//!    and replay again to quantify the improvement (Figures 11–13).

pub mod bundle;
pub mod contract;
pub mod replay;
pub mod rerun;
pub mod retry;
pub mod runner;
pub mod spec;
pub mod transform;

pub use bundle::{BundleError, BundleManifest, ReplayBundle, SectionInfo, VerifyReport};
pub use contract::{AccessMode, AffineExpr, ContractClause, IoContract, ParamDomain, SymExtent};
pub use replay::{file_written_bytes, producers_of, readers_of, to_sim_tasks, Schedule};
pub use rerun::{record_to_bundle, replay_bundle, with_manual_clock, ReplayReport};
pub use retry::RetryPolicy;
pub use runner::{
    record, record_checked, record_opts, record_with, RecordOptions, RecordedRun, TaskOutcome,
};
pub use spec::{Stage, TaskBody, TaskIndex, TaskIo, TaskSpec, WorkflowSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_hdf::{DataType, DatasetBuilder};
    use dayu_sim::cluster::{Cluster, Placement};
    use dayu_sim::engine::Engine;
    use dayu_sim::tiers::TierKind;
    use dayu_vfd::MemFs;

    /// End-to-end: record a 2-stage workflow, replay baseline vs a
    /// DaYu-style optimized plan (node-local placement + co-scheduling),
    /// and confirm the optimization wins in simulated time.
    #[test]
    fn record_replay_optimize_pipeline() {
        let mb = 1 << 20;
        let spec = WorkflowSpec::new("e2e")
            .stage(
                "produce",
                vec![TaskSpec::new("producer", move |io: &TaskIo| {
                    let f = io.create("bulk.h5")?;
                    let mut ds = f.root().create_dataset(
                        "payload",
                        DatasetBuilder::new(DataType::Int { width: 1 }, &[4 * mb as u64]),
                    )?;
                    ds.write(&vec![7u8; 4 * mb])?;
                    ds.close()?;
                    f.close()
                })],
            )
            .stage(
                "consume",
                vec![TaskSpec::new("consumer", |io: &TaskIo| {
                    let f = io.open("bulk.h5")?;
                    let mut ds = f.root().open_dataset("payload")?;
                    ds.read()?;
                    ds.close()?;
                    f.close()
                })],
            );

        let fs = MemFs::new();
        let run = record(&spec, &fs).unwrap();
        let cluster = Cluster::gpu_cluster(2);

        // Baseline: producer on node 0, consumer on node 1, file on BeeGFS.
        let mut schedule = Schedule::round_robin(&run, 2);
        schedule.assign("producer", 0).assign("consumer", 1);
        let baseline_tasks = to_sim_tasks(&run, &schedule);
        let baseline = Engine::new(&cluster, &Placement::new())
            .run(&baseline_tasks)
            .unwrap();

        // Optimized: co-schedule, output on producer-local NVMe.
        let mut opt_tasks = baseline_tasks.clone();
        transform::co_schedule(&mut opt_tasks, "producer", "consumer");
        let mut placement = Placement::new();
        transform::place_outputs_local(&opt_tasks, &mut placement, "producer", TierKind::NvmeSsd);
        let optimized = Engine::new(&cluster, &placement).run(&opt_tasks).unwrap();

        assert!(
            optimized.makespan_ns < baseline.makespan_ns,
            "DaYu plan should win: baseline={} optimized={}",
            baseline.makespan_ns,
            optimized.makespan_ns
        );
        let speedup = baseline.makespan_ns as f64 / optimized.makespan_ns as f64;
        assert!(
            speedup > 1.2,
            "expect a tangible speedup, got {speedup:.2}x"
        );
    }
}
