//! Optimization transforms: the moves DaYu's evaluation applies.
//!
//! Each transform rewrites a simulation job (tasks + placement) or filters
//! a trace bundle, implementing one of the optimizations from the paper's
//! Section VII: co-scheduling producer/consumer chains, placing outputs on
//! node-local storage, staging shared inputs in (prefetch), staging
//! finished data out asynchronously, eliminating unused dataset accesses,
//! and pipelining data-independent tasks.

use crate::replay::{producers_of, readers_of};
use dayu_sim::cluster::{FileLocation, Placement};
use dayu_sim::program::{IoDir, SimOp, SimTask};
use dayu_sim::tiers::TierKind;
use dayu_trace::store::TraceBundle;

/// Moves `consumer` onto the node where `producer` runs (co-scheduling).
pub fn co_schedule(tasks: &mut [SimTask], producer: &str, consumer: &str) {
    let Some(p) = tasks.iter().position(|t| t.name == producer) else {
        return;
    };
    let node = tasks[p].node;
    if let Some(c) = tasks.iter_mut().find(|t| t.name == consumer) {
        c.node = node;
    }
}

/// Homes every file written by `task` on `tier` local to the task's node.
pub fn place_outputs_local(
    tasks: &[SimTask],
    placement: &mut Placement,
    task: &str,
    tier: TierKind,
) {
    let Some(t) = tasks.iter().find(|t| t.name == task) else {
        return;
    };
    for op in &t.program {
        if let SimOp::Io {
            file,
            dir: IoDir::Write,
            ..
        } = op
        {
            placement.place(file.clone(), FileLocation::NodeLocal(t.node, tier));
        }
    }
}

/// Inserts a stage-in (prefetch) task copying `file` to `node`'s `tier`
/// before its readers run: the copy reads the file from its current
/// location and writes a node-local replica; reader ops are redirected to
/// the replica and gain a dependency on the copy. Returns the name of the
/// staged replica.
pub fn stage_in(
    tasks: &mut Vec<SimTask>,
    placement: &mut Placement,
    file: &str,
    bytes: u64,
    node: usize,
    tier: TierKind,
) -> String {
    let staged = format!("{file}@node{node}");
    let producers = producers_of(tasks, file);
    let readers = readers_of(tasks, file);

    let copy_idx = tasks.len();
    tasks.push(SimTask {
        name: format!("stage_in:{file}"),
        node,
        deps: producers,
        program: vec![
            SimOp::read(file, bytes),
            SimOp::write(staged.clone(), bytes),
        ],
    });
    placement.place(staged.clone(), FileLocation::NodeLocal(node, tier));

    for r in readers {
        for op in &mut tasks[r].program {
            if let SimOp::Io {
                file: f,
                dir: IoDir::Read,
                ..
            } = op
            {
                if f == file {
                    *f = staged.clone();
                }
            }
        }
        if !tasks[r].deps.contains(&copy_idx) {
            tasks[r].deps.push(copy_idx);
        }
    }
    staged
}

/// Appends an asynchronous stage-out task that copies `file` back to the
/// shared tier after its readers finish. Nothing depends on it, so it
/// overlaps with subsequent stages ("finished data is asynchronously
/// staged from local storage to shared storage during the startup of the
/// next iteration").
pub fn stage_out_async(tasks: &mut Vec<SimTask>, file: &str, bytes: u64, node: usize) {
    let mut deps = readers_of(tasks, file);
    deps.extend(producers_of(tasks, file));
    deps.sort_unstable();
    deps.dedup();
    tasks.push(SimTask {
        name: format!("stage_out:{file}"),
        node,
        deps,
        program: vec![
            SimOp::read(file, bytes),
            SimOp::write(format!("{file}@archive"), bytes),
        ],
    });
}

/// Removes all low-level operations a task performed on a data object from
/// a trace bundle (the "eliminate unused data access" optimization: the
/// DDMD aggregate task stops touching `contact_map`). Returns how many
/// records were dropped.
pub fn drop_object_ops(bundle: &mut TraceBundle, task: &str, object: &str) -> usize {
    let before = bundle.vfd.len();
    bundle
        .vfd
        .retain(|r| !(r.task.as_str() == task && r.object.as_str() == object));
    before - bundle.vfd.len()
}

/// Removes the stage-barrier dependency between two data-independent tasks
/// so they run in parallel (the DDMD training/inference pipelining).
/// `second` loses its dependency on `first` but inherits `first`'s own
/// prerequisites, so it still waits for the data both consume (inference
/// must not start before the simulations whose output it reads).
pub fn parallelize(tasks: &mut [SimTask], first: &str, second: &str) {
    let Some(f) = tasks.iter().position(|t| t.name == first) else {
        return;
    };
    let inherited = tasks[f].deps.clone();
    if let Some(s) = tasks.iter_mut().find(|t| t.name == second) {
        s.deps.retain(|&d| d != f);
        for d in inherited {
            if !s.deps.contains(&d) {
                s.deps.push(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_sim::cluster::Cluster;
    use dayu_sim::engine::Engine;

    fn chain() -> Vec<SimTask> {
        vec![
            SimTask::new("producer")
                .on_node(1)
                .with_program(vec![SimOp::write("f.h5", 1 << 20)]),
            SimTask::new("consumer")
                .on_node(0)
                .after(&[0])
                .with_program(vec![SimOp::read("f.h5", 1 << 20)]),
        ]
    }

    #[test]
    fn co_schedule_moves_consumer() {
        let mut tasks = chain();
        co_schedule(&mut tasks, "producer", "consumer");
        assert_eq!(tasks[1].node, 1);
        // Unknown names are a no-op.
        co_schedule(&mut tasks, "nope", "consumer");
        assert_eq!(tasks[1].node, 1);
    }

    #[test]
    fn place_outputs_local_places_written_files() {
        let tasks = chain();
        let mut placement = Placement::new();
        place_outputs_local(&tasks, &mut placement, "producer", TierKind::NvmeSsd);
        let cluster = Cluster::gpu_cluster(2);
        assert_eq!(
            placement.location(&cluster, "f.h5"),
            FileLocation::NodeLocal(1, TierKind::NvmeSsd)
        );
    }

    #[test]
    fn stage_in_redirects_readers() {
        let mut tasks = chain();
        let mut placement = Placement::new();
        let staged = stage_in(
            &mut tasks,
            &mut placement,
            "f.h5",
            1 << 20,
            0,
            TierKind::NvmeSsd,
        );
        assert_eq!(staged, "f.h5@node0");
        assert_eq!(tasks.len(), 3);
        let copy = &tasks[2];
        assert_eq!(copy.deps, vec![0], "copy waits for the producer");
        // Consumer now reads the replica and depends on the copy.
        let consumer = &tasks[1];
        assert!(consumer.deps.contains(&2));
        assert!(consumer.program.iter().any(|op| matches!(
            op,
            SimOp::Io { file, dir: IoDir::Read, .. } if file == "f.h5@node0"
        )));
        // And the whole job still simulates cleanly.
        let cluster = Cluster::gpu_cluster(2);
        let report = Engine::new(&cluster, &placement).run(&tasks).unwrap();
        assert_eq!(report.tasks.len(), 3);
    }

    #[test]
    fn stage_out_overlaps() {
        let mut tasks = chain();
        stage_out_async(&mut tasks, "f.h5", 1 << 20, 1);
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[2].deps, vec![0, 1]);
        let cluster = Cluster::gpu_cluster(2);
        let p = Placement::new();
        let report = Engine::new(&cluster, &p).run(&tasks).unwrap();
        // The stage-out runs after the consumer but extends the makespan
        // only by its own duration (nothing waits on it).
        assert!(report.tasks[2].start_ns >= report.tasks[1].end_ns);
    }

    #[test]
    fn drop_object_ops_filters_bundle() {
        use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
        use dayu_trace::time::Timestamp;
        use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
        let mut b = TraceBundle::new("wf");
        let mk = |task: &str, object: &str| VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new("f"),
            kind: IoKind::Read,
            offset: 0,
            len: 1,
            access: AccessType::RawData,
            object: ObjectKey::new(object),
            start: Timestamp(0),
            end: Timestamp(1),
        };
        b.vfd = vec![
            mk("agg", "/contact_map"),
            mk("agg", "/rmsd"),
            mk("train", "/contact_map"),
        ];
        let dropped = drop_object_ops(&mut b, "agg", "/contact_map");
        assert_eq!(dropped, 1);
        assert_eq!(b.vfd.len(), 2);
        assert!(b
            .vfd
            .iter()
            .any(|r| r.task.as_str() == "train" && r.object.as_str() == "/contact_map"));
    }

    #[test]
    fn parallelize_removes_dependency() {
        let mut tasks = vec![
            SimTask::new("train").with_program(vec![SimOp::compute(100)]),
            SimTask::new("infer")
                .after(&[0])
                .with_program(vec![SimOp::compute(100)]),
        ];
        parallelize(&mut tasks, "train", "infer");
        assert!(tasks[1].deps.is_empty(), "train had no deps to inherit");
        let cluster = Cluster::gpu_cluster(2);
        let p = Placement::new();
        let report = Engine::new(&cluster, &p).run(&tasks).unwrap();
        assert_eq!(report.makespan_ns, 100, "now fully parallel");
    }
}
