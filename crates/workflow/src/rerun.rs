//! The replay engine: re-executes a bundled workload and cross-checks it.
//!
//! [`replay_bundle`] rebuilds the recorded run's starting filesystem from
//! the bundle's initial images, reconstructs its [`RecordOptions`] (same
//! chaos/crash/retry/durability seeds, same clock mode), attaches a
//! [`ReplayValidator`] holding the recorded per-task operation streams, and
//! runs the workload again. Three independent checks gate the verdict:
//!
//! 1. **Op-by-op** — the [`dayu_vfd::ReplayVfd`] in every task's driver
//!    stack fails fast on the first operation that deviates from the
//!    recording (kind, file, extent, access type);
//! 2. **Outcomes** — attempts, success/degradation, fault counts and
//!    recovered files must match the bundled [`TaskOutcome`]s, which is how
//!    fault/crash firings and recovery behaviour are validated;
//! 3. **Images** — the final filesystem must be byte-identical to the
//!    bundled final images.
//!
//! Op-by-op checking requires a full-fidelity recording (`trace_io` on,
//! `skip_ops == 0`); bundles recorded with sampling still get checks 2–3.

use crate::bundle::{BundleError, BundleManifest, ReplayBundle};
use crate::runner::{record_opts, RecordOptions, RecordedRun};
use crate::spec::WorkflowSpec;
use dayu_trace::store::TraceOrigin;
use dayu_trace::time::ManualClock;
use dayu_vfd::{MemFs, ReplayDivergence, ReplayEvent, ReplayValidator};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;

/// The verdict of one replay.
#[derive(Debug)]
pub struct ReplayReport {
    /// The re-executed run (trace, outcomes, stage layout).
    pub run: RecordedRun,
    /// First operation-level divergence, if any.
    pub divergence: Option<ReplayDivergence>,
    /// Outcome- and image-level mismatches, human-readable.
    pub mismatches: Vec<String>,
    /// Whether op-by-op validation was active (full-fidelity recording).
    pub op_checked: bool,
}

impl ReplayReport {
    /// Whether the replay matched the recording on every active check.
    pub fn validated(&self) -> bool {
        self.divergence.is_none() && self.mismatches.is_empty()
    }
}

/// Builds the per-task expected streams from a recorded trace.
fn validator_for(bundle: &ReplayBundle) -> Arc<ReplayValidator> {
    let mut streams: HashMap<String, Vec<ReplayEvent>> = HashMap::new();
    for r in &bundle.trace.vfd {
        streams
            .entry(r.task.as_str().to_owned())
            .or_default()
            .push(ReplayEvent {
                file: r.file.as_str().to_owned(),
                kind: r.kind,
                offset: r.offset,
                len: r.len,
                access: r.access,
            });
    }
    let validator = Arc::new(ReplayValidator::new());
    // Tasks with no VFD records still need registration so an attempt
    // count overrun is caught; default final attempt is 1.
    for t in &bundle.trace.meta.task_order {
        streams.entry(t.as_str().to_owned()).or_default();
    }
    for (task, events) in streams {
        let final_attempt = bundle
            .manifest
            .outcomes
            .iter()
            .find(|o| o.task == task)
            .map_or(1, |o| o.attempts);
        validator.expect_task(&task, events, final_attempt);
    }
    validator
}

/// Re-executes the bundled workload over `fs` (which is cleared to the
/// bundle's initial images first) and cross-checks it against the
/// recording. `spec` must be the workload the bundle names — the bundle
/// stores only the workload identity, not the task bodies.
pub fn replay_bundle(
    bundle: &ReplayBundle,
    spec: &WorkflowSpec,
    fs: &MemFs,
) -> Result<ReplayReport, BundleError> {
    if spec.name != bundle.manifest.workload {
        return Err(BundleError::WorkloadMismatch {
            bundle: bundle.manifest.workload.clone(),
            spec: spec.name.clone(),
        });
    }
    for name in fs.list() {
        fs.remove(&name);
    }
    for (name, bytes) in &bundle.initial_images {
        fs.restore(name, bytes.clone());
    }
    let mut opts = bundle.manifest.record_options();
    let op_checked = bundle.manifest.full_fidelity();
    let validator = op_checked.then(|| {
        let v = validator_for(bundle);
        opts.replay = Some(v.clone());
        v
    });
    let mut run =
        record_opts(spec, fs, &opts).map_err(|e| BundleError::ReplayFailed(e.to_string()))?;
    // The replayed trace has the same provenance as the recording it
    // reproduces — stamping it keeps byte-identical replays byte-identical.
    run.bundle.meta.origin = bundle.trace.meta.origin.clone();
    let divergence = validator.as_ref().and_then(|v| v.divergence());
    let mut mismatches = Vec::new();
    compare_outcomes(&bundle.manifest, &run, &mut mismatches);
    compare_images(&bundle.final_images, fs, &mut mismatches);
    Ok(ReplayReport {
        run,
        divergence,
        mismatches,
        op_checked,
    })
}

fn compare_outcomes(manifest: &BundleManifest, run: &RecordedRun, out: &mut Vec<String>) {
    for rec in &manifest.outcomes {
        let Some(live) = run.outcome_of(&rec.task) else {
            out.push(format!(
                "task \"{}\": recorded an outcome but the replay never ran it",
                rec.task
            ));
            continue;
        };
        if live.attempts != rec.attempts {
            out.push(format!(
                "task \"{}\": {} attempt(s) recorded, {} replayed",
                rec.task, rec.attempts, live.attempts
            ));
        }
        if live.succeeded() != rec.succeeded() {
            out.push(format!(
                "task \"{}\": recorded {}, replayed {} ({})",
                rec.task,
                if rec.succeeded() {
                    "success"
                } else {
                    "failure"
                },
                if live.succeeded() {
                    "success"
                } else {
                    "failure"
                },
                live.error.as_deref().unwrap_or("no error")
            ));
        }
        if live.degraded != rec.degraded {
            out.push(format!(
                "task \"{}\": degraded flag recorded {} vs replayed {}",
                rec.task, rec.degraded, live.degraded
            ));
        }
        if live.faults_injected != rec.faults_injected {
            out.push(format!(
                "task \"{}\": {} fault(s) recorded, {} replayed",
                rec.task, rec.faults_injected, live.faults_injected
            ));
        }
        if live.recovered_files != rec.recovered_files {
            out.push(format!(
                "task \"{}\": recovered files recorded {:?} vs replayed {:?}",
                rec.task, rec.recovered_files, live.recovered_files
            ));
        }
    }
    for live in &run.outcomes {
        if !manifest.outcomes.iter().any(|o| o.task == live.task) {
            out.push(format!(
                "task \"{}\": replay ran it but the recording has no outcome",
                live.task
            ));
        }
    }
}

fn compare_images(recorded: &BTreeMap<String, Vec<u8>>, fs: &MemFs, out: &mut Vec<String>) {
    let live_names = fs.list();
    for name in &live_names {
        if !recorded.contains_key(name) {
            out.push(format!(
                "file \"{name}\": replay produced it but the bundle has no final image"
            ));
        }
    }
    for (name, want) in recorded {
        let Some(got) = fs.snapshot(name) else {
            out.push(format!(
                "file \"{name}\": bundled final image missing after replay"
            ));
            continue;
        };
        if &got != want {
            let at = want
                .iter()
                .zip(got.iter())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| want.len().min(got.len()));
            out.push(format!(
                "file \"{name}\": content differs at byte {at} (recorded {} bytes, replayed {})",
                want.len(),
                got.len()
            ));
        }
    }
}

/// Records `spec` over `fs` with `opts`, then freezes the run into a
/// replay bundle. The initial filesystem state is snapshotted before the
/// run. `manual_clock` must say whether `opts.clock` is a [`ManualClock`];
/// pass it through from wherever the clock was constructed.
pub fn record_to_bundle(
    spec: &WorkflowSpec,
    fs: &MemFs,
    opts: &RecordOptions,
    params: impl Into<String>,
    tool_version: impl Into<String>,
    manual_clock: bool,
) -> Result<(RecordedRun, ReplayBundle), BundleError> {
    let initial: BTreeMap<String, Vec<u8>> = fs
        .list()
        .into_iter()
        .filter_map(|name| fs.snapshot(&name).map(|bytes| (name, bytes)))
        .collect();
    let (params, tool_version) = (params.into(), tool_version.into());
    let mut run =
        record_opts(spec, fs, opts).map_err(|e| BundleError::ReplayFailed(e.to_string()))?;
    run.bundle.meta.origin = Some(TraceOrigin {
        workload: spec.name.clone(),
        params: params.clone(),
        tool_version: tool_version.clone(),
    });
    let manifest = BundleManifest::new(
        spec.name.clone(),
        params,
        tool_version,
        opts,
        manual_clock,
        run.outcomes.clone(),
    );
    let bundle = ReplayBundle::pack(manifest, run.bundle.clone(), initial, fs);
    Ok((run, bundle))
}

/// Convenience used by tests and the CLI: a [`ManualClock`]-driven
/// [`RecordOptions`] clone of `opts`, for timestamp-deterministic bundles.
pub fn with_manual_clock(mut opts: RecordOptions) -> RecordOptions {
    opts.clock = Some(Arc::new(ManualClock::new()));
    opts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use crate::spec::{TaskIo, TaskSpec};
    use dayu_hdf::{DataType, DatasetBuilder, Durability};
    use dayu_vfd::{CrashSchedule, FaultSchedule};

    fn pc_spec() -> WorkflowSpec {
        WorkflowSpec::new("pc")
            .stage(
                "produce",
                vec![TaskSpec::new("producer", |io: &TaskIo| {
                    let f = io.create("data.h5")?;
                    let mut ds = f.root().create_dataset(
                        "d",
                        DatasetBuilder::new(DataType::Int { width: 8 }, &[64]),
                    )?;
                    ds.write_u64s(&[5; 64])?;
                    ds.close()?;
                    f.close()
                })],
            )
            .stage(
                "consume",
                vec![TaskSpec::new("consumer", |io: &TaskIo| {
                    let f = io.open("data.h5")?;
                    let mut ds = f.root().open_dataset("d")?;
                    assert_eq!(ds.read_u64s()?[0], 5);
                    ds.close()?;
                    f.close()
                })],
            )
    }

    fn record_pc(opts: &RecordOptions) -> ReplayBundle {
        let fs = MemFs::new();
        let (_, bundle) =
            record_to_bundle(&pc_spec(), &fs, opts, "scale=test", "test", false).unwrap();
        bundle
    }

    #[test]
    fn clean_run_replays_with_zero_divergence() {
        let bundle = record_pc(&RecordOptions::default());
        let origin = bundle.trace.meta.origin.as_ref().expect("origin stamped");
        assert_eq!(origin.workload, "pc");
        assert_eq!(origin.params, "scale=test");
        let fs = MemFs::new();
        let report = replay_bundle(&bundle, &pc_spec(), &fs).unwrap();
        assert!(report.op_checked);
        assert!(
            report.validated(),
            "divergence={:?} mismatches={:?}",
            report.divergence,
            report.mismatches
        );
        assert_eq!(
            fs.snapshot("data.h5"),
            bundle.final_images.get("data.h5").cloned()
        );
    }

    #[test]
    fn chaos_run_replays_with_zero_divergence() {
        // The producer body performs exactly one raw-data op (the dataset
        // write), so the transient fault keys to data-op 0.
        let opts = RecordOptions::default()
            .with_chaos(FaultSchedule::new(5).with_transient_at(0))
            .with_retry(RetryPolicy::default().with_backoff(0, 0));
        let bundle = record_pc(&opts);
        assert_eq!(
            bundle
                .manifest
                .outcomes
                .iter()
                .find(|o| o.task == "producer")
                .unwrap()
                .attempts,
            2
        );
        let report = replay_bundle(&bundle, &pc_spec(), &MemFs::new()).unwrap();
        assert!(
            report.validated(),
            "divergence={:?} mismatches={:?}",
            report.divergence,
            report.mismatches
        );
    }

    #[test]
    fn crash_recovery_run_replays_with_zero_divergence() {
        let opts = RecordOptions::default()
            .with_crash(CrashSchedule::new(11).with_crash_at(6).torn())
            .with_durability(Durability::Journal)
            .with_resume(true)
            .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
        let bundle = record_pc(&opts);
        let report = replay_bundle(&bundle, &pc_spec(), &MemFs::new()).unwrap();
        assert!(
            report.validated(),
            "divergence={:?} mismatches={:?}",
            report.divergence,
            report.mismatches
        );
    }

    #[test]
    fn manual_clock_replay_is_byte_identical() {
        let opts = with_manual_clock(
            RecordOptions::default()
                .with_chaos(FaultSchedule::new(9).with_transient_at(0))
                .with_retry(RetryPolicy::default().with_backoff(0, 0)),
        );
        let fs = MemFs::new();
        let (_, bundle) =
            record_to_bundle(&pc_spec(), &fs, &opts, "scale=test", "test", true).unwrap();
        assert!(bundle.manifest.manual_clock);
        let fs2 = MemFs::new();
        let report = replay_bundle(&bundle, &pc_spec(), &fs2).unwrap();
        assert!(report.validated());
        // Byte-identical trace: same ManualClock timeline on both runs.
        assert_eq!(
            report.run.bundle.to_binary_bytes(),
            bundle.trace.to_binary_bytes()
        );
    }

    #[test]
    fn perturbed_schedule_diverges() {
        // Record with a transient fault at data-op 0: the producer fails
        // once, retries, and succeeds on attempt 2. Then replay a doctored
        // bundle whose chaos kills the device permanently at op 0: the
        // live producer can never reach the recorded success, so either
        // the op stream or the outcome diverges — naming the producer.
        let opts = RecordOptions::default()
            .with_chaos(FaultSchedule::new(5).with_transient_at(0))
            .with_retry(RetryPolicy::default().with_backoff(0, 0));
        let mut bundle = record_pc(&opts);
        assert_eq!(
            bundle
                .manifest
                .outcomes
                .iter()
                .find(|o| o.task == "producer")
                .unwrap()
                .attempts,
            2
        );
        bundle.manifest.chaos = Some(FaultSchedule::new(5).with_dead_at(0));
        let report = replay_bundle(&bundle, &pc_spec(), &MemFs::new()).unwrap();
        assert!(!report.validated());
        if let Some(d) = &report.divergence {
            assert_eq!(d.task, "producer");
        } else {
            assert!(report.mismatches.iter().any(|m| m.contains("producer")));
        }
    }

    #[test]
    fn wrong_spec_is_rejected() {
        let bundle = record_pc(&RecordOptions::default());
        let other = WorkflowSpec::new("other").stage(
            "s",
            vec![TaskSpec::new("t", |io: &TaskIo| {
                let f = io.create("x.h5")?;
                f.close()
            })],
        );
        match replay_bundle(&bundle, &other, &MemFs::new()) {
            Err(BundleError::WorkloadMismatch { bundle: b, spec: s }) => {
                assert_eq!(b, "pc");
                assert_eq!(s, "other");
            }
            other => panic!("expected WorkloadMismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_final_image_is_a_mismatch() {
        let mut bundle = record_pc(&RecordOptions::default());
        let img = bundle.final_images.get_mut("data.h5").unwrap();
        let last = img.len() - 1;
        img[last] ^= 0xFF;
        let report = replay_bundle(&bundle, &pc_spec(), &MemFs::new()).unwrap();
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.contains("data.h5") && m.contains("differs")));
    }
}
