//! Workflow specifications: stages of tasks with I/O bodies.
//!
//! "Stages represent logical groupings of tasks designed to achieve
//! distinct milestones within a larger process"; tasks within a stage can
//! run in parallel, and stages execute in order (the barrier model of
//! PyFLEXTRKR's nine-stage pipeline and DDMD's four-stage iteration).
//!
//! A task's body performs real I/O through the instrumented format library
//! via [`TaskIo`]; its modeled compute time is carried alongside so the
//! replay simulation can account for computation between I/O phases.

use dayu_hdf::{H5File, HdfError, Result};
use dayu_mapper::Mapper;
use dayu_vfd::{FaultInjector, FaultyVfd, MemFs};
use std::sync::Arc;

/// The I/O environment handed to a task body: file create/open through the
/// task's profiling mapper over the shared in-memory filesystem.
///
/// When built with [`TaskIo::with_faults`], every file the task touches is
/// additionally wrapped in a [`FaultyVfd`] sharing one chaos injector, so
/// fault schedules are keyed to the task's global data-op sequence. The
/// fault layer sits *below* the profiler: the profiler observes injected
/// failures exactly as it would real device errors, and failed operations
/// are never recorded (the salvage-consistency invariant).
pub struct TaskIo<'a> {
    fs: &'a MemFs,
    mapper: &'a Mapper,
    faults: Option<FaultInjector>,
}

impl<'a> TaskIo<'a> {
    /// An I/O environment over `fs`, instrumented by `mapper`. The runner
    /// builds these automatically; standalone benchmarks construct them
    /// directly.
    pub fn new(fs: &'a MemFs, mapper: &'a Mapper) -> Self {
        Self {
            fs,
            mapper,
            faults: None,
        }
    }

    /// Like [`TaskIo::new`], but every file is wrapped in a fault-injecting
    /// driver sharing `injector` (clones share state, so op accounting
    /// spans all of the task's files and retry attempts).
    pub fn with_faults(fs: &'a MemFs, mapper: &'a Mapper, injector: FaultInjector) -> Self {
        Self {
            fs,
            mapper,
            faults: Some(injector),
        }
    }

    /// Creates (truncating) a file, instrumented end to end.
    pub fn create(&self, name: &str) -> Result<H5File> {
        match &self.faults {
            Some(inj) => H5File::create(
                self.mapper.wrap_vfd(
                    FaultyVfd::with_injector(self.fs.create(name), inj.clone()),
                    name,
                ),
                name,
                self.mapper.file_options(),
            ),
            None => H5File::create(
                self.mapper.wrap_vfd(self.fs.create(name), name),
                name,
                self.mapper.file_options(),
            ),
        }
    }

    /// Opens an existing file, instrumented end to end.
    pub fn open(&self, name: &str) -> Result<H5File> {
        let vfd = self
            .fs
            .open_existing(name)
            .ok_or_else(|| HdfError::NotFound(name.to_owned()))?;
        match &self.faults {
            Some(inj) => H5File::open(
                self.mapper
                    .wrap_vfd(FaultyVfd::with_injector(vfd, inj.clone()), name),
                name,
                self.mapper.file_options(),
            ),
            None => H5File::open(
                self.mapper.wrap_vfd(vfd, name),
                name,
                self.mapper.file_options(),
            ),
        }
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.fs.exists(name)
    }

    /// Names of all files currently in the shared filesystem.
    pub fn list_files(&self) -> Vec<String> {
        self.fs.list()
    }
}

/// The work a task performs.
pub type TaskBody = Arc<dyn Fn(&TaskIo) -> Result<()> + Send + Sync>;

/// One task of a workflow.
#[derive(Clone)]
pub struct TaskSpec {
    /// Unique task name.
    pub name: String,
    /// Modeled pure-compute time in nanoseconds (charged in the replay
    /// simulation before the task's I/O).
    pub compute_ns: u64,
    /// The task's I/O body.
    pub body: TaskBody,
}

impl TaskSpec {
    /// A task with the given name and body and zero modeled compute.
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&TaskIo) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            compute_ns: 0,
            body: Arc::new(body),
        }
    }

    /// Sets the modeled compute time.
    pub fn with_compute(mut self, nanos: u64) -> Self {
        self.compute_ns = nanos;
        self
    }
}

/// A stage: tasks that may run in parallel.
#[derive(Clone)]
pub struct Stage {
    /// Stage name (e.g. `"simulation"`).
    pub name: String,
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
}

/// A staged workflow.
#[derive(Clone, Default)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub name: String,
    /// Stages in execution order; stage *i+1* starts after every task of
    /// stage *i* completes.
    pub stages: Vec<Stage>,
}

impl WorkflowSpec {
    /// An empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    /// Appends a stage.
    pub fn stage(mut self, name: impl Into<String>, tasks: Vec<TaskSpec>) -> Self {
        self.stages.push(Stage {
            name: name.into(),
            tasks,
        });
        self
    }

    /// Total task count.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// All task names in stage order.
    pub fn task_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .flat_map(|s| s.tasks.iter().map(|t| t.name.clone()))
            .collect()
    }

    /// The stage index of a task.
    pub fn stage_of(&self, task: &str) -> Option<usize> {
        self.stages
            .iter()
            .position(|s| s.tasks.iter().any(|t| t.name == task))
    }

    /// Validates the spec's structure: task names must be unique across all
    /// stages, and every stage must hold at least one task (an empty stage
    /// is a barrier around nothing — always a construction mistake).
    pub fn validate(&self) -> Result<()> {
        for stage in &self.stages {
            if stage.tasks.is_empty() {
                return Err(HdfError::InvalidArgument(format!(
                    "stage {:?} has no tasks",
                    stage.name
                )));
            }
        }
        let names = self.task_names();
        for (i, n) in names.iter().enumerate() {
            if names[i + 1..].contains(n) {
                return Err(HdfError::InvalidArgument(format!(
                    "duplicate task name {n:?}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> TaskBody {
        Arc::new(|_io: &TaskIo| Ok(()))
    }

    #[test]
    fn spec_builder_and_queries() {
        let wf = WorkflowSpec::new("demo")
            .stage(
                "s1",
                vec![
                    TaskSpec {
                        name: "a0".into(),
                        compute_ns: 5,
                        body: noop(),
                    },
                    TaskSpec {
                        name: "a1".into(),
                        compute_ns: 5,
                        body: noop(),
                    },
                ],
            )
            .stage(
                "s2",
                vec![TaskSpec {
                    name: "b".into(),
                    compute_ns: 0,
                    body: noop(),
                }],
            );
        assert_eq!(wf.task_count(), 3);
        assert_eq!(wf.task_names(), vec!["a0", "a1", "b"]);
        assert_eq!(wf.stage_of("a1"), Some(0));
        assert_eq!(wf.stage_of("b"), Some(1));
        assert_eq!(wf.stage_of("zz"), None);
        assert!(wf.validate().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let wf = WorkflowSpec::new("dup")
            .stage("s1", vec![TaskSpec::new("x", |_| Ok(()))])
            .stage("s2", vec![TaskSpec::new("x", |_| Ok(()))]);
        assert!(wf.validate().is_err());
    }

    #[test]
    fn duplicate_names_within_one_stage_rejected() {
        let wf = WorkflowSpec::new("dup").stage(
            "s1",
            vec![
                TaskSpec::new("x", |_| Ok(())),
                TaskSpec::new("x", |_| Ok(())),
            ],
        );
        let err = wf.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate task name"));
    }

    #[test]
    fn empty_stage_rejected() {
        let wf = WorkflowSpec::new("hollow")
            .stage("s1", vec![TaskSpec::new("x", |_| Ok(()))])
            .stage("void", vec![]);
        let err = wf.validate().unwrap_err();
        assert!(err.to_string().contains("has no tasks"), "{err}");
    }

    #[test]
    fn empty_workflow_is_valid() {
        // No stages at all is fine (a spec under construction); only a
        // present-but-empty stage is rejected.
        assert!(WorkflowSpec::new("blank").validate().is_ok());
    }

    #[test]
    fn task_with_compute() {
        let t = TaskSpec::new("t", |_| Ok(())).with_compute(1_000_000);
        assert_eq!(t.compute_ns, 1_000_000);
    }

    #[test]
    fn task_io_roundtrip() {
        use dayu_hdf::{DataType, DatasetBuilder};
        let fs = MemFs::new();
        let mapper = Mapper::new("wf");
        mapper.set_task("t");
        let io = TaskIo::new(&fs, &mapper);
        assert!(!io.exists("x.h5"));
        let f = io.create("x.h5").unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[4]))
            .unwrap();
        ds.write(&[9; 4]).unwrap();
        ds.close().unwrap();
        f.close().unwrap();

        assert!(io.exists("x.h5"));
        assert_eq!(io.list_files(), vec!["x.h5"]);
        let f = io.open("x.h5").unwrap();
        let mut ds = f.root().open_dataset("d").unwrap();
        assert_eq!(ds.read().unwrap(), vec![9; 4]);
        ds.close().unwrap();
        f.close().unwrap();

        assert!(matches!(io.open("missing.h5"), Err(HdfError::NotFound(_))));
    }
}
