//! Workflow specifications: stages of tasks with I/O bodies.
//!
//! "Stages represent logical groupings of tasks designed to achieve
//! distinct milestones within a larger process"; tasks within a stage can
//! run in parallel, and stages execute in order (the barrier model of
//! PyFLEXTRKR's nine-stage pipeline and DDMD's four-stage iteration).
//!
//! A task's body performs real I/O through the instrumented format library
//! via [`TaskIo`]; its modeled compute time is carried alongside so the
//! replay simulation can account for computation between I/O phases.

use crate::contract::IoContract;
use dayu_hdf::{Durability, FileOptions, H5File, HdfError, RecoveryReport, Result};
use dayu_mapper::Mapper;
use dayu_vfd::{
    CrashController, CrashVfd, FaultInjector, FaultyVfd, IoEngineConfig, MemFs, ReplaySession,
    ReplayVfd, Vfd, VfdError,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The I/O environment handed to a task body: file create/open through the
/// task's profiling mapper over the shared in-memory filesystem.
///
/// When built with [`TaskIo::with_faults`], every file the task touches is
/// additionally wrapped in a [`FaultyVfd`] sharing one chaos injector, so
/// fault schedules are keyed to the task's global data-op sequence. A
/// [`TaskIo::with_crash`] controller adds a [`CrashVfd`] beneath the fault
/// layer, modelling process death at the storage device. Both injection
/// layers sit *below* the profiler: the profiler observes injected failures
/// exactly as it would real device errors, and failed operations are never
/// recorded (the salvage-consistency invariant).
///
/// In resume mode ([`TaskIo::with_resume`]) a `create` of a file that
/// already exists reopens it instead — running crash recovery on a
/// journaled image — so a retried task continues from whatever its dead
/// predecessor committed rather than starting over. Bodies that want to be
/// resumable must use idempotent object helpers
/// ([`ensure_group`](dayu_hdf::Group::ensure_group) /
/// [`ensure_dataset`](dayu_hdf::Group::ensure_dataset)).
pub struct TaskIo<'a> {
    fs: &'a MemFs,
    mapper: &'a Mapper,
    faults: Option<FaultInjector>,
    crash: Option<CrashController>,
    durability: Durability,
    io_engine: IoEngineConfig,
    resume: bool,
    replay: Option<ReplaySession>,
    recoveries: Mutex<Vec<(String, RecoveryReport)>>,
}

impl<'a> TaskIo<'a> {
    /// An I/O environment over `fs`, instrumented by `mapper`. The runner
    /// builds these automatically; standalone benchmarks construct them
    /// directly.
    pub fn new(fs: &'a MemFs, mapper: &'a Mapper) -> Self {
        Self {
            fs,
            mapper,
            faults: None,
            crash: None,
            durability: Durability::default(),
            io_engine: IoEngineConfig::default(),
            resume: false,
            replay: None,
            recoveries: Mutex::new(Vec::new()),
        }
    }

    /// Like [`TaskIo::new`], but every file is wrapped in a fault-injecting
    /// driver sharing `injector` (clones share state, so op accounting
    /// spans all of the task's files and retry attempts).
    pub fn with_faults(fs: &'a MemFs, mapper: &'a Mapper, injector: FaultInjector) -> Self {
        let mut io = Self::new(fs, mapper);
        io.faults = Some(injector);
        io
    }

    /// Adds a crash controller: every file is additionally wrapped in a
    /// [`CrashVfd`] sharing `controller`, so a seeded crash point counts
    /// writes across all of the task's files.
    pub fn with_crash(mut self, controller: CrashController) -> Self {
        self.crash = Some(controller);
        self
    }

    /// Sets the durability mode files are created/opened with (journaled
    /// files survive crash points and are recovered on reopen).
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Sets the I/O engine configuration files are created/opened with
    /// (batched mode turns whole-dataspace chunk sweeps into coalesced
    /// batch submissions with readahead).
    pub fn with_io_engine(mut self, engine: IoEngineConfig) -> Self {
        self.io_engine = engine;
        self
    }

    /// Enables resume mode: `create` of an existing file reopens (and
    /// recovers) it instead of truncating.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Attaches a replay session: every file is additionally wrapped in a
    /// [`ReplayVfd`] that cross-checks successful operations against the
    /// recorded stream the session's validator holds.
    pub fn with_replay(mut self, session: ReplaySession) -> Self {
        self.replay = Some(session);
        self
    }

    /// Stacks the injection layers under the profiler: memory file →
    /// crash device → fault injector → replay validator → profiling
    /// wrapper. The replay layer sits directly beneath the profiler so it
    /// observes exactly the successful operations the recording holds.
    fn stack<V: Vfd + 'static>(&self, vfd: V, name: &str) -> Box<dyn Vfd> {
        let mut v: Box<dyn Vfd> = Box::new(vfd);
        if let Some(c) = &self.crash {
            v = Box::new(CrashVfd::with_controller(v, c.clone()));
        }
        if let Some(inj) = &self.faults {
            v = Box::new(FaultyVfd::with_injector(v, inj.clone()));
        }
        if let Some(sess) = &self.replay {
            v = Box::new(ReplayVfd::new(v, sess.clone(), name));
        }
        v
    }

    fn options(&self) -> FileOptions {
        self.mapper
            .file_options()
            .with_durability(self.durability)
            .with_io_engine(self.io_engine)
    }

    /// Creates a file, instrumented end to end. In resume mode an existing
    /// file is recovered and reopened instead of truncated; only if its
    /// structure is beyond recovery does the task start it over.
    pub fn create(&self, name: &str) -> Result<H5File> {
        if self.resume && self.fs.exists(name) {
            match self.open(name) {
                Ok(f) => return Ok(f),
                // Environmental failures propagate (the retry loop owns
                // them); structural damage — a torn, empty or corrupt
                // image beyond recovery — falls through to re-create.
                Err(HdfError::Vfd(VfdError::Io(e))) => return Err(HdfError::Vfd(VfdError::Io(e))),
                Err(_) => {}
            }
        }
        H5File::create(
            self.mapper
                .wrap_vfd(self.stack(self.fs.create(name), name), name),
            name,
            self.options(),
        )
    }

    /// Opens an existing file, instrumented end to end. A journaled file
    /// that missed its clean shutdown is recovered here; the recovery is
    /// remembered and surfaced through [`TaskIo::recoveries`].
    pub fn open(&self, name: &str) -> Result<H5File> {
        let vfd = self
            .fs
            .open_existing(name)
            .ok_or_else(|| HdfError::NotFound(name.to_owned()))?;
        let (file, report) = H5File::open_reporting(
            self.mapper.wrap_vfd(self.stack(vfd, name), name),
            name,
            self.options(),
        )?;
        if report.performed_recovery() {
            self.recoveries
                .lock()
                .expect("recoveries lock")
                .push((name.to_owned(), report));
        }
        Ok(file)
    }

    /// Crash recoveries performed by opens so far: `(file, report)` in
    /// open order.
    pub fn recoveries(&self) -> Vec<(String, RecoveryReport)> {
        self.recoveries.lock().expect("recoveries lock").clone()
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.fs.exists(name)
    }

    /// Names of all files currently in the shared filesystem.
    pub fn list_files(&self) -> Vec<String> {
        self.fs.list()
    }
}

/// The work a task performs.
pub type TaskBody = Arc<dyn Fn(&TaskIo) -> Result<()> + Send + Sync>;

/// One task of a workflow.
#[derive(Clone)]
pub struct TaskSpec {
    /// Unique task name.
    pub name: String,
    /// Modeled pure-compute time in nanoseconds (charged in the replay
    /// simulation before the task's I/O).
    pub compute_ns: u64,
    /// The task's I/O body.
    pub body: TaskBody,
    /// Declared symbolic I/O footprint, when the task carries one. `None`
    /// is the conservative ⊤: the static contract passes assume nothing
    /// and prove nothing about the task.
    pub contract: Option<IoContract>,
}

impl TaskSpec {
    /// A task with the given name and body and zero modeled compute.
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&TaskIo) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            compute_ns: 0,
            body: Arc::new(body),
            contract: None,
        }
    }

    /// Sets the modeled compute time.
    pub fn with_compute(mut self, nanos: u64) -> Self {
        self.compute_ns = nanos;
        self
    }

    /// Attaches a declared I/O footprint.
    pub fn with_contract(mut self, contract: IoContract) -> Self {
        self.contract = Some(contract);
        self
    }
}

/// A stage: tasks that may run in parallel.
#[derive(Clone)]
pub struct Stage {
    /// Stage name (e.g. `"simulation"`).
    pub name: String,
    /// The stage's tasks.
    pub tasks: Vec<TaskSpec>,
}

/// A staged workflow.
#[derive(Clone, Default)]
pub struct WorkflowSpec {
    /// Workflow name.
    pub name: String,
    /// Stages in execution order; stage *i+1* starts after every task of
    /// stage *i* completes.
    pub stages: Vec<Stage>,
}

impl WorkflowSpec {
    /// An empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            stages: Vec::new(),
        }
    }

    /// Appends a stage.
    pub fn stage(mut self, name: impl Into<String>, tasks: Vec<TaskSpec>) -> Self {
        self.stages.push(Stage {
            name: name.into(),
            tasks,
        });
        self
    }

    /// Total task count.
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// All task names in stage order.
    pub fn task_names(&self) -> Vec<String> {
        self.stages
            .iter()
            .flat_map(|s| s.tasks.iter().map(|t| t.name.clone()))
            .collect()
    }

    /// The stage index of a task. Linear scan — callers resolving many
    /// names should build a [`WorkflowSpec::index`] once instead.
    pub fn stage_of(&self, task: &str) -> Option<usize> {
        self.stages
            .iter()
            .position(|s| s.tasks.iter().any(|t| t.name == task))
    }

    /// A name→(stage, task) lookup index over this spec, built in one
    /// pass. The runner and the lint passes resolve every task name
    /// through this instead of per-call linear scans.
    pub fn index(&self) -> TaskIndex<'_> {
        TaskIndex::new(self)
    }

    /// Validates the spec's structure: task names must be unique across all
    /// stages, and every stage must hold at least one task (an empty stage
    /// is a barrier around nothing — always a construction mistake).
    pub fn validate(&self) -> Result<()> {
        for stage in &self.stages {
            if stage.tasks.is_empty() {
                return Err(HdfError::InvalidArgument(format!(
                    "stage {:?} has no tasks",
                    stage.name
                )));
            }
        }
        let names = self.task_names();
        for (i, n) in names.iter().enumerate() {
            if names[i + 1..].contains(n) {
                return Err(HdfError::InvalidArgument(format!(
                    "duplicate task name {n:?}"
                )));
            }
        }
        Ok(())
    }
}

/// A name→(stage index, task index) lookup over a [`WorkflowSpec`],
/// built once ([`WorkflowSpec::index`]) and then O(1) per query. On a
/// spec with duplicate task names (rejected by
/// [`WorkflowSpec::validate`]) the first occurrence wins.
pub struct TaskIndex<'a> {
    spec: &'a WorkflowSpec,
    map: HashMap<&'a str, (usize, usize)>,
}

impl<'a> TaskIndex<'a> {
    fn new(spec: &'a WorkflowSpec) -> Self {
        let mut map = HashMap::with_capacity(spec.task_count());
        for (s, stage) in spec.stages.iter().enumerate() {
            for (t, task) in stage.tasks.iter().enumerate() {
                map.entry(task.name.as_str()).or_insert((s, t));
            }
        }
        Self { spec, map }
    }

    /// `(stage index, index within the stage)` of a task.
    pub fn position(&self, task: &str) -> Option<(usize, usize)> {
        self.map.get(task).copied()
    }

    /// The stage index of a task.
    pub fn stage_of(&self, task: &str) -> Option<usize> {
        self.position(task).map(|(s, _)| s)
    }

    /// The spec entry of a task.
    pub fn get(&self, task: &str) -> Option<&'a TaskSpec> {
        self.position(task)
            .map(|(s, t)| &self.spec.stages[s].tasks[t])
    }

    /// Number of indexed tasks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the spec holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop() -> TaskBody {
        Arc::new(|_io: &TaskIo| Ok(()))
    }

    #[test]
    fn spec_builder_and_queries() {
        let wf = WorkflowSpec::new("demo")
            .stage(
                "s1",
                vec![
                    TaskSpec {
                        name: "a0".into(),
                        compute_ns: 5,
                        body: noop(),
                        contract: None,
                    },
                    TaskSpec {
                        name: "a1".into(),
                        compute_ns: 5,
                        body: noop(),
                        contract: None,
                    },
                ],
            )
            .stage(
                "s2",
                vec![TaskSpec {
                    name: "b".into(),
                    compute_ns: 0,
                    body: noop(),
                    contract: None,
                }],
            );
        assert_eq!(wf.task_count(), 3);
        assert_eq!(wf.task_names(), vec!["a0", "a1", "b"]);
        assert_eq!(wf.stage_of("a1"), Some(0));
        assert_eq!(wf.stage_of("b"), Some(1));
        assert_eq!(wf.stage_of("zz"), None);
        assert!(wf.validate().is_ok());
    }

    #[test]
    fn index_agrees_with_linear_lookup() {
        let wf = WorkflowSpec::new("idx")
            .stage(
                "s1",
                vec![
                    TaskSpec::new("a0", |_| Ok(())),
                    TaskSpec::new("a1", |_| Ok(())),
                ],
            )
            .stage("s2", vec![TaskSpec::new("b", |_| Ok(()))]);
        let idx = wf.index();
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        for name in ["a0", "a1", "b"] {
            assert_eq!(idx.stage_of(name), wf.stage_of(name), "{name}");
        }
        assert_eq!(idx.position("a1"), Some((0, 1)));
        assert_eq!(idx.get("b").map(|t| t.name.as_str()), Some("b"));
        assert_eq!(idx.stage_of("zz"), None);
        assert!(idx.get("zz").is_none());
    }

    #[test]
    fn contract_attaches_to_a_task() {
        use crate::contract::IoContract;
        let t = TaskSpec::new("t", |_| Ok(()))
            .with_contract(IoContract::new().writes_all("out.h5", "/d"));
        let c = t.contract.expect("contract attached");
        assert_eq!(c.clauses.len(), 1);
        assert!(TaskSpec::new("bare", |_| Ok(())).contract.is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let wf = WorkflowSpec::new("dup")
            .stage("s1", vec![TaskSpec::new("x", |_| Ok(()))])
            .stage("s2", vec![TaskSpec::new("x", |_| Ok(()))]);
        assert!(wf.validate().is_err());
    }

    #[test]
    fn duplicate_names_within_one_stage_rejected() {
        let wf = WorkflowSpec::new("dup").stage(
            "s1",
            vec![
                TaskSpec::new("x", |_| Ok(())),
                TaskSpec::new("x", |_| Ok(())),
            ],
        );
        let err = wf.validate().unwrap_err();
        assert!(err.to_string().contains("duplicate task name"));
    }

    #[test]
    fn empty_stage_rejected() {
        let wf = WorkflowSpec::new("hollow")
            .stage("s1", vec![TaskSpec::new("x", |_| Ok(()))])
            .stage("void", vec![]);
        let err = wf.validate().unwrap_err();
        assert!(err.to_string().contains("has no tasks"), "{err}");
    }

    #[test]
    fn empty_workflow_is_valid() {
        // No stages at all is fine (a spec under construction); only a
        // present-but-empty stage is rejected.
        assert!(WorkflowSpec::new("blank").validate().is_ok());
    }

    #[test]
    fn task_with_compute() {
        let t = TaskSpec::new("t", |_| Ok(())).with_compute(1_000_000);
        assert_eq!(t.compute_ns, 1_000_000);
    }

    #[test]
    fn task_io_roundtrip() {
        use dayu_hdf::{DataType, DatasetBuilder};
        let fs = MemFs::new();
        let mapper = Mapper::new("wf");
        mapper.set_task("t");
        let io = TaskIo::new(&fs, &mapper);
        assert!(!io.exists("x.h5"));
        let f = io.create("x.h5").unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 1 }, &[4]))
            .unwrap();
        ds.write(&[9; 4]).unwrap();
        ds.close().unwrap();
        f.close().unwrap();

        assert!(io.exists("x.h5"));
        assert_eq!(io.list_files(), vec!["x.h5"]);
        let f = io.open("x.h5").unwrap();
        let mut ds = f.root().open_dataset("d").unwrap();
        assert_eq!(ds.read().unwrap(), vec![9; 4]);
        ds.close().unwrap();
        f.close().unwrap();

        assert!(matches!(io.open("missing.h5"), Err(HdfError::NotFound(_))));
    }
}
