//! Workflow execution with profiling: the record phase.
//!
//! Runs a [`WorkflowSpec`] over a shared in-memory filesystem, stage by
//! stage, tasks of a stage in parallel (rayon), each task instrumented by
//! its own [`Mapper`] session — mirroring production DaYu where every task
//! process carries its own profiler and per-task traces are joined
//! afterwards. The result is a workflow-wide [`TraceBundle`] plus the
//! stage/compute metadata the replay simulation needs.

use crate::spec::{TaskIo, WorkflowSpec};
use dayu_hdf::{HdfError, Result};
use dayu_mapper::{Mapper, MapperConfig};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::RealClock;
use dayu_vfd::MemFs;
use rayon::prelude::*;
use std::collections::HashMap;

/// Output of the record phase.
pub struct RecordedRun {
    /// Merged traces of all tasks, task order following stage order.
    pub bundle: TraceBundle,
    /// Stage index per task.
    pub stage_of: HashMap<String, usize>,
    /// Modeled compute nanoseconds per task.
    pub compute_ns: HashMap<String, u64>,
    /// Stage names in order.
    pub stage_names: Vec<String>,
}

impl RecordedRun {
    /// Tasks of the given stage, in declaration order.
    pub fn tasks_of_stage(&self, stage: usize) -> Vec<&str> {
        self.bundle
            .meta
            .task_order
            .iter()
            .filter(|t| self.stage_of.get(t.as_str()) == Some(&stage))
            .map(|t| t.as_str())
            .collect()
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stage_names.len()
    }
}

/// Records a workflow execution with default mapper configuration.
pub fn record(spec: &WorkflowSpec, fs: &MemFs) -> Result<RecordedRun> {
    record_with(spec, fs, &MapperConfig::default())
}

/// Records a workflow execution with an explicit mapper configuration.
pub fn record_with(spec: &WorkflowSpec, fs: &MemFs, cfg: &MapperConfig) -> Result<RecordedRun> {
    spec.validate()?;
    // One clock for the whole run: per-task mappers must stamp events on a
    // common timeline or cross-task ordering (FTG layout, time-dependent
    // input detection) is meaningless.
    let clock = std::sync::Arc::new(RealClock::new());
    let mut bundle = TraceBundle::new(spec.name.clone());
    bundle.meta.page_size = cfg.page_size;
    let mut stage_of = HashMap::new();
    let mut compute_ns = HashMap::new();
    let mut stage_names = Vec::new();

    for (si, stage) in spec.stages.iter().enumerate() {
        stage_names.push(stage.name.clone());
        for t in &stage.tasks {
            stage_of.insert(t.name.clone(), si);
            compute_ns.insert(t.name.clone(), t.compute_ns);
        }
        // Stage barrier: tasks inside the stage run in parallel, each with
        // its own mapper session (its own shared context → correct task
        // attribution under concurrency).
        let results: Vec<Result<TraceBundle>> = stage
            .tasks
            .par_iter()
            .map(|t| {
                let mapper =
                    Mapper::with_config_and_clock(spec.name.clone(), cfg.clone(), clock.clone());
                mapper.set_task(&t.name);
                let io = TaskIo::new(fs, &mapper);
                (t.body)(&io)?;
                mapper.clear_task();
                Ok(mapper.into_bundle())
            })
            .collect();
        for r in results {
            bundle.merge(r?);
        }
    }
    Ok(RecordedRun {
        bundle,
        stage_of,
        compute_ns,
        stage_names,
    })
}

/// Convenience: records and also verifies that every task name in the
/// bundle has a stage (guards against bodies spawning unattributed I/O).
pub fn record_checked(spec: &WorkflowSpec, fs: &MemFs) -> Result<RecordedRun> {
    let run = record(spec, fs)?;
    for t in &run.bundle.meta.task_order {
        if !run.stage_of.contains_key(t.as_str()) {
            return Err(HdfError::InvalidArgument(format!(
                "trace contains unknown task {t}"
            )));
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TaskSpec;
    use dayu_hdf::{DataType, DatasetBuilder};

    fn producer_consumer_spec() -> WorkflowSpec {
        WorkflowSpec::new("pc")
            .stage(
                "produce",
                vec![TaskSpec::new("producer", |io: &TaskIo| {
                    let f = io.create("data.h5")?;
                    let mut ds = f.root().create_dataset(
                        "d",
                        DatasetBuilder::new(DataType::Float { width: 8 }, &[32]),
                    )?;
                    ds.write_f64s(&[1.0; 32])?;
                    ds.close()?;
                    f.close()
                })
                .with_compute(1_000)],
            )
            .stage(
                "consume",
                vec![
                    TaskSpec::new("consumer_0", |io: &TaskIo| {
                        let f = io.open("data.h5")?;
                        let mut ds = f.root().open_dataset("d")?;
                        assert_eq!(ds.read_f64s()?[0], 1.0);
                        ds.close()?;
                        f.close()
                    }),
                    TaskSpec::new("consumer_1", |io: &TaskIo| {
                        let f = io.open("data.h5")?;
                        let mut ds = f.root().open_dataset("d")?;
                        ds.read_f64s()?;
                        ds.close()?;
                        f.close()
                    }),
                ],
            )
    }

    #[test]
    fn record_produces_cross_task_traces() {
        let fs = MemFs::new();
        let run = record(&producer_consumer_spec(), &fs).unwrap();
        assert_eq!(
            run.bundle.meta.task_order,
            vec!["producer".into(), "consumer_0".into(), "consumer_1".into()]
        );
        assert_eq!(run.stage_of["producer"], 0);
        assert_eq!(run.stage_of["consumer_1"], 1);
        assert_eq!(run.compute_ns["producer"], 1_000);
        assert_eq!(run.stage_names, vec!["produce", "consume"]);
        assert_eq!(run.tasks_of_stage(1), vec!["consumer_0", "consumer_1"]);
        assert_eq!(run.stage_count(), 2);

        // The dataset appears in traces of all three tasks.
        let tasks_touching: std::collections::BTreeSet<&str> = run
            .bundle
            .vol
            .iter()
            .filter(|r| r.object.as_str() == "/d")
            .map(|r| r.task.as_str())
            .collect();
        assert_eq!(tasks_touching.len(), 3);
    }

    #[test]
    fn task_errors_propagate() {
        let spec = WorkflowSpec::new("bad").stage(
            "s",
            vec![TaskSpec::new("fails", |io: &TaskIo| {
                io.open("missing.h5").map(|_| ())
            })],
        );
        let fs = MemFs::new();
        assert!(matches!(record(&spec, &fs), Err(HdfError::NotFound(_))));
    }

    #[test]
    fn parallel_stage_tasks_have_correct_attribution() {
        // 8 parallel writers; each trace record must carry its own task.
        let mut tasks = Vec::new();
        for i in 0..8 {
            let name = format!("w{i}");
            let file = format!("out{i}.h5");
            tasks.push(TaskSpec::new(name.clone(), move |io: &TaskIo| {
                let f = io.create(&file)?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[16]))?;
                ds.write_u64s(&[0; 16])?;
                ds.close()?;
                f.close()
            }));
        }
        let spec = WorkflowSpec::new("par").stage("writers", tasks);
        let fs = MemFs::new();
        let run = record_checked(&spec, &fs).unwrap();
        for i in 0..8 {
            let task = format!("w{i}");
            let file = format!("out{i}.h5");
            assert!(
                run.bundle
                    .vfd
                    .iter()
                    .filter(|r| r.task.as_str() == task)
                    .all(|r| r.file.as_str() == file),
                "records of {task} only touch {file}"
            );
        }
        assert_eq!(fs.list().len(), 8);
    }

    #[test]
    fn record_with_io_tracing_off() {
        let fs = MemFs::new();
        let cfg = MapperConfig {
            trace_io: false,
            ..Default::default()
        };
        let run = record_with(&producer_consumer_spec(), &fs, &cfg).unwrap();
        assert!(run.bundle.vfd.is_empty());
        assert!(!run.bundle.files.is_empty(), "stats still present");
    }
}
