//! Workflow execution with profiling: the record phase.
//!
//! Runs a [`WorkflowSpec`] over a shared in-memory filesystem, stage by
//! stage, tasks of a stage in parallel (rayon), each task instrumented by
//! its own [`Mapper`] session — mirroring production DaYu where every task
//! process carries its own profiler and per-task traces are joined
//! afterwards. The result is a workflow-wide [`TraceBundle`] plus the
//! stage/compute metadata the replay simulation needs.
//!
//! The record phase is fault-tolerant ([`record_opts`]): an optional chaos
//! schedule injects storage faults beneath the profiler, transient failures
//! are retried per [`RetryPolicy`], and a task that fails permanently still
//! contributes a salvaged, `degraded`-marked trace fragment so the analyzer
//! can build a partial FTG/SDG instead of nothing. Every task's fate is
//! reported as a [`TaskOutcome`]; sibling tasks of a failed task always run
//! to completion.

use crate::retry::RetryPolicy;
use crate::spec::{TaskIo, TaskSpec, WorkflowSpec};
use dayu_hdf::{Durability, HdfError, Result};
use dayu_mapper::{Mapper, MapperConfig};
use dayu_trace::ids::TaskKey;
use dayu_trace::store::TraceBundle;
use dayu_trace::time::{Clock, RealClock};
use dayu_vfd::{
    CrashController, CrashSchedule, FaultInjector, FaultSchedule, IoEngineConfig, MemFs,
    ReplaySession, ReplayValidator,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The fate of one task during recording.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskOutcome {
    /// Task name.
    pub task: String,
    /// Attempts made (1 = succeeded or failed without retry).
    pub attempts: u32,
    /// Whether the task failed permanently and its trace was salvaged as a
    /// truncated fragment.
    pub degraded: bool,
    /// The final error message, if the task did not succeed.
    pub error: Option<String>,
    /// Faults the chaos engine injected into this task (0 without chaos).
    pub faults_injected: u64,
    /// Files whose crash recovery this task's attempts performed on
    /// reopen, in recovery order (empty without crash injection).
    pub recovered_files: Vec<String>,
}

impl TaskOutcome {
    /// Whether the task completed successfully (possibly after retries).
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }

    /// Whether any attempt of this task resumed from crash recovery.
    pub fn recovered(&self) -> bool {
        !self.recovered_files.is_empty()
    }
}

/// Knobs for the record phase. `Default` reproduces [`record`]'s behaviour
/// except that transient I/O errors are retried.
#[derive(Clone)]
pub struct RecordOptions {
    /// Mapper (profiler) configuration.
    pub mapper: MapperConfig,
    /// Retry policy for failed task bodies.
    pub retry: RetryPolicy,
    /// Fault schedule to inject beneath the profiler; `None` (or a no-op
    /// schedule) records without chaos.
    pub chaos: Option<FaultSchedule>,
    /// Crash schedule: deterministically kills each task's I/O at a seeded
    /// write, tearing or dropping in-flight bytes; `None` (or a no-op
    /// schedule) records without crash injection.
    pub crash: Option<CrashSchedule>,
    /// Durability mode for every file the workflow touches. Crash
    /// injection without [`Durability::Journal`] loses whatever the torn
    /// file held — exactly the failure the journal exists to prevent.
    pub durability: Durability,
    /// If `true`, retry attempts resume: `create` of a file the previous
    /// attempt left behind recovers and reopens it instead of restarting
    /// from scratch (bodies must use the idempotent `ensure_*` helpers).
    pub resume: bool,
    /// If `true`, a permanently failed task contributes a truncated,
    /// `degraded`-marked trace fragment and recording continues; if
    /// `false`, task failures abort the run with an error naming every
    /// failed task.
    pub salvage: bool,
    /// Trace clock override; `None` uses a fresh [`RealClock`]. Supply a
    /// `ManualClock` for timestamp-deterministic bundles.
    pub clock: Option<Arc<dyn Clock>>,
    /// Replay validator: when present, every task's driver stack gains a
    /// [`dayu_vfd::ReplayVfd`] cross-checking live operations against the
    /// recorded streams the validator holds. Populated by the replay
    /// engine; plain recording leaves it `None`.
    pub replay: Option<Arc<ReplayValidator>>,
    /// I/O engine configuration for every file the workflow touches.
    /// Batched mode plans whole-dataspace chunk sweeps as coalesced batch
    /// submissions with readahead; the recorded trace streams are
    /// contractually identical to scalar mode.
    pub io_engine: IoEngineConfig,
}

impl Default for RecordOptions {
    fn default() -> Self {
        Self {
            mapper: MapperConfig::default(),
            retry: RetryPolicy::default(),
            chaos: None,
            crash: None,
            durability: Durability::default(),
            resume: false,
            salvage: true,
            clock: None,
            replay: None,
            io_engine: IoEngineConfig::default(),
        }
    }
}

impl std::fmt::Debug for RecordOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordOptions")
            .field("retry", &self.retry)
            .field("chaos", &self.chaos)
            .field("crash", &self.crash)
            .field("durability", &self.durability)
            .field("resume", &self.resume)
            .field("salvage", &self.salvage)
            .field("clock", &self.clock.as_ref().map(|_| "<override>"))
            .field("replay", &self.replay.as_ref().map(|_| "<validator>"))
            .field("io_engine", &self.io_engine)
            .finish_non_exhaustive()
    }
}

impl RecordOptions {
    /// Options with the given chaos schedule.
    pub fn with_chaos(mut self, schedule: FaultSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// Options with the given crash schedule.
    pub fn with_crash(mut self, schedule: CrashSchedule) -> Self {
        self.crash = Some(schedule);
        self
    }

    /// Options with the given durability mode.
    pub fn with_durability(mut self, durability: Durability) -> Self {
        self.durability = durability;
        self
    }

    /// Options with resume-from-recovery enabled (or disabled) for retry
    /// attempts.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Options with the given retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Options with a replay validator attached to every task's stack.
    pub fn with_replay_validator(mut self, validator: Arc<ReplayValidator>) -> Self {
        self.replay = Some(validator);
        self
    }

    /// Options with the given I/O engine configuration.
    pub fn with_io_engine(mut self, engine: IoEngineConfig) -> Self {
        self.io_engine = engine;
        self
    }
}

/// Output of the record phase.
#[derive(Debug)]
pub struct RecordedRun {
    /// Merged traces of all tasks, task order following stage order.
    pub bundle: TraceBundle,
    /// Stage index per task.
    pub stage_of: HashMap<String, usize>,
    /// Modeled compute nanoseconds per task.
    pub compute_ns: HashMap<String, u64>,
    /// Stage names in order.
    pub stage_names: Vec<String>,
    /// Per-task outcome, in stage-then-declaration order.
    pub outcomes: Vec<TaskOutcome>,
}

impl RecordedRun {
    /// Tasks of the given stage, in declaration order.
    pub fn tasks_of_stage(&self, stage: usize) -> Vec<&str> {
        self.bundle
            .meta
            .task_order
            .iter()
            .filter(|t| self.stage_of.get(t.as_str()) == Some(&stage))
            .map(|t| t.as_str())
            .collect()
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stage_names.len()
    }

    /// Whether any task's trace was salvaged as a degraded fragment.
    pub fn degraded(&self) -> bool {
        self.outcomes.iter().any(|o| o.degraded)
    }

    /// Whether any task resumed from crash recovery.
    pub fn recovered(&self) -> bool {
        self.outcomes.iter().any(|o| o.recovered())
    }

    /// Names of tasks that resumed from crash recovery, in outcome order.
    pub fn recovered_tasks(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.recovered())
            .map(|o| o.task.as_str())
            .collect()
    }

    /// Names of tasks that did not succeed, in outcome order.
    pub fn failed_tasks(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| !o.succeeded())
            .map(|o| o.task.as_str())
            .collect()
    }

    /// The outcome recorded for `task`.
    pub fn outcome_of(&self, task: &str) -> Option<&TaskOutcome> {
        self.outcomes.iter().find(|o| o.task == task)
    }
}

/// Records a workflow execution with default mapper configuration. Task
/// failures abort the run (after the whole stage finishes) with an error
/// naming every failed task.
pub fn record(spec: &WorkflowSpec, fs: &MemFs) -> Result<RecordedRun> {
    record_with(spec, fs, &MapperConfig::default())
}

/// Records a workflow execution with an explicit mapper configuration.
/// Strict like [`record`]: no chaos, no retries, no salvage — but sibling
/// tasks of a failed task still complete, and when several tasks fail the
/// error is a [`HdfError::MultiFailure`] listing all of them (a single
/// failure propagates the original error unchanged).
pub fn record_with(spec: &WorkflowSpec, fs: &MemFs, cfg: &MapperConfig) -> Result<RecordedRun> {
    record_opts(
        spec,
        fs,
        &RecordOptions {
            mapper: cfg.clone(),
            retry: RetryPolicy::none(),
            salvage: false,
            ..RecordOptions::default()
        },
    )
}

/// One task's result inside a stage: its outcome, its (possibly salvaged)
/// trace, and the typed error kept for strict propagation.
struct TaskRun {
    outcome: TaskOutcome,
    bundle: Option<TraceBundle>,
    error: Option<HdfError>,
}

/// Runs one task body with retries, chaos injection and salvage.
fn run_task(
    spec: &WorkflowSpec,
    fs: &MemFs,
    opts: &RecordOptions,
    clock: &Arc<dyn Clock>,
    t: &TaskSpec,
) -> TaskRun {
    // One injector per task, shared across all its files and *all* its
    // attempts: the data-op counter keeps advancing, so a deterministic
    // fault keyed to op n fires once and retries make progress.
    let injector: Option<FaultInjector> = opts
        .chaos
        .as_ref()
        .filter(|s| !s.is_noop())
        .map(|s| s.injector_for(&t.name));
    // Likewise one crash controller per task: its write counter and
    // fired-latch span attempts, so the seeded crash strikes exactly once
    // and a revived retry proceeds past the crash point.
    let crash: Option<CrashController> = opts
        .crash
        .as_ref()
        .filter(|s| !s.is_noop())
        .map(|s| s.controller_for(&t.name));
    let jitter_seed = opts.chaos.as_ref().map(|s| s.seed).unwrap_or(0);
    let started = Instant::now();
    let mut attempts = 0u32;
    let mut recovered_files: Vec<String> = Vec::new();
    loop {
        attempts += 1;
        // A fresh mapper per attempt: a failed attempt's records are
        // discarded rather than double-counted (files are re-created on
        // retry, so the successful attempt's trace matches a clean run).
        let mapper =
            Mapper::with_config_and_clock(spec.name.clone(), opts.mapper.clone(), clock.clone());
        mapper.set_task(&t.name);
        let mut io = match &injector {
            Some(inj) => TaskIo::with_faults(fs, &mapper, inj.clone()),
            None => TaskIo::new(fs, &mapper),
        };
        if let Some(c) = &crash {
            io = io.with_crash(c.clone());
        }
        if let Some(v) = &opts.replay {
            v.begin_attempt(&t.name, attempts);
            io = io.with_replay(ReplaySession::new(v.clone(), t.name.as_str()));
        }
        // Resume applies to *retry* attempts only: the first attempt of a
        // task creates its outputs from scratch like any clean run.
        io = io
            .with_durability(opts.durability)
            .with_io_engine(opts.io_engine)
            .with_resume(opts.resume && attempts > 1);
        let faults_so_far = || injector.as_ref().map(|i| i.faults_injected()).unwrap_or(0);
        let result = (t.body)(&io);
        for (file, _) in io.recoveries() {
            if !recovered_files.contains(&file) {
                recovered_files.push(file);
            }
        }
        match result {
            Ok(()) => {
                if let Some(v) = &opts.replay {
                    v.finish_task(&t.name, true);
                }
                mapper.clear_task();
                let mut bundle = mapper.into_bundle();
                if !recovered_files.is_empty() {
                    bundle.mark_recovered(TaskKey::new(t.name.as_str()));
                }
                return TaskRun {
                    outcome: TaskOutcome {
                        task: t.name.clone(),
                        attempts,
                        degraded: false,
                        error: None,
                        faults_injected: faults_so_far(),
                        recovered_files,
                    },
                    bundle: Some(bundle),
                    error: None,
                };
            }
            Err(e) => {
                let deadline_hit = opts
                    .retry
                    .deadline_ns
                    .is_some_and(|d| started.elapsed().as_nanos() as u64 >= d);
                if crate::retry::retryable(&e)
                    && attempts < opts.retry.max_attempts
                    && !deadline_hit
                {
                    // A crashed "machine" rejects all I/O until revived;
                    // the fired-latch stays set, so the retry runs clean.
                    if let Some(c) = &crash {
                        c.revive();
                    }
                    let pause = opts.retry.backoff_ns(attempts, jitter_seed);
                    if pause > 0 {
                        std::thread::sleep(std::time::Duration::from_nanos(pause));
                    }
                    continue;
                }
                // Permanent failure: salvage what the last attempt traced.
                if let Some(v) = &opts.replay {
                    v.finish_task(&t.name, false);
                }
                let bundle = opts.salvage.then(|| {
                    let mut b = mapper.into_bundle();
                    b.mark_degraded(TaskKey::new(t.name.as_str()));
                    if !recovered_files.is_empty() {
                        b.mark_recovered(TaskKey::new(t.name.as_str()));
                    }
                    b
                });
                return TaskRun {
                    outcome: TaskOutcome {
                        task: t.name.clone(),
                        attempts,
                        degraded: opts.salvage,
                        error: Some(e.to_string()),
                        faults_injected: faults_so_far(),
                        recovered_files,
                    },
                    bundle,
                    error: Some(e),
                };
            }
        }
    }
}

/// Records a workflow execution with full fault-tolerance control: chaos
/// injection, retry/backoff, per-task outcomes and trace salvage.
///
/// With `opts.salvage` **on** (the default), the run always yields a
/// `RecordedRun`: permanently failed tasks contribute degraded trace
/// fragments and later stages still execute (their tasks may fail in turn
/// — e.g. a consumer of a file its dead producer never wrote — and are
/// salvaged the same way). With salvage **off**, the first stage with
/// failures aborts the run after all of its tasks finish: one failure
/// propagates the original error, several are folded into
/// [`HdfError::MultiFailure`].
pub fn record_opts(spec: &WorkflowSpec, fs: &MemFs, opts: &RecordOptions) -> Result<RecordedRun> {
    spec.validate()?;
    // One clock for the whole run: per-task mappers must stamp events on a
    // common timeline or cross-task ordering (FTG layout, time-dependent
    // input detection) is meaningless.
    let clock: Arc<dyn Clock> = opts
        .clock
        .clone()
        .unwrap_or_else(|| Arc::new(RealClock::new()));
    let mut bundle = TraceBundle::new(spec.name.clone());
    bundle.meta.page_size = opts.mapper.page_size;
    // Persist stage membership into the trace itself: the lint
    // happens-before engine derives task concurrency from it, so a
    // recorded bundle stays analyzable without the originating spec.
    bundle.meta.stages = spec
        .stages
        .iter()
        .map(|s| s.tasks.iter().map(|t| TaskKey::new(&t.name)).collect())
        .collect();
    // One indexed pass over the spec yields every per-task lookup table
    // the run needs; the stage loop below no longer rescans task lists.
    let index = spec.index();
    let mut stage_of = HashMap::with_capacity(index.len());
    let mut compute_ns = HashMap::with_capacity(index.len());
    for stage in &spec.stages {
        for t in &stage.tasks {
            let (si, _) = index.position(&t.name).expect("validated spec task");
            stage_of.insert(t.name.clone(), si);
            compute_ns.insert(t.name.clone(), t.compute_ns);
        }
    }
    let mut stage_names = Vec::new();
    let mut outcomes: Vec<TaskOutcome> = Vec::new();

    for stage in spec.stages.iter() {
        stage_names.push(stage.name.clone());
        // Stage barrier: tasks inside the stage run in parallel, each with
        // its own mapper session (its own shared context → correct task
        // attribution under concurrency). `par_iter` preserves input
        // order, so outcomes are deterministic regardless of thread
        // interleaving.
        let results: Vec<TaskRun> = stage
            .tasks
            .par_iter()
            .map(|t| run_task(spec, fs, opts, &clock, t))
            .collect();

        let mut errors: Vec<(String, HdfError)> = Vec::new();
        for run in results {
            if let Some(b) = run.bundle {
                bundle.merge(b);
            }
            if let Some(e) = run.error {
                errors.push((run.outcome.task.clone(), e));
            }
            outcomes.push(run.outcome);
        }
        if !opts.salvage && !errors.is_empty() {
            // Strict mode: abort before later stages run. A single failure
            // keeps its typed error (callers match on the variant); several
            // independent failures become one structured multi-error.
            return Err(if errors.len() == 1 {
                errors.pop().expect("len checked").1
            } else {
                HdfError::MultiFailure(
                    errors
                        .into_iter()
                        .map(|(task, e)| (task, e.to_string()))
                        .collect(),
                )
            });
        }
    }
    Ok(RecordedRun {
        bundle,
        stage_of,
        compute_ns,
        stage_names,
        outcomes,
    })
}

/// Convenience: records and also verifies that every task name in the
/// bundle has a stage (guards against bodies spawning unattributed I/O).
pub fn record_checked(spec: &WorkflowSpec, fs: &MemFs) -> Result<RecordedRun> {
    let run = record(spec, fs)?;
    for t in &run.bundle.meta.task_order {
        if !run.stage_of.contains_key(t.as_str()) {
            return Err(HdfError::InvalidArgument(format!(
                "trace contains unknown task {t}"
            )));
        }
    }
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TaskSpec;
    use dayu_hdf::{DataType, DatasetBuilder};

    fn producer_consumer_spec() -> WorkflowSpec {
        WorkflowSpec::new("pc")
            .stage(
                "produce",
                vec![TaskSpec::new("producer", |io: &TaskIo| {
                    let f = io.create("data.h5")?;
                    let mut ds = f.root().create_dataset(
                        "d",
                        DatasetBuilder::new(DataType::Float { width: 8 }, &[32]),
                    )?;
                    ds.write_f64s(&[1.0; 32])?;
                    ds.close()?;
                    f.close()
                })
                .with_compute(1_000)],
            )
            .stage(
                "consume",
                vec![
                    TaskSpec::new("consumer_0", |io: &TaskIo| {
                        let f = io.open("data.h5")?;
                        let mut ds = f.root().open_dataset("d")?;
                        assert_eq!(ds.read_f64s()?[0], 1.0);
                        ds.close()?;
                        f.close()
                    }),
                    TaskSpec::new("consumer_1", |io: &TaskIo| {
                        let f = io.open("data.h5")?;
                        let mut ds = f.root().open_dataset("d")?;
                        ds.read_f64s()?;
                        ds.close()?;
                        f.close()
                    }),
                ],
            )
    }

    #[test]
    fn record_produces_cross_task_traces() {
        let fs = MemFs::new();
        let run = record(&producer_consumer_spec(), &fs).unwrap();
        assert_eq!(
            run.bundle.meta.task_order,
            vec!["producer".into(), "consumer_0".into(), "consumer_1".into()]
        );
        assert_eq!(run.stage_of["producer"], 0);
        assert_eq!(run.stage_of["consumer_1"], 1);
        assert_eq!(run.compute_ns["producer"], 1_000);
        assert_eq!(run.stage_names, vec!["produce", "consume"]);
        assert_eq!(run.tasks_of_stage(1), vec!["consumer_0", "consumer_1"]);
        // Stage membership travels inside the bundle for the lint HB engine.
        assert_eq!(
            run.bundle.meta.stages,
            vec![
                vec![TaskKey::new("producer")],
                vec![TaskKey::new("consumer_0"), TaskKey::new("consumer_1")],
            ]
        );
        assert_eq!(run.stage_count(), 2);
        assert!(!run.degraded());
        assert!(run.failed_tasks().is_empty());
        assert_eq!(run.outcomes.len(), 3);
        assert!(run
            .outcomes
            .iter()
            .all(|o| o.succeeded() && o.attempts == 1));
        assert_eq!(run.outcome_of("producer").unwrap().faults_injected, 0);

        // The dataset appears in traces of all three tasks.
        let tasks_touching: std::collections::BTreeSet<&str> = run
            .bundle
            .vol
            .iter()
            .filter(|r| r.object.as_str() == "/d")
            .map(|r| r.task.as_str())
            .collect();
        assert_eq!(tasks_touching.len(), 3);
    }

    #[test]
    fn task_errors_propagate() {
        let spec = WorkflowSpec::new("bad").stage(
            "s",
            vec![TaskSpec::new("fails", |io: &TaskIo| {
                io.open("missing.h5").map(|_| ())
            })],
        );
        let fs = MemFs::new();
        assert!(matches!(record(&spec, &fs), Err(HdfError::NotFound(_))));
    }

    #[test]
    fn multiple_sibling_failures_are_all_reported() {
        let spec = WorkflowSpec::new("bad2").stage(
            "s",
            vec![
                TaskSpec::new("ok", |io: &TaskIo| {
                    let f = io.create("fine.h5")?;
                    f.close()
                }),
                TaskSpec::new("fail_a", |io: &TaskIo| io.open("no_a.h5").map(|_| ())),
                TaskSpec::new("fail_b", |io: &TaskIo| io.open("no_b.h5").map(|_| ())),
            ],
        );
        let fs = MemFs::new();
        let err = record(&spec, &fs).unwrap_err();
        match err {
            HdfError::MultiFailure(fails) => {
                let tasks: Vec<&str> = fails.iter().map(|(t, _)| t.as_str()).collect();
                assert_eq!(tasks, vec!["fail_a", "fail_b"]);
                assert!(fails.iter().all(|(_, m)| m.contains("not found")));
            }
            other => panic!("expected MultiFailure, got {other}"),
        }
        // The sibling that succeeded still ran to completion.
        assert!(fs.exists("fine.h5"));
    }

    #[test]
    fn salvage_mode_continues_past_failures() {
        let spec = WorkflowSpec::new("salvaged")
            .stage(
                "s1",
                vec![
                    TaskSpec::new("writer", |io: &TaskIo| {
                        let f = io.create("out.h5")?;
                        let mut ds = f.root().create_dataset(
                            "d",
                            DatasetBuilder::new(DataType::Int { width: 1 }, &[8]),
                        )?;
                        ds.write(&[1; 8])?;
                        ds.close()?;
                        f.close()
                    }),
                    TaskSpec::new("crasher", |io: &TaskIo| io.open("ghost.h5").map(|_| ())),
                ],
            )
            .stage(
                "s2",
                vec![TaskSpec::new("reader", |io: &TaskIo| {
                    let f = io.open("out.h5")?;
                    let mut ds = f.root().open_dataset("d")?;
                    ds.read()?;
                    ds.close()?;
                    f.close()
                })],
            );
        let fs = MemFs::new();
        let run = record_opts(&spec, &fs, &RecordOptions::default()).unwrap();
        assert!(run.degraded());
        assert_eq!(run.failed_tasks(), vec!["crasher"]);
        let crash = run.outcome_of("crasher").unwrap();
        assert!(crash.degraded);
        assert_eq!(crash.attempts, 1, "NotFound is not retryable");
        assert!(crash.error.as_deref().unwrap().contains("not found"));
        // The second stage still ran.
        assert!(run.outcome_of("reader").unwrap().succeeded());
        // The salvaged bundle marks exactly the crashed task.
        assert_eq!(
            run.bundle.meta.degraded_tasks,
            vec![TaskKey::new("crasher")]
        );
    }

    #[test]
    fn transient_chaos_fault_is_retried_to_success() {
        let spec = WorkflowSpec::new("retryable").stage(
            "s",
            vec![TaskSpec::new("writer", |io: &TaskIo| {
                let f = io.create("w.h5")?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[64]))?;
                ds.write_u64s(&[3; 64])?;
                ds.close()?;
                f.close()
            })],
        );
        let fs = MemFs::new();
        // The body performs exactly one raw-data op (the 512-byte dataset
        // write is a single VFD write), so the transient fault keys to
        // data-op 0.
        let opts = RecordOptions::default()
            .with_chaos(FaultSchedule::new(5).with_transient_at(0))
            .with_retry(RetryPolicy::default().with_backoff(0, 0));
        let run = record_opts(&spec, &fs, &opts).unwrap();
        let o = run.outcome_of("writer").unwrap();
        assert!(o.succeeded(), "{:?}", o.error);
        assert_eq!(o.attempts, 2, "one transient fault, one retry");
        assert_eq!(o.faults_injected, 1);
        assert!(!run.degraded());
        assert!(fs.exists("w.h5"));
    }

    #[test]
    fn dead_device_exhausts_retries_and_salvages() {
        let spec = WorkflowSpec::new("doomed").stage(
            "s",
            vec![TaskSpec::new("writer", |io: &TaskIo| {
                let f = io.create("w.h5")?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[64]))?;
                ds.write_u64s(&[3; 64])?;
                ds.close()?;
                f.close()
            })],
        );
        let fs = MemFs::new();
        let opts = RecordOptions::default()
            .with_chaos(FaultSchedule::new(5).with_dead_at(0))
            .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
        let run = record_opts(&spec, &fs, &opts).unwrap();
        let o = run.outcome_of("writer").unwrap();
        assert!(!o.succeeded());
        assert_eq!(o.attempts, 3, "all attempts consumed");
        assert!(o.degraded);
        assert!(
            o.error.as_deref().unwrap().contains("chaos seed"),
            "error carries the seed: {:?}",
            o.error
        );
        assert!(run.bundle.is_degraded(&TaskKey::new("writer")));
        // The salvaged fragment is well-formed JSONL.
        let back = TraceBundle::read_jsonl(&run.bundle.to_jsonl_bytes()[..]).unwrap();
        assert_eq!(back, run.bundle);
    }

    #[test]
    fn deadline_stops_retrying() {
        let spec = WorkflowSpec::new("late").stage(
            "s",
            vec![TaskSpec::new("writer", |io: &TaskIo| {
                let f = io.create("w.h5")?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[64]))?;
                ds.write_u64s(&[3; 64])?;
                ds.close()?;
                f.close()
            })],
        );
        let fs = MemFs::new();
        // The device is permanently dead, every attempt fails; a 0ns
        // deadline means no retry ever starts.
        let opts = RecordOptions::default()
            .with_chaos(FaultSchedule::new(1).with_dead_at(0))
            .with_retry(
                RetryPolicy::default()
                    .attempts(10)
                    .with_backoff(0, 0)
                    .with_deadline_ns(0),
            );
        let run = record_opts(&spec, &fs, &opts).unwrap();
        let o = run.outcome_of("writer").unwrap();
        assert_eq!(o.attempts, 1, "deadline forbids retries");
        assert!(o.degraded);
    }

    #[test]
    fn crashed_task_resumes_from_recovery() {
        use dayu_vfd::CrashSchedule;
        // Sweep the crash point across the task's whole write sequence.
        // Invariant at every point: the run completes, and the final file
        // holds both datasets with the right bytes — whether the retry
        // resumed from a recovered image or restarted from scratch.
        let body = |io: &TaskIo| {
            let f = io.create("c.h5")?;
            let mut a = f
                .root()
                .ensure_dataset("a", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))?;
            a.write_u64s(&[7; 32])?;
            a.close()?;
            f.flush()?; // commit point: "a" is durable from here on
            let mut b = f
                .root()
                .ensure_dataset("b", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))?;
            b.write_u64s(&[9; 32])?;
            b.close()?;
            f.close()
        };
        let mut any_recovered = false;
        for crash_at in 1..24 {
            let spec = WorkflowSpec::new("crashy").stage("s", vec![TaskSpec::new("writer", body)]);
            let fs = MemFs::new();
            let opts = RecordOptions::default()
                .with_crash(CrashSchedule::new(11).with_crash_at(crash_at).torn())
                .with_durability(dayu_hdf::Durability::Journal)
                .with_resume(true)
                .with_retry(RetryPolicy::default().attempts(3).with_backoff(0, 0));
            let run = record_opts(&spec, &fs, &opts).unwrap();
            let o = run.outcome_of("writer").unwrap();
            assert!(o.succeeded(), "crash@{crash_at}: {:?}", o.error);
            assert!(o.attempts <= 2, "crash fires at most once");
            any_recovered |= o.recovered();
            if o.recovered() {
                assert_eq!(o.recovered_files, vec!["c.h5".to_string()]);
                assert!(run.recovered());
                assert_eq!(run.recovered_tasks(), vec!["writer"]);
                assert!(run.bundle.is_recovered(&TaskKey::new("writer")));
            }
            // Committed data round-trips regardless of the crash point.
            let f = dayu_hdf::H5File::open(
                fs.open_existing("c.h5").unwrap(),
                "c.h5",
                Default::default(),
            )
            .unwrap();
            let mut a = f.root().open_dataset("a").unwrap();
            assert_eq!(a.read_u64s().unwrap(), vec![7; 32], "crash@{crash_at}");
            a.close().unwrap();
            let mut b = f.root().open_dataset("b").unwrap();
            assert_eq!(b.read_u64s().unwrap(), vec![9; 32], "crash@{crash_at}");
            b.close().unwrap();
            f.close().unwrap();
        }
        assert!(
            any_recovered,
            "at least one crash point must exercise resume-from-recovery"
        );
    }

    #[test]
    fn parallel_stage_tasks_have_correct_attribution() {
        // 8 parallel writers; each trace record must carry its own task.
        let mut tasks = Vec::new();
        for i in 0..8 {
            let name = format!("w{i}");
            let file = format!("out{i}.h5");
            tasks.push(TaskSpec::new(name.clone(), move |io: &TaskIo| {
                let f = io.create(&file)?;
                let mut ds = f
                    .root()
                    .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[16]))?;
                ds.write_u64s(&[0; 16])?;
                ds.close()?;
                f.close()
            }));
        }
        let spec = WorkflowSpec::new("par").stage("writers", tasks);
        let fs = MemFs::new();
        let run = record_checked(&spec, &fs).unwrap();
        for i in 0..8 {
            let task = format!("w{i}");
            let file = format!("out{i}.h5");
            assert!(
                run.bundle
                    .vfd
                    .iter()
                    .filter(|r| r.task.as_str() == task)
                    .all(|r| r.file.as_str() == file),
                "records of {task} only touch {file}"
            );
        }
        assert_eq!(fs.list().len(), 8);
        // Outcomes preserve declaration order under parallelism.
        let names: Vec<&str> = run.outcomes.iter().map(|o| o.task.as_str()).collect();
        assert_eq!(names, (0..8).map(|i| format!("w{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn record_with_io_tracing_off() {
        let fs = MemFs::new();
        let cfg = MapperConfig {
            trace_io: false,
            ..Default::default()
        };
        let run = record_with(&producer_consumer_spec(), &fs, &cfg).unwrap();
        assert!(run.bundle.vfd.is_empty());
        assert!(!run.bundle.files.is_empty(), "stats still present");
    }
}
