//! Replay-bundle container properties.
//!
//! The `.drb` container carries the only copy of a failed run's evidence,
//! so its integrity story must hold for *arbitrary* contents and
//! *arbitrary* corruption, not just the cases the unit tests picked:
//!
//! 1. **Round-trip fixpoint** — any bundle survives
//!    serialize → parse → serialize byte-identically, whatever manifest
//!    scalars, seeds and image payloads it carries;
//! 2. **Tamper evidence** — flipping any single byte anywhere in the
//!    artifact makes verification fail with a structured error (never a
//!    panic, never a silent pass);
//! 3. **Torn tails** — truncating the artifact at any byte boundary is
//!    detected the same way.

use proptest::prelude::*;
use std::collections::BTreeMap;

use dayu_hdf::Durability;
use dayu_trace::TraceBundle;
use dayu_vfd::{CrashSchedule, FaultSchedule, MemFs};
use dayu_workflow::{BundleManifest, RecordOptions, ReplayBundle, RetryPolicy, TaskOutcome};

/// A bundle whose every varying field is driven by the inputs: chaos and
/// crash seeds, retry shape, durability, flags, outcome list, and the
/// initial/final image payloads.
#[allow(clippy::too_many_arguments)]
fn build(
    chaos_seed: u64,
    fault_prob: f64,
    crash_at: u64,
    attempts: u32,
    journal: bool,
    resume: bool,
    params: String,
    payload: Vec<u8>,
) -> ReplayBundle {
    let opts = RecordOptions::default()
        .with_chaos(
            FaultSchedule::new(chaos_seed)
                .with_fault_prob(fault_prob)
                .with_transient_at(crash_at % 7),
        )
        .with_crash(
            CrashSchedule::new(chaos_seed ^ 0x9E37)
                .with_crash_at(crash_at)
                .torn(),
        )
        .with_retry(
            RetryPolicy::default()
                .attempts(attempts.max(1))
                .with_backoff(0, 0),
        )
        .with_durability(if journal {
            Durability::Journal
        } else {
            Durability::WriteThrough
        })
        .with_resume(resume);
    let outcomes = vec![TaskOutcome {
        task: "producer".into(),
        attempts: attempts.max(1),
        degraded: false,
        error: None,
        faults_injected: u64::from(fault_prob > 0.0),
        recovered_files: if resume {
            vec!["out.h5".into()]
        } else {
            vec![]
        },
    }];
    let manifest = BundleManifest::new("prop-wf", params, "0.0.0-prop", &opts, false, outcomes);
    let mut initial = BTreeMap::new();
    initial.insert("in.h5".to_owned(), payload.clone());
    let fs = MemFs::new();
    fs.restore("out.h5", payload);
    ReplayBundle::pack(manifest, TraceBundle::new("prop-wf"), initial, &fs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// serialize → parse → serialize is a byte-level fixpoint for any
    /// combination of manifest scalars and payload bytes.
    #[test]
    fn round_trip_is_byte_fixpoint(
        chaos_seed in any::<u64>(),
        fault_prob in 0.0f64..1.0,
        crash_at in 0u64..100,
        attempts in 1u32..6,
        journal in any::<bool>(),
        resume in any::<bool>(),
        params in "[a-z=,0-9]{0,24}",
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let bundle = build(
            chaos_seed, fault_prob, crash_at, attempts, journal, resume, params, payload,
        );
        let bytes = bundle.to_bytes();
        ReplayBundle::verify_bytes(&bytes).expect("fresh bundle verifies");
        let back = ReplayBundle::from_bytes(&bytes).expect("fresh bundle parses");
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// Any single flipped byte is caught: verification and parsing both
    /// return structured errors, and neither panics.
    #[test]
    fn every_single_byte_flip_is_detected(
        seed in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip_pos in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let bundle = build(seed, 0.5, 3, 2, true, true, "p=1".into(), payload);
        let mut bytes = bundle.to_bytes();
        let pos = (flip_pos % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << flip_bit;
        prop_assert!(
            ReplayBundle::verify_bytes(&bytes).is_err(),
            "flip at byte {pos} bit {flip_bit} went unnoticed"
        );
        prop_assert!(ReplayBundle::from_bytes(&bytes).is_err());
    }

    /// Any truncation — down to the empty artifact — yields a structured
    /// error, never a panic and never a false pass.
    #[test]
    fn every_truncation_is_detected(
        seed in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut in any::<u64>(),
    ) {
        let bundle = build(seed, 0.0, 0, 1, false, false, String::new(), payload);
        let bytes = bundle.to_bytes();
        let cut = (cut % bytes.len() as u64) as usize; // strictly less than len
        prop_assert!(ReplayBundle::verify_bytes(&bytes[..cut]).is_err());
        prop_assert!(ReplayBundle::from_bytes(&bytes[..cut]).is_err());
    }
}
