//! The ARLDM image-synthesis workload (paper Section VI-C).
//!
//! The Auto-Regressive Latent Diffusion Model workflow stores image and
//! text data as **1-D arrays of variable-length elements** in HDF5. Its
//! first stage, `arldm_saveh5`, writes five image datasets (`image0..4`)
//! and a `text` dataset into `flintstones_out.h5`; training then reads the
//! image datasets back. The paper's Fig. 8 compares the default
//! **contiguous** descriptor layout against a **chunked** one, and
//! Fig. 13c shows chunking cutting write ops (~2×) and improving write
//! time up to 1.4× for 5–20 GB of >90%-variable-length data.

use crate::util::{payload, varlen};
use dayu_hdf::{DataType, DatasetBuilder, LayoutKind, Result};
use dayu_workflow::{IoContract, TaskIo, TaskSpec, WorkflowSpec};

/// The output file of the data-preparation stage.
pub const OUTPUT_FILE: &str = "flintstones_out.h5";
/// Image datasets per story frame.
pub const IMAGE_DATASETS: usize = 5;

/// Workload parameters. Defaults are laptop-scale; the paper's datasets
/// are 5–20 GB with >90% variable-length content.
#[derive(Clone, Debug)]
pub struct ArldmConfig {
    /// Number of stories (elements per dataset).
    pub stories: usize,
    /// Mean bytes per image element (variable ±50%).
    pub mean_image_bytes: usize,
    /// Mean bytes per text element.
    pub mean_text_bytes: usize,
    /// Descriptor layout: contiguous (paper default) or chunked (the
    /// optimization).
    pub layout: LayoutKind,
    /// Elements per chunk when chunked.
    pub chunk_elems: u64,
    /// Elements written per `write_varlen` call (the application writes
    /// story-by-story; 1 = per-element writes).
    pub batch: usize,
    /// Modeled compute, nanoseconds.
    pub compute_ns: u64,
}

impl Default for ArldmConfig {
    fn default() -> Self {
        Self {
            stories: 64,
            mean_image_bytes: 4 << 10,
            mean_text_bytes: 256,
            layout: LayoutKind::Contiguous,
            chunk_elems: 16,
            // Stories are written in small batches (a dataloader pattern);
            // per-element writes would overstate the contiguous layout's
            // op count relative to HDF5, which coalesces small contiguous
            // raw writes in its sieve buffer. batch = 8 calibrates the
            // contiguous-vs-chunked write-op ratio to the paper's ~2x.
            batch: 8,
            compute_ns: 1_000_000,
        }
    }
}

impl ArldmConfig {
    /// Approximate total payload bytes the prep stage writes.
    pub fn approx_bytes(&self) -> u64 {
        (self.stories * (IMAGE_DATASETS * self.mean_image_bytes + self.mean_text_bytes)) as u64
    }

    /// Fraction of the payload that is variable-length (≈ 1.0 here; the
    /// paper reports >90%).
    pub fn varlen_fraction(&self) -> f64 {
        1.0
    }
}

fn vl_builder(cfg: &ArldmConfig, n: u64) -> DatasetBuilder {
    let b = DatasetBuilder::new(DataType::VarLen, &[n]);
    match cfg.layout {
        LayoutKind::Chunked => b.chunks(&[cfg.chunk_elems.min(n).max(1)]),
        other => b.layout(other),
    }
}

/// The data-preparation task body: writes the five image datasets and the
/// text dataset, element-batch by element-batch (the application pattern
/// that makes descriptor layout matter).
pub fn save_h5(io: &TaskIo, cfg: &ArldmConfig) -> Result<()> {
    let n = cfg.stories as u64;
    let f = io.create(OUTPUT_FILE)?;
    let root = f.root();
    for img in 0..IMAGE_DATASETS {
        let mut ds = root.create_dataset(&format!("image{img}"), vl_builder(cfg, n))?;
        let mut story = 0usize;
        while story < cfg.stories {
            let batch_end = (story + cfg.batch.max(1)).min(cfg.stories);
            let items: Vec<Vec<u8>> = (story..batch_end)
                .map(|s| {
                    let len = varlen(cfg.mean_image_bytes, img as u64, s as u64);
                    payload(len, (img * 10_000 + s) as u64)
                })
                .collect();
            let refs: Vec<&[u8]> = items.iter().map(|v| v.as_slice()).collect();
            ds.write_varlen(story as u64, &refs)?;
            story = batch_end;
        }
        ds.close()?;
    }
    let mut text = root.create_dataset("text", vl_builder(cfg, n))?;
    for s in 0..cfg.stories {
        let len = varlen(cfg.mean_text_bytes, 99, s as u64);
        let item = payload(len, (90_000 + s) as u64);
        text.write_varlen(s as u64, &[&item])?;
    }
    text.close()?;
    f.close()
}

/// All six dataset paths of the prep output, `/image0..4` plus `/text`.
fn all_datasets() -> Vec<String> {
    (0..IMAGE_DATASETS)
        .map(|img| format!("/image{img}"))
        .chain(std::iter::once("/text".to_owned()))
        .collect()
}

/// The 3-stage ARLDM workflow: data preparation, training (reads the
/// image datasets), inference (re-reads a subset). Contracts declare
/// whole-dataset (⊤) extents throughout: variable-length elements make
/// byte offsets unknowable before a run, which is exactly what ⊤ is for.
pub fn workflow(cfg: &ArldmConfig) -> WorkflowSpec {
    let prep_cfg = cfg.clone();
    let train_cfg = cfg.clone();
    let infer_cfg = cfg.clone();
    let prep_contract = all_datasets()
        .into_iter()
        .fold(IoContract::new(), |c, ds| c.writes_all(OUTPUT_FILE, ds));
    let train_contract = all_datasets()
        .into_iter()
        .fold(IoContract::new(), |c, ds| c.reads_all(OUTPUT_FILE, ds));
    let infer_contract = (0..IMAGE_DATASETS).fold(IoContract::new(), |c, img| {
        c.reads_all(OUTPUT_FILE, format!("/image{img}"))
    });
    WorkflowSpec::new("arldm")
        .stage(
            "prepare",
            vec![
                TaskSpec::new("arldm_saveh5", move |io: &TaskIo| save_h5(io, &prep_cfg))
                    .with_compute(cfg.compute_ns)
                    .with_contract(prep_contract),
            ],
        )
        .stage(
            "training",
            vec![TaskSpec::new("arldm_train", move |io: &TaskIo| {
                let f = io.open(OUTPUT_FILE)?;
                let root = f.root();
                for img in 0..IMAGE_DATASETS {
                    let mut ds = root.open_dataset(&format!("image{img}"))?;
                    ds.read_varlen(0, train_cfg.stories as u64)?;
                    ds.close()?;
                }
                let mut t = root.open_dataset("text")?;
                t.read_varlen(0, train_cfg.stories as u64)?;
                t.close()?;
                f.close()
            })
            .with_compute(cfg.compute_ns * 4)
            .with_contract(train_contract)],
        )
        .stage(
            "inference",
            vec![TaskSpec::new("arldm_infer", move |io: &TaskIo| {
                let f = io.open(OUTPUT_FILE)?;
                let root = f.root();
                // Inference samples a subset of stories.
                let sample = (infer_cfg.stories / 4).max(1) as u64;
                for img in 0..IMAGE_DATASETS {
                    let mut ds = root.open_dataset(&format!("image{img}"))?;
                    ds.read_varlen(0, sample)?;
                    ds.close()?;
                }
                f.close()
            })
            .with_compute(cfg.compute_ns)
            .with_contract(infer_contract)],
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_analyzer::{Analysis, Finding};
    use dayu_mapper::Mapper;
    use dayu_trace::vfd::IoKind;
    use dayu_vfd::MemFs;
    use dayu_workflow::record;

    fn tiny(layout: LayoutKind) -> ArldmConfig {
        ArldmConfig {
            stories: 12,
            mean_image_bytes: 2048,
            mean_text_bytes: 128,
            layout,
            chunk_elems: 4,
            batch: 1,
            compute_ns: 100,
        }
    }

    #[test]
    fn three_stages() {
        let wf = workflow(&tiny(LayoutKind::Contiguous));
        assert_eq!(wf.stages.len(), 3);
        wf.validate().unwrap();
    }

    #[test]
    fn round_trip_content_identical_across_layouts() {
        for layout in [LayoutKind::Contiguous, LayoutKind::Chunked] {
            let fs = MemFs::new();
            record(&workflow(&tiny(layout)), &fs).unwrap();
            assert!(fs.exists(OUTPUT_FILE), "{layout:?}");
        }
    }

    #[test]
    fn contiguous_layout_flagged_for_vl_data() {
        let fs = MemFs::new();
        let run = record(&workflow(&tiny(LayoutKind::Contiguous)), &fs).unwrap();
        let analysis = Analysis::run(&run.bundle);
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::ContiguousVarlenDataset { dataset, .. }
                    if dataset.contains("image0")
            )),
            "{:?}",
            analysis.findings
        );
        // Chunked variant is not flagged.
        let fs = MemFs::new();
        let run = record(&workflow(&tiny(LayoutKind::Chunked)), &fs).unwrap();
        let analysis = Analysis::run(&run.bundle);
        assert!(!analysis
            .findings
            .iter()
            .any(|f| f.category() == "contiguous-varlen-dataset"));
    }

    /// The headline Fig. 8/13c mechanism: with per-element VL writes, the
    /// chunked descriptor layout issues substantially fewer write ops than
    /// contiguous (the chunk cache batches descriptor updates).
    #[test]
    fn chunked_vl_halves_write_ops() {
        let count_writes = |layout: LayoutKind| -> u64 {
            let fs = MemFs::new();
            let mapper = Mapper::new("arldm");
            mapper.set_task("arldm_saveh5");
            let io = dayu_workflow::TaskIo::new(&fs, &mapper);
            save_h5(&io, &tiny(layout)).unwrap();
            let b = mapper.into_bundle();
            b.vfd.iter().filter(|r| r.kind == IoKind::Write).count() as u64
        };
        let contig = count_writes(LayoutKind::Contiguous);
        let chunked = count_writes(LayoutKind::Chunked);
        assert!(
            (chunked as f64) < 0.7 * contig as f64,
            "chunked should cut write ops: contiguous={contig} chunked={chunked}"
        );
    }

    #[test]
    fn contracts_cover_every_task_and_conform() {
        for layout in [LayoutKind::Contiguous, LayoutKind::Chunked] {
            let wf = workflow(&tiny(layout));
            for stage in &wf.stages {
                for task in &stage.tasks {
                    assert!(task.contract.is_some(), "{} has no contract", task.name);
                }
            }
            let report = dayu_lint::analyze_contracts(&wf, &dayu_lint::LintConfig::default());
            assert!(report.is_clean(), "{layout:?}: {:?}", report.findings);
            let fs = MemFs::new();
            let run = record(&wf, &fs).unwrap();
            let report = dayu_lint::check_conformance(&run.bundle, &wf);
            assert!(report.is_clean(), "{layout:?}: {:?}", report.findings);
        }
    }

    #[test]
    fn config_accounting() {
        let cfg = tiny(LayoutKind::Contiguous);
        let approx = cfg.approx_bytes();
        assert!(approx > 100_000);
        assert!((cfg.varlen_fraction() - 1.0).abs() < f64::EPSILON);
    }
}
