//! The corner-case overhead benchmark (paper Section VII-B).
//!
//! "The Python benchmark creates a corner-case scenario with an unusually
//! large number (200) of datasets stored in a small file… Repeated reads of
//! the same datasets within the same task trigger increased overhead
//! because DaYu tracks semantic data even for closed datasets, deferring
//! logging until the file is closed."
//!
//! Used for Fig. 9c (runtime overhead vs dataset I/O count, up to ~4%),
//! Fig. 9d (storage overhead: VOL flat, VFD linear in ops) and Fig. 10b
//! (component breakdown dominated by the Access Tracker).

use crate::bench_common::{Backend, BenchRun, Instrumentation, Session};
use crate::util::payload;
use dayu_hdf::{DataType, DatasetBuilder, Result};
use std::time::Instant;

/// Benchmark parameters.
#[derive(Clone, Debug)]
pub struct CornerCaseConfig {
    /// Datasets in the file (paper: 200).
    pub datasets: usize,
    /// Total file payload bytes, split across datasets (paper: 200 MB,
    /// scaled down by default).
    pub file_bytes: u64,
    /// Total dataset read operations performed after the create pass;
    /// each reopens, reads and closes one dataset (paper x-axis: 0–8000).
    pub dataset_reads: usize,
}

impl Default for CornerCaseConfig {
    fn default() -> Self {
        Self {
            datasets: 200,
            file_bytes: 2 << 20,
            dataset_reads: 1000,
        }
    }
}

/// Runs the corner case under the given instrumentation.
pub fn run(cfg: &CornerCaseConfig, backend: Backend, instr: Instrumentation) -> Result<BenchRun> {
    let session = Session::new("corner_case", backend, instr);
    session.set_task("corner_case");
    let per_ds = (cfg.file_bytes / cfg.datasets as u64).max(8);

    let t0 = Instant::now();
    let f = session.create("corner.h5")?;
    let root = f.root();
    let data = payload(per_ds as usize, 0xC0FFEE);
    for d in 0..cfg.datasets {
        let mut ds = root.create_dataset(
            &format!("dset_{d:03}"),
            DatasetBuilder::new(DataType::Int { width: 1 }, &[per_ds]),
        )?;
        ds.write(&data)?;
        ds.close()?;
    }
    // Repeated open/read/close of the same datasets within one task: each
    // reopen merges into the live hash-table entry (deferred logging).
    for i in 0..cfg.dataset_reads {
        let d = i % cfg.datasets;
        let mut ds = root.open_dataset(&format!("dset_{d:03}"))?;
        ds.read()?;
        ds.close()?;
    }
    f.close()?;
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let app_bytes = cfg.datasets as u64 * per_ds + cfg.dataset_reads as u64 * per_ds;
    let mapper_self_ns = session.mapper().map(|m| m.timers().total_ns()).unwrap_or(0);
    Ok(BenchRun {
        wall_ns,
        app_bytes,
        mapper_self_ns,
        bundle: session.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CornerCaseConfig {
        CornerCaseConfig {
            datasets: 20,
            file_bytes: 64 << 10,
            dataset_reads: 100,
        }
    }

    #[test]
    fn baseline_and_instrumented_complete() {
        let base = run(&tiny(), Backend::mem(), Instrumentation::None).unwrap();
        assert!(base.bundle.is_none());
        let full = run(&tiny(), Backend::mem(), Instrumentation::Full).unwrap();
        let b = full.bundle.unwrap();
        // Deferred logging merges reopened datasets: exactly one VOL record
        // per dataset despite 100 reopen cycles.
        assert_eq!(b.vol.len(), 20);
        let d0 = b
            .vol
            .iter()
            .find(|r| r.object.as_str() == "/dset_000")
            .unwrap();
        assert!(
            d0.lifetimes.len() > 100 / 20,
            "merged lifetimes from reopens: {}",
            d0.lifetimes.len()
        );
    }

    #[test]
    fn vfd_storage_grows_with_reads_vol_stays_flat() {
        let mut few = tiny();
        few.dataset_reads = 20;
        let mut many = tiny();
        many.dataset_reads = 200;
        let a = run(&few, Backend::mem(), Instrumentation::Full).unwrap();
        let b = run(&many, Backend::mem(), Instrumentation::Full).unwrap();
        // Creation ops are a fixed cost shared by both runs, so 10x the
        // reads yields noticeably under 10x the records; the growth must
        // still clearly exceed the near-flat VOL trace.
        assert!(
            b.vfd_storage() as f64 > 2.5 * a.vfd_storage() as f64,
            "VFD linear: {} vs {}",
            a.vfd_storage(),
            b.vfd_storage()
        );
        let vol_ratio = b.vol_storage() as f64 / a.vol_storage() as f64;
        assert!(
            vol_ratio < 3.0,
            "VOL near-flat (only access entries grow): {vol_ratio:.2}"
        );
    }

    #[test]
    fn zero_reads_configuration() {
        let mut cfg = tiny();
        cfg.dataset_reads = 0;
        let r = run(&cfg, Backend::mem(), Instrumentation::VolOnly).unwrap();
        let b = r.bundle.unwrap();
        assert_eq!(b.vol.len(), 20);
        assert!(b.vfd.is_empty());
    }

    #[test]
    fn access_tracker_dominates_breakdown() {
        // Fig. 10b: in the corner case, the Access Tracker (object open/
        // close churn) outweighs the Input Parser.
        let cfg = tiny();
        let session = Session::new("corner", Backend::mem(), Instrumentation::Full);
        session.set_task("corner_case");
        let f = session.create("c.h5").unwrap();
        let root = f.root();
        for d in 0..cfg.datasets {
            let mut ds = root
                .create_dataset(
                    &format!("d{d}"),
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[64]),
                )
                .unwrap();
            ds.write(&[0; 64]).unwrap();
            ds.close().unwrap();
        }
        for i in 0..cfg.dataset_reads {
            let mut ds = root
                .open_dataset(&format!("d{}", i % cfg.datasets))
                .unwrap();
            ds.read().unwrap();
            ds.close().unwrap();
        }
        f.close().unwrap();
        let timers = session.mapper().unwrap().timers();
        use dayu_mapper::Component;
        assert!(
            timers.get(Component::AccessTracker) > timers.get(Component::InputParser),
            "access tracker dominates the parser"
        );
        assert!(timers.total_ns() > 0);
    }
}
