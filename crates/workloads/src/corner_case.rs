//! The corner-case overhead benchmark (paper Section VII-B).
//!
//! "The Python benchmark creates a corner-case scenario with an unusually
//! large number (200) of datasets stored in a small file… Repeated reads of
//! the same datasets within the same task trigger increased overhead
//! because DaYu tracks semantic data even for closed datasets, deferring
//! logging until the file is closed."
//!
//! Used for Fig. 9c (runtime overhead vs dataset I/O count, up to ~4%),
//! Fig. 9d (storage overhead: VOL flat, VFD linear in ops) and Fig. 10b
//! (component breakdown dominated by the Access Tracker).

use crate::bench_common::{Backend, BenchRun, Instrumentation, Session};
use crate::util::payload;
use dayu_hdf::{DataType, DatasetBuilder, LayoutKind, Result, Selection};
use dayu_workflow::{AffineExpr, IoContract, SymExtent, TaskIo, TaskSpec, WorkflowSpec};
use std::time::Instant;

/// Benchmark parameters.
#[derive(Clone, Debug)]
pub struct CornerCaseConfig {
    /// Datasets in the file (paper: 200).
    pub datasets: usize,
    /// Total file payload bytes, split across datasets (paper: 200 MB,
    /// scaled down by default).
    pub file_bytes: u64,
    /// Total dataset read operations performed after the create pass;
    /// each reopens, reads and closes one dataset (paper x-axis: 0–8000).
    pub dataset_reads: usize,
}

impl Default for CornerCaseConfig {
    fn default() -> Self {
        Self {
            datasets: 200,
            file_bytes: 2 << 20,
            dataset_reads: 1000,
        }
    }
}

/// Runs the corner case under the given instrumentation.
pub fn run(cfg: &CornerCaseConfig, backend: Backend, instr: Instrumentation) -> Result<BenchRun> {
    let session = Session::new("corner_case", backend, instr);
    session.set_task("corner_case");
    let per_ds = (cfg.file_bytes / cfg.datasets as u64).max(8);

    let t0 = Instant::now();
    let f = session.create("corner.h5")?;
    let root = f.root();
    let data = payload(per_ds as usize, 0xC0FFEE);
    for d in 0..cfg.datasets {
        let mut ds = root.create_dataset(
            &format!("dset_{d:03}"),
            DatasetBuilder::new(DataType::Int { width: 1 }, &[per_ds]),
        )?;
        ds.write(&data)?;
        ds.close()?;
    }
    // Repeated open/read/close of the same datasets within one task: each
    // reopen merges into the live hash-table entry (deferred logging).
    for i in 0..cfg.dataset_reads {
        let d = i % cfg.datasets;
        let mut ds = root.open_dataset(&format!("dset_{d:03}"))?;
        ds.read()?;
        ds.close()?;
    }
    f.close()?;
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let app_bytes = cfg.datasets as u64 * per_ds + cfg.dataset_reads as u64 * per_ds;
    let mapper_self_ns = session.mapper().map(|m| m.timers().total_ns()).unwrap_or(0);
    Ok(BenchRun {
        wall_ns,
        app_bytes,
        mapper_self_ns,
        bundle: session.finish(),
    })
}

// ---------------------------------------------------------------------------
// Contract corner-case workflows
//
// Tiny `WorkflowSpec` generators exercising the symbolic-contract passes:
// a stage of parallel writers each claiming an affine chunk
// `[i·CHUNK, (i+1)·CHUNK)` of one shared contiguous dataset. Three
// variants:
//
// * [`partitioned_workflow`] — declarations and bodies agree, chunks are
//   disjoint: statically provable safe, conformance-clean;
// * [`racy_workflow`] — declared chunks overlap by `overlap` bytes:
//   `analyze_contracts` refutes the partition before any VFD is opened;
// * [`violating_workflow`] — declarations are disjoint (statically clean)
//   but writer 0's body spills `spill` bytes past its declared chunk:
//   only trace conformance catches the lie.

/// Shared file all chunk writers target.
pub const SHARED_FILE: &str = "partition.h5";
/// The one dataset they partition (dataset path, as traced).
pub const SHARED_DATASET: &str = "/chunks";
/// Bytes per writer chunk.
pub const CHUNK_BYTES: u64 = 4096;

/// Writer `i`'s declared footprint: `[i·CHUNK, i·CHUNK + declared_len)`
/// of the shared dataset, written as affine math over the bound index.
fn chunk_contract(writer: usize, declared_len: u64) -> IoContract {
    let i = AffineExpr::var("i");
    IoContract::new().bind("i", writer as i64).writes(
        SHARED_FILE,
        SHARED_DATASET,
        SymExtent::span(
            i.clone() * CHUNK_BYTES as i64,
            i * CHUNK_BYTES as i64 + declared_len as i64,
        ),
    )
}

/// A writer task that writes `write_len` bytes at its chunk start while
/// *declaring* `declared_len` — the two diverge in the violating variant.
fn chunk_writer(writer: usize, write_len: u64, declared_len: u64) -> TaskSpec {
    TaskSpec::new(format!("chunk_writer_{writer}"), move |io: &TaskIo| {
        let f = io.open(SHARED_FILE)?;
        let mut ds = f.root().open_dataset("chunks")?;
        let data = payload(write_len as usize, writer as u64);
        ds.write_slab(
            &Selection::slab(&[writer as u64 * CHUNK_BYTES], &[write_len]),
            &data,
        )?;
        ds.close()?;
        f.close()
    })
    .with_contract(chunk_contract(writer, declared_len))
}

fn chunk_stages(writers: usize, write_len: u64, declared_len: u64) -> WorkflowSpec {
    let setup = TaskSpec::new("chunk_setup", move |io: &TaskIo| {
        let f = io.create(SHARED_FILE)?;
        let mut ds = f.root().create_dataset(
            "chunks",
            DatasetBuilder::new(DataType::Int { width: 1 }, &[writers as u64 * CHUNK_BYTES])
                .layout(LayoutKind::Contiguous),
        )?;
        ds.write(&vec![0u8; writers * CHUNK_BYTES as usize])?;
        ds.close()?;
        f.close()
    })
    .with_contract(IoContract::new().writes_all(SHARED_FILE, SHARED_DATASET));
    let tasks = (0..writers)
        .map(|w| {
            // Only writer 0 diverges from its declaration; the rest stay
            // honest so the violating variant plants exactly one lie.
            let len = if w == 0 { write_len } else { CHUNK_BYTES };
            chunk_writer(w, len, declared_len)
        })
        .collect();
    WorkflowSpec::new("chunk_partition")
        .stage("setup", vec![setup])
        .stage("writers", tasks)
}

/// Disjoint chunk partition: statically provable safe and
/// conformance-clean. The `parallelize` transform can be discharged from
/// these contracts alone, with no recorded trace.
pub fn partitioned_workflow(writers: usize) -> WorkflowSpec {
    chunk_stages(writers, CHUNK_BYTES, CHUNK_BYTES)
}

/// Declared chunks overlap by `overlap` bytes: `analyze_contracts`
/// reports the extent race before any run. Bodies stay inside their own
/// chunk, so a recorded trace still conforms.
pub fn racy_workflow(writers: usize, overlap: u64) -> WorkflowSpec {
    chunk_stages(writers, CHUNK_BYTES, CHUNK_BYTES + overlap)
}

/// Disjoint declarations (statically clean) but writer 0 spills `spill`
/// bytes into writer 1's chunk — the planted lie only trace conformance
/// can catch.
pub fn violating_workflow(writers: usize, spill: u64) -> WorkflowSpec {
    assert!(writers >= 2 && spill <= CHUNK_BYTES / 2);
    chunk_stages(writers, CHUNK_BYTES + spill, CHUNK_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CornerCaseConfig {
        CornerCaseConfig {
            datasets: 20,
            file_bytes: 64 << 10,
            dataset_reads: 100,
        }
    }

    #[test]
    fn baseline_and_instrumented_complete() {
        let base = run(&tiny(), Backend::mem(), Instrumentation::None).unwrap();
        assert!(base.bundle.is_none());
        let full = run(&tiny(), Backend::mem(), Instrumentation::Full).unwrap();
        let b = full.bundle.unwrap();
        // Deferred logging merges reopened datasets: exactly one VOL record
        // per dataset despite 100 reopen cycles.
        assert_eq!(b.vol.len(), 20);
        let d0 = b
            .vol
            .iter()
            .find(|r| r.object.as_str() == "/dset_000")
            .unwrap();
        assert!(
            d0.lifetimes.len() > 100 / 20,
            "merged lifetimes from reopens: {}",
            d0.lifetimes.len()
        );
    }

    #[test]
    fn vfd_storage_grows_with_reads_vol_stays_flat() {
        let mut few = tiny();
        few.dataset_reads = 20;
        let mut many = tiny();
        many.dataset_reads = 200;
        let a = run(&few, Backend::mem(), Instrumentation::Full).unwrap();
        let b = run(&many, Backend::mem(), Instrumentation::Full).unwrap();
        // Creation ops are a fixed cost shared by both runs, so 10x the
        // reads yields noticeably under 10x the records; the growth must
        // still clearly exceed the near-flat VOL trace.
        assert!(
            b.vfd_storage() as f64 > 2.5 * a.vfd_storage() as f64,
            "VFD linear: {} vs {}",
            a.vfd_storage(),
            b.vfd_storage()
        );
        let vol_ratio = b.vol_storage() as f64 / a.vol_storage() as f64;
        assert!(
            vol_ratio < 3.0,
            "VOL near-flat (only access entries grow): {vol_ratio:.2}"
        );
    }

    #[test]
    fn zero_reads_configuration() {
        let mut cfg = tiny();
        cfg.dataset_reads = 0;
        let r = run(&cfg, Backend::mem(), Instrumentation::VolOnly).unwrap();
        let b = r.bundle.unwrap();
        assert_eq!(b.vol.len(), 20);
        assert!(b.vfd.is_empty());
    }

    #[test]
    fn partitioned_contracts_prove_safety_and_conform() {
        let wf = partitioned_workflow(4);
        let report = dayu_lint::analyze_contracts(&wf, &dayu_lint::LintConfig::default());
        assert!(report.is_clean(), "{:?}", report.findings);
        let fs = dayu_vfd::MemFs::new();
        let run = dayu_workflow::record(&wf, &fs).unwrap();
        let report = dayu_lint::check_conformance(&run.bundle, &wf);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn racy_contracts_caught_statically_without_a_run() {
        let wf = racy_workflow(4, 64);
        let report = dayu_lint::analyze_contracts(&wf, &dayu_lint::LintConfig::default());
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                dayu_lint::Finding::ExtentRace { file, write_write, .. }
                    if file == SHARED_FILE && *write_write
            )),
            "overlapping declarations race: {:?}",
            report.findings
        );
        // The bodies stay inside their own chunks, so the recorded trace
        // still conforms to what was declared.
        let fs = dayu_vfd::MemFs::new();
        let run = dayu_workflow::record(&wf, &fs).unwrap();
        let report = dayu_lint::check_conformance(&run.bundle, &wf);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn violating_workflow_caught_only_by_conformance() {
        let wf = violating_workflow(3, 512);
        // Declarations are a clean partition: the static pass passes.
        let report = dayu_lint::analyze_contracts(&wf, &dayu_lint::LintConfig::default());
        assert!(report.is_clean(), "{:?}", report.findings);
        // …but the recorded run exposes writer 0's spill past its chunk.
        let fs = dayu_vfd::MemFs::new();
        let run = dayu_workflow::record(&wf, &fs).unwrap();
        let report = dayu_lint::check_conformance(&run.bundle, &wf);
        assert!(
            report.findings.iter().any(|f| matches!(
                f,
                dayu_lint::Finding::ContractViolation { task, file, dataset, undeclared, start, end, .. }
                    if task == "chunk_writer_0"
                        && file == SHARED_FILE
                        && dataset == SHARED_DATASET
                        && *undeclared
                        && *start == CHUNK_BYTES
                        && *end == CHUNK_BYTES + 512
            )),
            "spill flagged: {:?}",
            report.findings
        );
    }

    #[test]
    fn access_tracker_dominates_breakdown() {
        // Fig. 10b: in the corner case, the Access Tracker (object open/
        // close churn) outweighs the Input Parser.
        let cfg = tiny();
        let session = Session::new("corner", Backend::mem(), Instrumentation::Full);
        session.set_task("corner_case");
        let f = session.create("c.h5").unwrap();
        let root = f.root();
        for d in 0..cfg.datasets {
            let mut ds = root
                .create_dataset(
                    &format!("d{d}"),
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[64]),
                )
                .unwrap();
            ds.write(&[0; 64]).unwrap();
            ds.close().unwrap();
        }
        for i in 0..cfg.dataset_reads {
            let mut ds = root
                .open_dataset(&format!("d{}", i % cfg.datasets))
                .unwrap();
            ds.read().unwrap();
            ds.close().unwrap();
        }
        f.close().unwrap();
        let timers = session.mapper().unwrap().timers();
        use dayu_mapper::Component;
        assert!(
            timers.get(Component::AccessTracker) > timers.get(Component::InputParser),
            "access tracker dominates the parser"
        );
        assert!(timers.total_ns() > 0);
    }
}
