//! # dayu-workloads
//!
//! Workload generators reproducing the applications and benchmarks of the
//! DaYu paper's evaluation:
//!
//! * [`pyflextrkr`] — the nine-stage storm-tracking pipeline (Section
//!   VI-A; Figures 4, 5, 11, 13a);
//! * [`ddmd`] — the iterative DeepDriveMD simulation/aggregation/training/
//!   inference pipeline (Section VI-B; Figures 6, 7, 12, 13b);
//! * [`arldm`] — the ARLDM variable-length image/text preparation workflow
//!   (Section VI-C; Figures 8, 13c);
//! * [`h5bench`] — an h5bench-style parallel I/O benchmark for the
//!   typical-case overhead study (Figures 9a, 9b, 10a);
//! * [`corner_case`] — the many-small-datasets worst case (Figures 9c,
//!   9d, 10b).
//!
//! Application workloads build [`dayu_workflow::WorkflowSpec`]s whose task
//! bodies perform real I/O through the instrumented format library; the
//! benchmark workloads run directly with selectable instrumentation
//! ([`bench_common::Instrumentation`]) and backend
//! ([`bench_common::Backend`]) so profiler overhead can be measured
//! against an uninstrumented baseline.

pub mod arldm;
pub mod bench_common;
pub mod corner_case;
pub mod ddmd;
pub mod h5bench;
pub mod pyflextrkr;
pub mod util;

pub use bench_common::{Backend, BenchRun, Instrumentation, Session};
