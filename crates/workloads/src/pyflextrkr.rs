//! The PyFLEXTRKR storm-tracking workload (paper Section VI-A).
//!
//! Nine sequential stages, reproducing the dataflow DaYu's FTG exposes in
//! Fig. 4:
//!
//! 1. `run_idfeature` (parallel) — reads the initial sensor input files,
//!    writes per-task *feature* files **reused by stages 2, 3, 4, 6, 8**;
//! 2. `run_tracksingle` (parallel) — feature files → per-task track files;
//! 3. `run_gettracks` — **all-to-all** over the track files, exhibits the
//!    **write-after-read** pattern (reads its output file back in, then
//!    rewrites it), producing a single `tracks.h5`;
//! 4. `run_trackstats` — **fan-in**: same inputs as stage 3 plus
//!    `tracks.h5`, single task, one output `trackstats.h5`;
//! 5. `run_identifymcs` — **one-to-one**: reads `trackstats.h5` only;
//! 6. `run_matchpf` — reads **time-dependent input files** (PF data only
//!    needed now, mid-workflow) plus stage-5 output;
//! 7. `run_robustmcs` — refinement over stage-6 output;
//! 8. `run_mapfeature` (parallel) — maps features back over the stage-1
//!    feature files;
//! 9. `run_speed` — writes **many small datasets** (sub-500-byte) into
//!    per-file statistics, each accessed repeatedly — the Fig. 5 metadata
//!    bottleneck and the Fig. 13a consolidation study.

use crate::util::{payload, payload_f64};
use dayu_hdf::{AttrValue, DataType, DatasetBuilder, Result};
use dayu_workflow::{IoContract, TaskIo, TaskSpec, WorkflowSpec};

/// Workload parameters. Defaults are a laptop-scale rendition of the
/// paper's Configuration 1 (C1: 170 MB input, 48 processes, 2 nodes);
/// [`PyflextrkrConfig::c1`] and [`PyflextrkrConfig::c2`] give the paper's
/// two evaluation configurations (scaled).
#[derive(Clone, Debug)]
pub struct PyflextrkrConfig {
    /// Number of initial sensor input files (also the stage-1/2/8
    /// parallel task count).
    pub input_files: usize,
    /// Bytes per input file.
    pub input_bytes: usize,
    /// Bytes per feature dataset produced by stage 1.
    pub feature_bytes: usize,
    /// Small datasets per statistics file in stage 9.
    pub small_datasets: usize,
    /// Bytes per small dataset (paper: under 500).
    pub small_dataset_bytes: usize,
    /// Times each small dataset is accessed in stage 9 (paper Fig. 13a
    /// simulation: "each accessed 23 times").
    pub small_dataset_accesses: usize,
    /// Modeled compute per task, nanoseconds.
    pub compute_ns: u64,
}

impl Default for PyflextrkrConfig {
    fn default() -> Self {
        Self {
            input_files: 4,
            input_bytes: 256 << 10,
            feature_bytes: 128 << 10,
            small_datasets: 32,
            small_dataset_bytes: 400,
            small_dataset_accesses: 3,
            compute_ns: 2_000_000,
        }
    }
}

impl PyflextrkrConfig {
    /// Paper Configuration 1, scaled: 170 MB across inputs, 48 processes.
    pub fn c1() -> Self {
        Self {
            input_files: 48,
            input_bytes: (170 << 20) / 48,
            feature_bytes: 1 << 20,
            small_datasets: 32,
            small_dataset_bytes: 400,
            small_dataset_accesses: 23,
            compute_ns: 50_000_000,
        }
    }

    /// Paper Configuration 2, scaled: 1.2 GB across inputs, 240 processes.
    pub fn c2() -> Self {
        Self {
            input_files: 240,
            input_bytes: (1200 << 20) / 240,
            feature_bytes: 2 << 20,
            small_datasets: 32,
            small_dataset_bytes: 400,
            small_dataset_accesses: 23,
            compute_ns: 50_000_000,
        }
    }
}

/// Name of the i-th initial sensor input file.
pub fn input_file(i: usize) -> String {
    format!("sensor_{i:04}.h5")
}

/// Name of the i-th stage-1 feature file.
pub fn feature_file(i: usize) -> String {
    format!("feature_{i:04}.h5")
}

/// Name of the i-th stage-2 track file.
pub fn track_file(i: usize) -> String {
    format!("tracksingle_{i:04}.h5")
}

/// Name of the time-dependent PF input needed only by stage 6.
pub fn pf_input_file(i: usize) -> String {
    format!("pf_input_{i:04}.h5")
}

/// Writes the initial sensor inputs and stage-6 PF inputs into the shared
/// filesystem (the data that exists before the workflow starts). Returns
/// the total input bytes.
pub fn prepare_inputs(io: &TaskIo, cfg: &PyflextrkrConfig) -> Result<u64> {
    let mut total = 0u64;
    for i in 0..cfg.input_files {
        let f = io.create(&input_file(i))?;
        let mut ds = f.root().create_dataset(
            "sensor",
            DatasetBuilder::new(
                DataType::Float { width: 8 },
                &[(cfg.input_bytes / 8) as u64],
            ),
        )?;
        ds.write_f64s(&payload_f64(cfg.input_bytes / 8, i as u64))?;
        ds.set_attr("instrument", AttrValue::Str("radar".into()))?;
        ds.close()?;
        f.close()?;
        total += cfg.input_bytes as u64;

        let f = io.create(&pf_input_file(i))?;
        let mut ds = f.root().create_dataset(
            "pf",
            DatasetBuilder::new(
                DataType::Float { width: 8 },
                &[(cfg.input_bytes / 64) as u64],
            ),
        )?;
        ds.write_f64s(&payload_f64(cfg.input_bytes / 64, 1000 + i as u64))?;
        ds.close()?;
        f.close()?;
        total += (cfg.input_bytes / 8) as u64;
    }
    Ok(total)
}

fn write_blob(io: &TaskIo, file: &str, dataset: &str, bytes: &[u8]) -> Result<()> {
    let f = io.create(file)?;
    let mut ds = f.root().create_dataset(
        dataset,
        DatasetBuilder::new(DataType::Int { width: 1 }, &[bytes.len() as u64]),
    )?;
    ds.write(bytes)?;
    ds.close()?;
    f.close()
}

fn read_whole(io: &TaskIo, file: &str, dataset: &str) -> Result<Vec<u8>> {
    let f = io.open(file)?;
    let mut ds = f.root().open_dataset(dataset)?;
    let data = ds.read()?;
    ds.close()?;
    f.close()?;
    Ok(data)
}

/// Builds the nine-stage PyFLEXTRKR workflow. Call [`prepare_inputs`]
/// (e.g. from an `inputs` pre-stage) before recording, or use
/// [`workflow_with_inputs`] which includes a stage-0 input-preparation
/// task.
pub fn workflow(cfg: &PyflextrkrConfig) -> WorkflowSpec {
    let n = cfg.input_files;
    let mut wf = WorkflowSpec::new("pyflextrkr");

    // Stage 1: run_idfeature — parallel feature identification.
    let mut s1 = Vec::new();
    for i in 0..n {
        let cfg2 = cfg.clone();
        s1.push(
            TaskSpec::new(format!("run_idfeature_{i}"), move |io: &TaskIo| {
                let raw = read_whole(io, &input_file(i), "sensor")?;
                // Feature extraction keeps a deterministic digest of the raw data.
                let mut feat = payload(cfg2.feature_bytes, i as u64 + 7);
                feat[0] = raw[0];
                write_blob(io, &feature_file(i), "features", &feat)
            })
            .with_compute(cfg.compute_ns)
            .with_contract(
                IoContract::new()
                    .reads_all(input_file(i), "/sensor")
                    .writes_all(feature_file(i), "/features"),
            ),
        );
    }
    wf = wf.stage("idfeature", s1);

    // Stage 2: run_tracksingle — parallel per-file tracking over features.
    let mut s2 = Vec::new();
    for i in 0..n {
        let cfg2 = cfg.clone();
        s2.push(
            TaskSpec::new(format!("run_tracksingle_{i}"), move |io: &TaskIo| {
                let feat = read_whole(io, &feature_file(i), "features")?;
                let mut track = payload(cfg2.feature_bytes / 2, i as u64 + 13);
                track[0] = feat[0];
                write_blob(io, &track_file(i), "tracks", &track)
            })
            .with_compute(cfg.compute_ns)
            .with_contract(
                IoContract::new()
                    .reads_all(feature_file(i), "/features")
                    .writes_all(track_file(i), "/tracks"),
            ),
        );
    }
    wf = wf.stage("tracksingle", s2);

    // Stage 3: run_gettracks — all-to-all over track files; write-after-read
    // on its own output.
    {
        let cfg2 = cfg.clone();
        wf = wf.stage(
            "gettracks",
            vec![TaskSpec::new("run_gettracks", move |io: &TaskIo| {
                let mut acc = 0u64;
                for i in 0..cfg2.input_files {
                    let t = read_whole(io, &track_file(i), "tracks")?;
                    acc = acc.wrapping_add(t.iter().map(|&b| b as u64).sum::<u64>());
                }
                // First write a draft, read it back, then rewrite (the
                // write-after-read circle 1 of Fig. 4 — the read comes
                // first in the final access pattern because the draft file
                // pre-exists from the previous iteration; modelled here as
                // read-modify-write on the output).
                let draft = payload(cfg2.feature_bytes, acc ^ 0xA5);
                write_blob(io, "tracks_numbers.h5", "linked", &draft)?;
                let back = read_whole(io, "tracks_numbers.h5", "linked")?;
                let f = io.open("tracks_numbers.h5")?;
                let mut ds = f.root().open_dataset("linked")?;
                let mut fin = back;
                fin[0] ^= 0xFF;
                ds.write(&fin)?;
                ds.close()?;
                f.close()
            })
            .with_compute(cfg.compute_ns * 2)
            .with_contract({
                let mut c = IoContract::new();
                for i in 0..cfg.input_files {
                    c = c.reads_all(track_file(i), "/tracks");
                }
                // Write-after-read on its own output: both directions declared.
                c.writes_all("tracks_numbers.h5", "/linked")
                    .reads_all("tracks_numbers.h5", "/linked")
            })],
        );
    }

    // Stage 4: run_trackstats — fan-in: all track files + tracks_numbers.
    {
        let cfg2 = cfg.clone();
        wf = wf.stage(
            "trackstats",
            vec![TaskSpec::new("run_trackstats", move |io: &TaskIo| {
                for i in 0..cfg2.input_files {
                    read_whole(io, &track_file(i), "tracks")?;
                }
                read_whole(io, "tracks_numbers.h5", "linked")?;
                write_blob(
                    io,
                    "trackstats.h5",
                    "stats",
                    &payload(cfg2.feature_bytes, 0x5717),
                )
            })
            .with_compute(cfg.compute_ns * 2)
            .with_contract({
                let mut c = IoContract::new();
                for i in 0..cfg.input_files {
                    c = c.reads_all(track_file(i), "/tracks");
                }
                c.reads_all("tracks_numbers.h5", "/linked")
                    .writes_all("trackstats.h5", "/stats")
            })],
        );
    }

    // Stage 5: run_identifymcs — one-to-one from trackstats.
    {
        let cfg2 = cfg.clone();
        wf = wf.stage(
            "identifymcs",
            vec![TaskSpec::new("run_identifymcs", move |io: &TaskIo| {
                read_whole(io, "trackstats.h5", "stats")?;
                write_blob(io, "mcs.h5", "mcs", &payload(cfg2.feature_bytes / 2, 0x3C5))
            })
            .with_compute(cfg.compute_ns)
            .with_contract(
                IoContract::new()
                    .reads_all("trackstats.h5", "/stats")
                    .writes_all("mcs.h5", "/mcs"),
            )],
        );
    }

    // Stage 6: run_matchpf — time-dependent PF inputs + stage-5 output.
    {
        let cfg2 = cfg.clone();
        wf = wf.stage(
            "matchpf",
            vec![TaskSpec::new("run_matchpf", move |io: &TaskIo| {
                read_whole(io, "mcs.h5", "mcs")?;
                for i in 0..cfg2.input_files {
                    read_whole(io, &pf_input_file(i), "pf")?;
                }
                write_blob(
                    io,
                    "mcs_pf.h5",
                    "matched",
                    &payload(cfg2.feature_bytes / 2, 0x6A1),
                )
            })
            .with_compute(cfg.compute_ns)
            .with_contract({
                let mut c = IoContract::new().reads_all("mcs.h5", "/mcs");
                for i in 0..cfg.input_files {
                    c = c.reads_all(pf_input_file(i), "/pf");
                }
                c.writes_all("mcs_pf.h5", "/matched")
            })],
        );
    }

    // Stage 7: run_robustmcs.
    {
        let cfg2 = cfg.clone();
        wf = wf.stage(
            "robustmcs",
            vec![TaskSpec::new("run_robustmcs", move |io: &TaskIo| {
                read_whole(io, "mcs_pf.h5", "matched")?;
                write_blob(
                    io,
                    "robust_mcs.h5",
                    "robust",
                    &payload(cfg2.feature_bytes / 2, 0x7B2),
                )
            })
            .with_compute(cfg.compute_ns)
            .with_contract(
                IoContract::new()
                    .reads_all("mcs_pf.h5", "/matched")
                    .writes_all("robust_mcs.h5", "/robust"),
            )],
        );
    }

    // Stage 8: run_mapfeature — parallel, re-reads stage-1 feature files.
    let mut s8 = Vec::new();
    for i in 0..n {
        let cfg2 = cfg.clone();
        s8.push(
            TaskSpec::new(format!("run_mapfeature_{i}"), move |io: &TaskIo| {
                read_whole(io, &feature_file(i), "features")?;
                read_whole(io, "robust_mcs.h5", "robust")?;
                write_blob(
                    io,
                    &format!("mcsmap_{i:04}.h5"),
                    "map",
                    &payload(cfg2.feature_bytes / 4, 0x800 + i as u64),
                )
            })
            .with_compute(cfg.compute_ns)
            .with_contract(
                IoContract::new()
                    .reads_all(feature_file(i), "/features")
                    .reads_all("robust_mcs.h5", "/robust")
                    .writes_all(format!("mcsmap_{i:04}.h5"), "/map"),
            ),
        );
    }
    wf = wf.stage("mapfeature", s8);

    // Stage 9: run_speed — many small datasets, repeatedly accessed.
    {
        let cfg2 = cfg.clone();
        wf = wf.stage(
            "speed",
            vec![TaskSpec::new("run_speed", move |io: &TaskIo| {
                read_whole(io, "robust_mcs.h5", "robust")?;
                let f = io.create("speed_stats.h5")?;
                for d in 0..cfg2.small_datasets {
                    let mut ds = f.root().create_dataset(
                        &format!("speed_{d:03}"),
                        DatasetBuilder::new(
                            DataType::Int { width: 1 },
                            &[cfg2.small_dataset_bytes as u64],
                        ),
                    )?;
                    ds.write(&payload(cfg2.small_dataset_bytes, 0x900 + d as u64))?;
                    ds.close()?;
                }
                // Repeated accesses to every small dataset (Fig. 13a:
                // "32 datasets, each accessed 23 times").
                for _pass in 1..cfg2.small_dataset_accesses {
                    for d in 0..cfg2.small_datasets {
                        let mut ds = f.root().open_dataset(&format!("speed_{d:03}"))?;
                        ds.read()?;
                        ds.close()?;
                    }
                }
                f.close()
            })
            .with_compute(cfg.compute_ns)
            .with_contract({
                let mut c = IoContract::new().reads_all("robust_mcs.h5", "/robust");
                for d in 0..cfg.small_datasets {
                    c = c.writes_all("speed_stats.h5", format!("/speed_{d:03}"));
                    if cfg.small_dataset_accesses > 1 {
                        c = c.reads_all("speed_stats.h5", format!("/speed_{d:03}"));
                    }
                }
                c
            })],
        );
    }

    wf
}

/// Writes the initial inputs *without tracing* them, so analysis sees them
/// as pre-existing pure inputs (no writer task) — how the paper's workflow
/// encounters its sensor data.
pub fn prepare_inputs_untraced(fs: &dayu_vfd::MemFs, cfg: &PyflextrkrConfig) -> Result<u64> {
    let mapper = dayu_mapper::Mapper::new("pyflextrkr-inputs");
    let io = TaskIo::new(fs, &mapper);
    let bytes = prepare_inputs(&io, cfg)?;
    drop(mapper); // traces discarded
    Ok(bytes)
}

/// The nine-stage workflow preceded by a stage-0 `prepare_inputs` task, so
/// a single [`dayu_workflow::record`] call runs end to end. Note the input
/// files then have a traced writer; use [`prepare_inputs_untraced`] +
/// [`workflow`] when analysis should treat them as pre-existing inputs.
pub fn workflow_with_inputs(cfg: &PyflextrkrConfig) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new("pyflextrkr");
    let cfg2 = cfg.clone();
    wf = wf.stage(
        "inputs",
        vec![TaskSpec::new("prepare_inputs", move |io: &TaskIo| {
            prepare_inputs(io, &cfg2).map(|_| ())
        })
        .with_contract({
            let mut c = IoContract::new();
            for i in 0..cfg.input_files {
                c = c
                    .writes_all(input_file(i), "/sensor")
                    .writes_all(pf_input_file(i), "/pf");
            }
            c
        })],
    );
    for stage in workflow(cfg).stages {
        wf.stages.push(stage);
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_analyzer::{Analysis, Finding};
    use dayu_vfd::MemFs;
    use dayu_workflow::record;

    fn tiny() -> PyflextrkrConfig {
        PyflextrkrConfig {
            input_files: 3,
            input_bytes: 4096,
            feature_bytes: 2048,
            small_datasets: 12,
            small_dataset_bytes: 300,
            small_dataset_accesses: 3,
            // Large enough that stage ordering dominates profiling noise in
            // the time-dependent-input check.
            compute_ns: 2_000_000,
        }
    }

    #[test]
    fn nine_stages_plus_inputs() {
        let wf = workflow_with_inputs(&tiny());
        assert_eq!(wf.stages.len(), 10);
        assert_eq!(wf.stages[1].name, "idfeature");
        assert_eq!(wf.stages[9].name, "speed");
        assert_eq!(wf.stages[3].tasks.len(), 1, "gettracks is one task");
        assert_eq!(wf.stages[1].tasks.len(), 3, "parallel stage 1");
        wf.validate().unwrap();
    }

    #[test]
    fn records_and_reproduces_fig4_observations() {
        let fs = MemFs::new();
        prepare_inputs_untraced(&fs, &tiny()).unwrap();
        let run = record(&workflow(&tiny()), &fs).unwrap();
        // Wall-clock stage durations wobble under test parallelism; a lower
        // late-input threshold keeps the check on the *structure* (PF files
        // first read at stage 6, sensors at stage 1), not on timing noise.
        let analysis = Analysis::run_with(
            &run.bundle,
            &dayu_analyzer::SdgOptions::default(),
            &dayu_analyzer::DetectorConfig {
                late_input_fraction: 0.15,
                ..Default::default()
            },
        );

        // Observation 1 (data reuse): feature files are read by stages
        // 2 and 8 → ≥2 readers.
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::DataReuse { file, readers }
                    if file.starts_with("feature_") && readers.len() >= 2
            )),
            "feature files are reused"
        );

        // Observation (write-after-read): run_gettracks on its output.
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::WriteAfterRead { task, file }
                    if task == "run_gettracks" && file == "tracks_numbers.h5"
            ) || matches!(
                f,
                Finding::ReadAfterWrite { task, file }
                    if task == "run_gettracks" && file == "tracks_numbers.h5"
            )),
            "gettracks revisits its output: {:?}",
            analysis.findings
        );

        // Observation 2 (time-dependent inputs): PF files first needed at
        // stage 6.
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::TimeDependentInput { file, .. } if file.starts_with("pf_input_")
            )),
            "PF inputs are time-dependent"
        );
        assert!(
            !analysis.findings.iter().any(|f| matches!(
                f,
                Finding::TimeDependentInput { file, .. } if file.starts_with("sensor_")
            )),
            "sensor inputs are needed immediately, not time-dependent"
        );

        // Observation 4 (data scattering): run_speed's stats file.
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::SmallScatteredDatasets { file, dataset_count, .. }
                    if file == "speed_stats.h5" && *dataset_count >= 12
            )),
            "speed stats exhibit scattering"
        );

        // Fig. 11 pattern: stages 3→4→5 chain is co-schedulable.
        assert!(analysis.findings.iter().any(|f| matches!(
            f,
            Finding::CoSchedulable { producer, consumer, .. }
                if producer == "run_trackstats" && consumer == "run_identifymcs"
        )));
    }

    #[test]
    fn stage9_is_metadata_heavy() {
        let fs = MemFs::new();
        let run = record(&workflow_with_inputs(&tiny()), &fs).unwrap();
        // Count ops against the stats file.
        let (mut meta, mut data) = (0u64, 0u64);
        for r in &run.bundle.vfd {
            if r.file.as_str() == "speed_stats.h5" && r.kind.moves_data() {
                if r.access == dayu_trace::vfd::AccessType::Metadata {
                    meta += 1;
                } else {
                    data += 1;
                }
            }
        }
        assert!(
            meta > data,
            "small-dataset churn is metadata-dominated: {meta} metadata vs {data} data"
        );
    }

    #[test]
    fn contracts_cover_every_task_and_conform() {
        let cfg = tiny();
        let wf = workflow_with_inputs(&cfg);
        for stage in &wf.stages {
            for task in &stage.tasks {
                assert!(task.contract.is_some(), "{} has no contract", task.name);
            }
        }
        let report = dayu_lint::analyze_contracts(&wf, &dayu_lint::LintConfig::default());
        assert!(report.is_clean(), "{:?}", report.findings);
        let fs = MemFs::new();
        let run = record(&wf, &fs).unwrap();
        let report = dayu_lint::check_conformance(&run.bundle, &wf);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn configurations_scale() {
        let c1 = PyflextrkrConfig::c1();
        let c2 = PyflextrkrConfig::c2();
        assert_eq!(c1.input_files, 48);
        assert_eq!(c2.input_files, 240);
        assert!((c1.input_files * c1.input_bytes) as u64 >= 160 << 20);
        assert!((c2.input_files * c2.input_bytes) as u64 >= 1150 << 20);
    }
}
