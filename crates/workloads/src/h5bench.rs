//! An h5bench-style parallel I/O benchmark (paper Section VII-B).
//!
//! h5bench is "a representative parallel I/O benchmark designed for
//! large-scale HDF5 workflows": N processes each write and read back large
//! fixed-length datasets. The paper uses it for the typical-case overhead
//! figures — Fig. 9a (overhead vs total file size), Fig. 9b (overhead vs
//! process count at 1 GB per process) and Fig. 10a (component breakdown).
//! Processes are modeled as rayon threads, file-per-process.

use crate::bench_common::{Backend, BenchRun, Instrumentation, Session};
use crate::util::payload;
use dayu_hdf::{DataType, DatasetBuilder, Result};
use rayon::prelude::*;
use std::time::Instant;

/// Benchmark parameters.
#[derive(Clone, Debug)]
pub struct H5benchConfig {
    /// Parallel I/O processes (threads), each with its own file.
    pub processes: usize,
    /// Bytes written (and read back) per process.
    pub bytes_per_process: u64,
    /// Datasets the per-process payload is split across.
    pub datasets_per_file: usize,
    /// Whether to read everything back after writing (h5bench read phase).
    pub read_back: bool,
}

impl Default for H5benchConfig {
    fn default() -> Self {
        Self {
            processes: 4,
            bytes_per_process: 4 << 20,
            datasets_per_file: 4,
            read_back: true,
        }
    }
}

impl H5benchConfig {
    /// Total application bytes moved (writes + optional reads).
    pub fn app_bytes(&self) -> u64 {
        let written = self.processes as u64 * self.bytes_per_process;
        if self.read_back {
            written * 2
        } else {
            written
        }
    }
}

fn one_process(session: &Session, rank: usize, cfg: &H5benchConfig) -> Result<()> {
    let file = format!("h5bench_rank{rank:04}.h5");
    let per_ds = (cfg.bytes_per_process / cfg.datasets_per_file as u64).max(8);
    let elems = per_ds / 8;

    let f = session.create(&file)?;
    let root = f.root();
    let data = payload((elems * 8) as usize, rank as u64);
    for d in 0..cfg.datasets_per_file {
        let mut ds = root.create_dataset(
            &format!("dset_{d}"),
            DatasetBuilder::new(DataType::Float { width: 8 }, &[elems]),
        )?;
        ds.write(&data)?;
        ds.close()?;
    }
    f.close()?;

    if cfg.read_back {
        let f = session.open(&file)?;
        let root = f.root();
        for d in 0..cfg.datasets_per_file {
            let mut ds = root.open_dataset(&format!("dset_{d}"))?;
            let back = ds.read()?;
            assert_eq!(back.len() as u64, elems * 8);
            ds.close()?;
        }
        f.close()?;
    }
    Ok(())
}

/// Runs the benchmark under the given instrumentation over the given
/// backend, returning wall time and (when instrumented) the trace bundle.
pub fn run(cfg: &H5benchConfig, backend: Backend, instr: Instrumentation) -> Result<BenchRun> {
    // One session per process: its own mapper context, like a real rank.
    let sessions: Vec<Session> = (0..cfg.processes)
        .map(|r| {
            let s = Session::new("h5bench", backend.clone(), instr);
            s.set_task(&format!("h5bench_rank{r}"));
            s
        })
        .collect();

    let t0 = Instant::now();
    let results: Vec<Result<()>> = sessions
        .par_iter()
        .enumerate()
        .map(|(rank, session)| one_process(session, rank, cfg))
        .collect();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    for r in results {
        r?;
    }

    let sessions_self_ns: u64 = sessions
        .iter()
        .filter_map(|s| s.mapper().map(|m| m.timers().total_ns()))
        .sum();
    let mut bundle = None;
    for s in sessions {
        if let Some(b) = s.finish() {
            match &mut bundle {
                None => bundle = Some(b),
                Some(acc) => acc.merge(b),
            }
        }
    }
    let mapper_self_ns: u64 = sessions_self_ns;
    Ok(BenchRun {
        wall_ns,
        app_bytes: cfg.app_bytes(),
        mapper_self_ns,
        bundle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> H5benchConfig {
        H5benchConfig {
            processes: 3,
            bytes_per_process: 64 << 10,
            datasets_per_file: 2,
            read_back: true,
        }
    }

    #[test]
    fn baseline_run_completes() {
        let r = run(&tiny(), Backend::mem(), Instrumentation::None).unwrap();
        assert!(r.wall_ns > 0);
        assert!(r.bundle.is_none());
        assert_eq!(r.app_bytes, 2 * 3 * (64 << 10));
    }

    #[test]
    fn instrumented_run_captures_all_ranks() {
        let r = run(&tiny(), Backend::mem(), Instrumentation::Full).unwrap();
        let b = r.bundle.unwrap();
        assert_eq!(b.meta.task_order.len(), 3);
        // Every rank contributed object records (2 datasets each).
        for rank in 0..3 {
            let task = format!("h5bench_rank{rank}");
            assert!(
                b.vol.iter().filter(|v| v.task.as_str() == task).count() >= 2,
                "rank {rank} records present"
            );
        }
        assert!(b.application_bytes() >= r.app_bytes, "raw + metadata I/O");
    }

    #[test]
    fn vfd_storage_scales_with_ops_vol_does_not() {
        let small = run(&tiny(), Backend::mem(), Instrumentation::Full).unwrap();
        let mut big_cfg = tiny();
        big_cfg.datasets_per_file = 8; // 4x the object count & ops
        let big = run(&big_cfg, Backend::mem(), Instrumentation::Full).unwrap();
        assert!(big.vfd_storage() > small.vfd_storage());
        // VOL storage grows with object count but far slower than VFD.
        let vfd_growth = big.vfd_storage() as f64 / small.vfd_storage() as f64;
        let vol_growth = big.vol_storage() as f64 / small.vol_storage() as f64;
        assert!(
            vol_growth < vfd_growth * 1.5,
            "vol {vol_growth:.2}x vs vfd {vfd_growth:.2}x"
        );
    }

    #[test]
    fn disk_backend_round_trips() {
        let backend = Backend::temp_dir("h5bench-test").unwrap();
        let r = run(&tiny(), backend, Instrumentation::VfdOnly).unwrap();
        assert!(!r.bundle.unwrap().vfd.is_empty());
    }
}
