//! The DeepDriveMD (DDMD) workload (paper Section VI-B).
//!
//! An iterative 4-stage pipeline: OpenMM simulation (12 parallel tasks),
//! aggregation, training, inference. Reproduces the dataflow of Fig. 6/7:
//!
//! * each `openmm` task writes an HDF5 file with four **chunked** datasets
//!   — `contact_map` (largest), `point_cloud`, `fnc`, `rmsd`;
//! * `aggregate` reads **all** simulated data sequentially and consolidates
//!   the four datasets plus file metadata into `aggregated.h5` without
//!   modifying content;
//! * `training` reads the aggregated file but uses only three datasets —
//!   it touches `contact_map`'s **metadata only** (the Fig. 7 pop-up) and
//!   reads one simulation file's `contact_map` directly; it writes ten
//!   `embeddings-epoch-N` files and re-reads some of them
//!   (**read-after-write**);
//! * `inference` reads all simulated data again and writes its own
//!   `virtual_stage` output — sharing **no** files with training.

use crate::util::{payload, payload_f64};
use dayu_hdf::{DataType, Dataset, DatasetBuilder, Group, LayoutKind, Result};
use dayu_workflow::{IoContract, TaskIo, TaskSpec, WorkflowSpec};

/// The four datasets every OpenMM output carries.
pub const DATASETS: [&str; 4] = ["contact_map", "point_cloud", "fnc", "rmsd"];

/// Workload parameters. Defaults are laptop-scale; the paper runs 12
/// simulation tasks per iteration and a 5-iteration pipeline (Fig. 12).
#[derive(Clone, Debug)]
pub struct DdmdConfig {
    /// Parallel OpenMM simulation tasks per iteration (paper: 12).
    pub sim_tasks: usize,
    /// Pipeline iterations (paper Fig. 12: 5).
    pub iterations: usize,
    /// Side length of the square `contact_map` (bytes = n²).
    pub contact_map_dim: u64,
    /// Points in `point_cloud` (bytes = 3 × 8 × n).
    pub point_cloud_points: u64,
    /// Elements in `fnc` and `rmsd` (8 bytes each).
    pub scalar_series_len: u64,
    /// Storage layout for the datasets (paper observation: all chunked).
    pub layout: LayoutKind,
    /// Training epochs → embedding files written (paper: 10).
    pub epochs: usize,
    /// Epoch outputs training re-reads (paper: files 5 and 10).
    pub reread_epochs: Vec<usize>,
    /// Modeled compute per task, nanoseconds.
    pub compute_ns: u64,
}

impl Default for DdmdConfig {
    fn default() -> Self {
        Self {
            sim_tasks: 12,
            iterations: 1,
            contact_map_dim: 64,
            point_cloud_points: 512,
            scalar_series_len: 128,
            layout: LayoutKind::Chunked,
            epochs: 10,
            reread_epochs: vec![5, 10],
            compute_ns: 5_000_000,
        }
    }
}

impl DdmdConfig {
    /// Bytes of one `contact_map`.
    pub fn contact_map_bytes(&self) -> u64 {
        self.contact_map_dim * self.contact_map_dim
    }
}

/// Simulation output file name for (iteration, task).
pub fn sim_file(iter: usize, task: usize) -> String {
    format!("stage{:04}_task{:04}.h5", iter * 4, task)
}

/// Aggregated file name for an iteration.
pub fn aggregated_file(iter: usize) -> String {
    format!("aggregated_{iter:04}.h5")
}

/// Embedding file name for (iteration, epoch).
pub fn embedding_file(iter: usize, epoch: usize) -> String {
    format!("embeddings-epoch-{epoch}-iter{iter:04}.h5")
}

/// Inference output name for an iteration.
pub fn inference_file(iter: usize) -> String {
    format!("virtual_stage{:04}_task0000.h5", iter * 4 + 2)
}

fn create_four_datasets(root: &Group, cfg: &DdmdConfig, seed: u64) -> Result<()> {
    let with_layout = |b: DatasetBuilder, chunk: &[u64]| -> DatasetBuilder {
        match cfg.layout {
            LayoutKind::Chunked => b.chunks(chunk),
            other => b.layout(other),
        }
    };
    let mut cm = root.create_dataset(
        "contact_map",
        with_layout(
            DatasetBuilder::new(
                DataType::Int { width: 1 },
                &[cfg.contact_map_dim, cfg.contact_map_dim],
            ),
            &[cfg.contact_map_dim.div_ceil(4).max(1), cfg.contact_map_dim],
        ),
    )?;
    cm.write(&payload(cfg.contact_map_bytes() as usize, seed))?;
    cm.close()?;

    let mut pc = root.create_dataset(
        "point_cloud",
        with_layout(
            DatasetBuilder::new(DataType::Float { width: 8 }, &[cfg.point_cloud_points, 3]),
            &[cfg.point_cloud_points.div_ceil(4).max(1), 3],
        ),
    )?;
    pc.write_f64s(&payload_f64(
        (cfg.point_cloud_points * 3) as usize,
        seed + 1,
    ))?;
    pc.close()?;

    for (i, name) in ["fnc", "rmsd"].iter().enumerate() {
        let mut ds = root.create_dataset(
            name,
            with_layout(
                DatasetBuilder::new(DataType::Float { width: 8 }, &[cfg.scalar_series_len]),
                &[cfg.scalar_series_len.div_ceil(4).max(1)],
            ),
        )?;
        ds.write_f64s(&payload_f64(
            cfg.scalar_series_len as usize,
            seed + 2 + i as u64,
        ))?;
        ds.close()?;
    }
    Ok(())
}

fn read_dataset_fully(root: &Group, name: &str) -> Result<Vec<u8>> {
    let mut ds = root.open_dataset(name)?;
    let data = ds.read()?;
    ds.close()?;
    Ok(data)
}

/// Opens a dataset and closes it without reading content — a metadata-only
/// touch (the Fig. 7 `contact_map` behaviour).
fn touch_dataset_metadata(root: &Group, name: &str) -> Result<()> {
    let mut ds: Dataset = root.open_dataset(name)?;
    ds.close()
}

/// Declared footprint of one `openmm` task: full writes of the four
/// datasets in its own simulation file. Extents are ⊤ (whole dataset)
/// because the chunked layout interleaves physical bytes.
fn openmm_contract(iter: usize, t: usize) -> IoContract {
    let mut c = IoContract::new();
    for name in DATASETS {
        c = c.writes_all(sim_file(iter, t), format!("/{name}"));
    }
    c
}

/// Declared footprint of the `aggregate` task: full reads of every
/// simulation output, full writes of the consolidated datasets.
fn aggregate_contract(cfg: &DdmdConfig, iter: usize) -> IoContract {
    let mut c = IoContract::new();
    for t in 0..cfg.sim_tasks {
        for name in DATASETS {
            c = c.reads_all(sim_file(iter, t), format!("/{name}"));
        }
    }
    for name in DATASETS {
        c = c.writes_all(aggregated_file(iter), format!("/{name}"));
    }
    c
}

/// Declared footprint of the `training` task. Deliberately omits the
/// aggregated `contact_map`: training only touches its metadata (the
/// Fig. 7 pop-up), and a declared-but-never-read clause would be flagged
/// as waste by conformance — the omission *is* the semantics.
fn training_contract(cfg: &DdmdConfig, iter: usize) -> IoContract {
    let mut c = IoContract::new()
        .reads_all(aggregated_file(iter), "/point_cloud")
        .reads_all(aggregated_file(iter), "/fnc")
        .reads_all(aggregated_file(iter), "/rmsd")
        .reads_all(sim_file(iter, 0), "/contact_map");
    for epoch in 1..=cfg.epochs {
        c = c.writes_all(embedding_file(iter, epoch), "/embedding");
        if cfg.reread_epochs.contains(&epoch) {
            c = c.reads_all(embedding_file(iter, epoch), "/embedding");
        }
    }
    c
}

/// Declared footprint of the `inference` task: full reads of every
/// simulation output plus its own outlier list.
fn inference_contract(cfg: &DdmdConfig, iter: usize) -> IoContract {
    let mut c = IoContract::new();
    for t in 0..cfg.sim_tasks {
        for name in DATASETS {
            c = c.reads_all(sim_file(iter, t), format!("/{name}"));
        }
    }
    c.writes_all(inference_file(iter), "/outliers")
}

/// Builds the DDMD workflow: `iterations` × (simulation, aggregate,
/// training, inference) stages. Every task carries an [`IoContract`]
/// declaring its footprint, so `dayu-lint` can prove stage safety before
/// a run and audit conformance after one.
pub fn workflow(cfg: &DdmdConfig) -> WorkflowSpec {
    let mut wf = WorkflowSpec::new("ddmd");
    for iter in 0..cfg.iterations {
        // Stage 1: OpenMM simulations.
        let mut sims = Vec::new();
        for t in 0..cfg.sim_tasks {
            let cfg2 = cfg.clone();
            sims.push(
                TaskSpec::new(format!("openmm_i{iter}_t{t}"), move |io: &TaskIo| {
                    let f = io.create(&sim_file(iter, t))?;
                    create_four_datasets(&f.root(), &cfg2, (iter * 100 + t) as u64)?;
                    f.close()
                })
                .with_compute(cfg.compute_ns * 4)
                .with_contract(openmm_contract(iter, t)),
            );
        }
        wf = wf.stage(format!("simulation_{iter}"), sims);

        // Stage 2: aggregate — reads all sims sequentially, consolidates.
        {
            let cfg2 = cfg.clone();
            wf = wf.stage(
                format!("aggregate_{iter}"),
                vec![
                    TaskSpec::new(format!("aggregate_i{iter}"), move |io: &TaskIo| {
                        let out = io.create(&aggregated_file(iter))?;
                        let out_root = out.root();
                        // Pre-create the consolidated datasets sized for all tasks.
                        let n = cfg2.sim_tasks as u64;
                        let mut cm_out = out_root.create_dataset(
                            "contact_map",
                            DatasetBuilder::new(
                                DataType::Int { width: 1 },
                                &[n * cfg2.contact_map_dim, cfg2.contact_map_dim],
                            )
                            .chunks(&[cfg2.contact_map_dim, cfg2.contact_map_dim]),
                        )?;
                        let mut pc_out = out_root.create_dataset(
                            "point_cloud",
                            DatasetBuilder::new(
                                DataType::Float { width: 8 },
                                &[n * cfg2.point_cloud_points, 3],
                            )
                            .chunks(&[cfg2.point_cloud_points, 3]),
                        )?;
                        let mut fnc_out = out_root.create_dataset(
                            "fnc",
                            DatasetBuilder::new(
                                DataType::Float { width: 8 },
                                &[n * cfg2.scalar_series_len],
                            )
                            .chunks(&[cfg2.scalar_series_len]),
                        )?;
                        let mut rmsd_out = out_root.create_dataset(
                            "rmsd",
                            DatasetBuilder::new(
                                DataType::Float { width: 8 },
                                &[n * cfg2.scalar_series_len],
                            )
                            .chunks(&[cfg2.scalar_series_len]),
                        )?;
                        for t in 0..cfg2.sim_tasks {
                            let f = io.open(&sim_file(iter, t))?;
                            let root = f.root();
                            let cm = read_dataset_fully(&root, "contact_map")?;
                            cm_out.write_slab(
                                &dayu_hdf::Selection::slab(
                                    &[t as u64 * cfg2.contact_map_dim, 0],
                                    &[cfg2.contact_map_dim, cfg2.contact_map_dim],
                                ),
                                &cm,
                            )?;
                            let pc = read_dataset_fully(&root, "point_cloud")?;
                            pc_out.write_slab(
                                &dayu_hdf::Selection::slab(
                                    &[t as u64 * cfg2.point_cloud_points, 0],
                                    &[cfg2.point_cloud_points, 3],
                                ),
                                &pc,
                            )?;
                            let fnc = read_dataset_fully(&root, "fnc")?;
                            fnc_out.write_slab(
                                &dayu_hdf::Selection::slab(
                                    &[t as u64 * cfg2.scalar_series_len],
                                    &[cfg2.scalar_series_len],
                                ),
                                &fnc,
                            )?;
                            let rmsd = read_dataset_fully(&root, "rmsd")?;
                            rmsd_out.write_slab(
                                &dayu_hdf::Selection::slab(
                                    &[t as u64 * cfg2.scalar_series_len],
                                    &[cfg2.scalar_series_len],
                                ),
                                &rmsd,
                            )?;
                            f.close()?;
                        }
                        cm_out.close()?;
                        pc_out.close()?;
                        fnc_out.close()?;
                        rmsd_out.close()?;
                        out.close()
                    })
                    .with_compute(cfg.compute_ns)
                    .with_contract(aggregate_contract(cfg, iter)),
                ],
            );
        }

        // Stage 3: training — three datasets from the aggregate, metadata-
        // only touch of contact_map, one sim file's contact_map directly,
        // ten embedding outputs with re-reads.
        {
            let cfg2 = cfg.clone();
            wf = wf.stage(
                format!("training_{iter}"),
                vec![
                    TaskSpec::new(format!("training_i{iter}"), move |io: &TaskIo| {
                        let f = io.open(&aggregated_file(iter))?;
                        let root = f.root();
                        read_dataset_fully(&root, "point_cloud")?;
                        read_dataset_fully(&root, "fnc")?;
                        read_dataset_fully(&root, "rmsd")?;
                        // Fig. 7: contact_map is opened (metadata) but its data
                        // is never read from the aggregate…
                        touch_dataset_metadata(&root, "contact_map")?;
                        f.close()?;
                        // …instead it comes straight from one simulation output.
                        let sim = io.open(&sim_file(iter, 0))?;
                        read_dataset_fully(&sim.root(), "contact_map")?;
                        sim.close()?;

                        for epoch in 1..=cfg2.epochs {
                            let e = io.create(&embedding_file(iter, epoch))?;
                            let mut ds = e.root().create_dataset(
                                "embedding",
                                DatasetBuilder::new(
                                    DataType::Float { width: 8 },
                                    &[cfg2.point_cloud_points],
                                ),
                            )?;
                            ds.write_f64s(&payload_f64(
                                cfg2.point_cloud_points as usize,
                                (iter * 1000 + epoch) as u64,
                            ))?;
                            ds.close()?;
                            e.close()?;
                            if cfg2.reread_epochs.contains(&epoch) {
                                let e = io.open(&embedding_file(iter, epoch))?;
                                read_dataset_fully(&e.root(), "embedding")?;
                                e.close()?;
                            }
                        }
                        Ok(())
                    })
                    // Training is long but not the pipeline's critical path
                    // once DaYu pipelines it with inference; simulation (x4)
                    // remains the long pole, as in the real DDMD.
                    .with_compute(cfg.compute_ns * 3)
                    .with_contract(training_contract(cfg, iter)),
                ],
            );
        }

        // Stage 4: inference — all simulated data again; own output; no
        // files shared with training.
        {
            let cfg2 = cfg.clone();
            wf = wf.stage(
                format!("inference_{iter}"),
                vec![
                    TaskSpec::new(format!("inference_i{iter}"), move |io: &TaskIo| {
                        for t in 0..cfg2.sim_tasks {
                            let f = io.open(&sim_file(iter, t))?;
                            let root = f.root();
                            for name in DATASETS {
                                read_dataset_fully(&root, name)?;
                            }
                            f.close()?;
                        }
                        let out = io.create(&inference_file(iter))?;
                        let mut ds = out.root().create_dataset(
                            "outliers",
                            DatasetBuilder::new(
                                DataType::Int { width: 8 },
                                &[cfg2.sim_tasks as u64],
                            ),
                        )?;
                        ds.write_u64s(&vec![0u64; cfg2.sim_tasks])?;
                        ds.close()?;
                        out.close()
                    })
                    .with_compute(cfg.compute_ns * 2)
                    .with_contract(inference_contract(cfg, iter)),
                ],
            );
        }
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_analyzer::{Analysis, Finding};
    use dayu_vfd::MemFs;
    use dayu_workflow::record;

    fn tiny() -> DdmdConfig {
        DdmdConfig {
            sim_tasks: 3,
            iterations: 1,
            contact_map_dim: 16,
            point_cloud_points: 32,
            scalar_series_len: 16,
            compute_ns: 100,
            ..Default::default()
        }
    }

    #[test]
    fn four_stages_per_iteration() {
        let wf = workflow(&DdmdConfig {
            iterations: 2,
            ..tiny()
        });
        assert_eq!(wf.stages.len(), 8);
        assert_eq!(wf.stages[0].tasks.len(), 3);
        assert_eq!(wf.stages[1].tasks.len(), 1);
        wf.validate().unwrap();
    }

    #[test]
    fn reproduces_fig6_fig7_observations() {
        let fs = MemFs::new();
        let run = record(&workflow(&tiny()), &fs).unwrap();
        let analysis = Analysis::run(&run.bundle);

        // Fig. 6 (1): sim outputs are read by both aggregate and inference.
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::DataReuse { file, readers }
                    if file.starts_with("stage0000_task") && readers.len() >= 2
            )),
            "simulation outputs reused: {:?}",
            analysis
                .findings
                .iter()
                .map(|f| f.category())
                .collect::<Vec<_>>()
        );

        // Fig. 6 (2): training re-reads embedding files (read-after-write).
        assert!(analysis.findings.iter().any(|f| matches!(
            f,
            Finding::ReadAfterWrite { task, file }
                if task.starts_with("training") && file.contains("embeddings-epoch-5")
        )));

        // Fig. 7: the aggregated contact_map is metadata-only for training.
        assert!(
            analysis.findings.iter().any(|f| matches!(
                f,
                Finding::UnusedDataset { dataset, metadata_only_readers, .. }
                    if dataset == "aggregated_0000.h5:/contact_map"
                        && metadata_only_readers.iter().any(|t| t.starts_with("training"))
            )),
            "contact_map unused by training: {:?}",
            analysis.findings
        );

        // Metadata overhead: chunked layout on small datasets flagged.
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.category() == "chunked-small-dataset"));
    }

    #[test]
    fn training_and_inference_share_no_files() {
        let fs = MemFs::new();
        let run = record(&workflow(&tiny()), &fs).unwrap();
        let files_of = |task_prefix: &str| -> std::collections::BTreeSet<String> {
            run.bundle
                .vfd
                .iter()
                .filter(|r| r.task.as_str().starts_with(task_prefix))
                .map(|r| r.file.as_str().to_owned())
                .collect()
        };
        let train = files_of("training");
        let infer = files_of("inference");
        assert!(!train.is_empty() && !infer.is_empty());
        // Only overlap allowed: the sim file training reads contact_map from.
        let overlap: Vec<&String> = train.intersection(&infer).collect();
        assert!(
            overlap.iter().all(|f| f.starts_with("stage0000_task0000")),
            "training/inference share only sim0: {overlap:?}"
        );
    }

    #[test]
    fn aggregate_preserves_content() {
        let fs = MemFs::new();
        record(&workflow(&tiny()), &fs).unwrap();
        assert!(fs.exists("aggregated_0000.h5"));
        assert!(fs.exists("virtual_stage0002_task0000.h5"));
        assert!(fs.exists("embeddings-epoch-10-iter0000.h5"));
    }

    #[test]
    fn contracts_cover_every_task_and_conform() {
        let cfg = tiny();
        let wf = workflow(&cfg);
        for stage in &wf.stages {
            for task in &stage.tasks {
                assert!(task.contract.is_some(), "{} has no contract", task.name);
            }
        }
        // Statically clean: declared footprints plus stage order prove the
        // pipeline race-free before any VFD is opened.
        let report = dayu_lint::analyze_contracts(&wf, &dayu_lint::LintConfig::default());
        assert!(report.is_clean(), "{:?}", report.findings);
        // Dynamically clean: the recorded run stays inside every declared
        // clause and exercises each one (no out-of-footprint I/O, no waste).
        let fs = MemFs::new();
        let run = record(&wf, &fs).unwrap();
        let report = dayu_lint::check_conformance(&run.bundle, &wf);
        assert!(report.is_clean(), "{:?}", report.findings);
    }

    #[test]
    fn contiguous_variant_builds_too() {
        let cfg = DdmdConfig {
            layout: LayoutKind::Contiguous,
            ..tiny()
        };
        let fs = MemFs::new();
        let run = record(&workflow(&cfg), &fs).unwrap();
        // No chunk-index metadata for the sim datasets in contiguous mode.
        let analysis = Analysis::run(&run.bundle);
        assert!(!analysis.findings.iter().any(|f| matches!(
            f,
            Finding::ChunkedSmallDataset { dataset, .. } if dataset.contains("stage0000")
        )));
    }
}
