//! Shared plumbing for the overhead benchmarks (Figures 9 and 10).
//!
//! Overhead is measured by running the same workload under different
//! instrumentation modes and comparing wall time against the uninstrumented
//! baseline. The VOL and VFD profilers can be enabled independently,
//! matching the paper's separate VOL/VFD overhead series.

use dayu_hdf::{FileOptions, H5File, Result};
use dayu_mapper::{Mapper, MapperConfig};
use dayu_trace::store::TraceBundle;
use dayu_vfd::{FileVfd, MemFs, Vfd};
use std::path::PathBuf;

/// Which profilers to attach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instrumentation {
    /// No DaYu at all: the baseline.
    None,
    /// Only the object-level (VOL) profiler.
    VolOnly,
    /// Only the low-level (VFD) profiler.
    VfdOnly,
    /// Both layers (full Data Semantic Mapper).
    Full,
}

impl Instrumentation {
    /// The mapper configuration for this mode (`None` has no mapper).
    pub fn mapper_config(self) -> Option<MapperConfig> {
        match self {
            Instrumentation::None => None,
            Instrumentation::VolOnly => Some(MapperConfig {
                trace_io: false,
                trace_vol: true,
                ..Default::default()
            }),
            Instrumentation::VfdOnly => Some(MapperConfig {
                trace_io: true,
                trace_vol: false,
                ..Default::default()
            }),
            Instrumentation::Full => Some(MapperConfig::default()),
        }
    }
}

/// Where benchmark files live.
#[derive(Clone, Debug)]
pub enum Backend {
    /// Shared in-memory filesystem (fast; relative overheads are
    /// *overstated* because the baseline I/O is nearly free).
    Mem(MemFs),
    /// Real files under the given directory (realistic baseline I/O).
    Disk(PathBuf),
}

impl Backend {
    /// A fresh in-memory backend.
    pub fn mem() -> Self {
        Backend::Mem(MemFs::new())
    }

    /// A per-process temp-dir backend.
    pub fn temp_dir(tag: &str) -> std::io::Result<Self> {
        let dir = std::env::temp_dir().join(format!("dayu-bench-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(Backend::Disk(dir))
    }

    /// Opens a raw (uninstrumented) driver for `name`.
    pub fn driver(&self, name: &str, create: bool) -> Result<Box<dyn Vfd>> {
        match self {
            Backend::Mem(fs) => Ok(Box::new(if create {
                fs.create(name)
            } else {
                fs.open(name)
            })),
            Backend::Disk(dir) => {
                let path = dir.join(name);
                Ok(Box::new(if create {
                    FileVfd::create(path)?
                } else {
                    FileVfd::open(path)?
                }))
            }
        }
    }

    /// Removes benchmark artifacts (best-effort).
    pub fn cleanup(&self) {
        if let Backend::Disk(dir) = self {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// A benchmark session: opens instrumented-or-not files uniformly.
pub struct Session {
    backend: Backend,
    mapper: Option<Mapper>,
}

impl Session {
    /// A session for the given backend and instrumentation mode.
    pub fn new(workflow: &str, backend: Backend, instr: Instrumentation) -> Self {
        let mapper = instr
            .mapper_config()
            .map(|cfg| Mapper::with_config(workflow, cfg));
        Self { backend, mapper }
    }

    /// Announces the current task when instrumented.
    pub fn set_task(&self, name: &str) {
        if let Some(m) = &self.mapper {
            m.set_task(name);
        }
    }

    /// Creates a file through this session's instrumentation.
    pub fn create(&self, name: &str) -> Result<H5File> {
        let raw = self.backend.driver(name, true)?;
        match &self.mapper {
            Some(m) => H5File::create(m.wrap_vfd(raw, name), name, m.file_options()),
            None => H5File::create(raw, name, FileOptions::default()),
        }
    }

    /// Opens a file through this session's instrumentation.
    pub fn open(&self, name: &str) -> Result<H5File> {
        let raw = self.backend.driver(name, false)?;
        match &self.mapper {
            Some(m) => H5File::open(m.wrap_vfd(raw, name), name, m.file_options()),
            None => H5File::open(raw, name, FileOptions::default()),
        }
    }

    /// The mapper, when instrumented.
    pub fn mapper(&self) -> Option<&Mapper> {
        self.mapper.as_ref()
    }

    /// Finishes the session, returning the trace bundle when instrumented.
    pub fn finish(self) -> Option<TraceBundle> {
        self.backend.cleanup();
        self.mapper.map(Mapper::into_bundle)
    }
}

/// Result of one measured benchmark run.
#[derive(Clone, Debug)]
pub struct BenchRun {
    /// Wall time of the workload body, nanoseconds.
    pub wall_ns: u64,
    /// Application bytes moved.
    pub app_bytes: u64,
    /// Time the mapper itself spent on the critical path (component-timer
    /// total), nanoseconds; 0 when uninstrumented. A deterministic
    /// overhead measure that does not depend on wall-clock noise.
    pub mapper_self_ns: u64,
    /// Trace bundle (instrumented runs only).
    pub bundle: Option<TraceBundle>,
}

impl BenchRun {
    /// Relative overhead of this run versus a baseline wall time, as a
    /// fraction (0.01 = 1%).
    pub fn overhead_vs(&self, baseline_ns: u64) -> f64 {
        if baseline_ns == 0 {
            return 0.0;
        }
        (self.wall_ns as f64 - baseline_ns as f64) / baseline_ns as f64
    }

    /// VOL trace storage bytes (0 when uninstrumented).
    pub fn vol_storage(&self) -> u64 {
        self.bundle.as_ref().map_or(0, |b| b.vol_storage_bytes())
    }

    /// VFD trace storage bytes (0 when uninstrumented).
    pub fn vfd_storage(&self) -> u64 {
        self.bundle.as_ref().map_or(0, |b| b.vfd_storage_bytes())
    }

    /// Mapper self-time as a fraction of the run's wall time.
    pub fn self_time_fraction(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.mapper_self_ns as f64 / self.wall_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_hdf::{DataType, DatasetBuilder};

    #[test]
    fn instrumentation_modes_map_to_configs() {
        assert!(Instrumentation::None.mapper_config().is_none());
        let vol = Instrumentation::VolOnly.mapper_config().unwrap();
        assert!(vol.trace_vol && !vol.trace_io);
        let vfd = Instrumentation::VfdOnly.mapper_config().unwrap();
        assert!(!vfd.trace_vol && vfd.trace_io);
        let full = Instrumentation::Full.mapper_config().unwrap();
        assert!(full.trace_vol && full.trace_io);
    }

    fn exercise(session: &Session) {
        session.set_task("bench");
        let f = session.create("s.h5").unwrap();
        let mut ds = f
            .root()
            .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 8 }, &[32]))
            .unwrap();
        ds.write_u64s(&[1; 32]).unwrap();
        ds.close().unwrap();
        f.close().unwrap();
        let f = session.open("s.h5").unwrap();
        let mut ds = f.root().open_dataset("d").unwrap();
        assert_eq!(ds.read_u64s().unwrap()[0], 1);
        ds.close().unwrap();
        f.close().unwrap();
    }

    #[test]
    fn session_mem_uninstrumented() {
        let s = Session::new("t", Backend::mem(), Instrumentation::None);
        exercise(&s);
        assert!(s.mapper().is_none());
        assert!(s.finish().is_none());
    }

    #[test]
    fn session_mem_instrumented_produces_traces() {
        let s = Session::new("t", Backend::mem(), Instrumentation::Full);
        exercise(&s);
        let bundle = s.finish().unwrap();
        assert!(!bundle.vol.is_empty());
        assert!(!bundle.vfd.is_empty());
    }

    #[test]
    fn session_disk_backend_works() {
        let backend = Backend::temp_dir("session-test").unwrap();
        let s = Session::new("t", backend, Instrumentation::VfdOnly);
        exercise(&s);
        let bundle = s.finish().unwrap();
        assert!(bundle.vol.is_empty(), "VOL off");
        assert!(!bundle.vfd.is_empty());
    }

    #[test]
    fn overhead_accounting() {
        let r = BenchRun {
            wall_ns: 110,
            app_bytes: 0,
            mapper_self_ns: 11,
            bundle: None,
        };
        assert!((r.overhead_vs(100) - 0.10).abs() < 1e-12);
        assert!((r.self_time_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(r.overhead_vs(0), 0.0);
        assert_eq!(r.vol_storage(), 0);
        assert_eq!(r.vfd_storage(), 0);
    }
}
