//! Shared helpers for workload generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random payload of `n` bytes from a seed. Cheap
/// (fills from a small PRNG) and reproducible, so workloads generate
/// identical traces across runs.
pub fn payload(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = vec![0u8; n];
    rng.fill(&mut out[..]);
    out
}

/// Deterministic pseudo-random `f64`s in `[0, 1)`.
pub fn payload_f64(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen::<f64>()).collect()
}

/// A deterministic variable length around `mean` (±50%), per-element.
pub fn varlen(mean: usize, seed: u64, index: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
    if mean <= 1 {
        return 1;
    }
    rng.gen_range(mean / 2..mean + mean / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_seed_sensitive() {
        assert_eq!(payload(64, 1), payload(64, 1));
        assert_ne!(payload(64, 1), payload(64, 2));
        assert_eq!(payload(0, 1).len(), 0);
    }

    #[test]
    fn f64_payload() {
        let v = payload_f64(100, 7);
        assert_eq!(v, payload_f64(100, 7));
        assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
    }

    #[test]
    fn varlen_bounds() {
        for i in 0..100 {
            let l = varlen(1000, 3, i);
            assert!((500..1500).contains(&l), "length {l}");
        }
        assert_eq!(varlen(1, 0, 0), 1);
        // Deterministic per index.
        assert_eq!(varlen(1000, 3, 42), varlen(1000, 3, 42));
    }
}
