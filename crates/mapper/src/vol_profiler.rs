//! The VOL profiler: high-level (object-level) half of the Access Tracker.
//!
//! Installed into the format library's hook set, it turns object events into
//! Table I records in the shared mapper state, stamping each with the task
//! announced through the shared context.

use crate::config::MapperConfig;
use crate::state::MapperState;
use crate::timers::{Component, ComponentTimers};
use dayu_hdf::hooks::VolHooks;
use dayu_trace::context::SharedContext;
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::Timestamp;
use dayu_trace::vol::{ObjectDescription, ObjectKind, VolAccess, VolAccessKind};
use parking_lot::Mutex;
use std::sync::Arc;

/// Object-level profiler implementing the format's VOL hooks.
pub struct VolProfiler {
    state: Arc<Mutex<MapperState>>,
    ctx: SharedContext,
    timers: Arc<ComponentTimers>,
    cfg: MapperConfig,
}

impl VolProfiler {
    pub(crate) fn new(
        state: Arc<Mutex<MapperState>>,
        ctx: SharedContext,
        timers: Arc<ComponentTimers>,
        cfg: MapperConfig,
    ) -> Self {
        Self {
            state,
            ctx,
            timers,
            cfg,
        }
    }

    fn task(&self) -> TaskKey {
        self.ctx.task().unwrap_or_else(|| TaskKey::new("main"))
    }
}

impl VolHooks for VolProfiler {
    fn file_opened(&self, file: &FileKey, at: Timestamp) {
        if !self.cfg.trace_vol {
            return;
        }
        let task = self.task();
        self.timers.time(Component::AccessTracker, || {
            self.state.lock().file_opened(task, file.clone(), at);
        });
    }

    fn file_closed(&self, file: &FileKey, at: Timestamp) {
        if !self.cfg.trace_vol {
            return;
        }
        // The deferred flush is the object↔I/O consolidation step, charged
        // to the Characteristic Mapper.
        self.timers.time(Component::CharacteristicMapper, || {
            self.state.lock().file_closed(file, at);
        });
    }

    fn object_opened(
        &self,
        file: &FileKey,
        object: &ObjectKey,
        kind: ObjectKind,
        desc: &ObjectDescription,
        at: Timestamp,
    ) {
        if !self.cfg.trace_vol {
            return;
        }
        let task = self.task();
        self.timers.time(Component::AccessTracker, || {
            self.state
                .lock()
                .object_opened(task, file.clone(), object.clone(), kind, desc, at);
        });
    }

    fn object_closed(&self, file: &FileKey, object: &ObjectKey, at: Timestamp) {
        if !self.cfg.trace_vol {
            return;
        }
        let task = self.task();
        self.timers.time(Component::AccessTracker, || {
            self.state.lock().object_closed(&task, file, object, at);
        });
    }

    fn object_access(
        &self,
        file: &FileKey,
        object: &ObjectKey,
        kind: VolAccessKind,
        bytes: u64,
        sel: Option<(&[u64], &[u64])>,
        at: Timestamp,
    ) {
        if !self.cfg.trace_vol {
            return;
        }
        let task = self.task();
        let access = VolAccess {
            kind,
            count: 1,
            bytes,
            sel_offset: sel.map(|(o, _)| o.to_vec()).unwrap_or_default(),
            sel_count: sel.map(|(_, c)| c.to_vec()).unwrap_or_default(),
            at,
        };
        self.timers.time(Component::AccessTracker, || {
            self.state.lock().object_access(&task, file, object, access);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(trace_vol: bool) -> (VolProfiler, Arc<Mutex<MapperState>>) {
        let cfg = MapperConfig {
            trace_vol,
            ..Default::default()
        };
        let state = Arc::new(Mutex::new(MapperState::new("wf".into(), cfg.clone())));
        let ctx = SharedContext::new();
        ctx.set_task("task0");
        let p = VolProfiler::new(
            state.clone(),
            ctx,
            Arc::new(ComponentTimers::default()),
            cfg,
        );
        (p, state)
    }

    #[test]
    fn events_produce_records() {
        let (p, state) = setup(true);
        let f = FileKey::new("f.h5");
        let o = ObjectKey::new("/d");
        p.file_opened(&f, Timestamp(0));
        p.object_opened(
            &f,
            &o,
            ObjectKind::Dataset,
            &ObjectDescription::default(),
            Timestamp(1),
        );
        p.object_access(&f, &o, VolAccessKind::Write, 100, None, Timestamp(2));
        p.object_access(
            &f,
            &o,
            VolAccessKind::Read,
            50,
            Some((&[0], &[5])),
            Timestamp(3),
        );
        p.object_closed(&f, &o, Timestamp(4));
        p.file_closed(&f, Timestamp(5));

        let s = state.lock();
        assert_eq!(s.flushed_vol.len(), 1);
        let rec = &s.flushed_vol[0];
        assert_eq!(rec.task, TaskKey::new("task0"));
        assert_eq!(rec.accesses.len(), 2);
        assert_eq!(rec.accesses[1].sel_count, vec![5]);
        assert_eq!(s.flushed_files.len(), 1);
    }

    #[test]
    fn trace_vol_off_records_nothing() {
        let (p, state) = setup(false);
        let f = FileKey::new("f.h5");
        p.file_opened(&f, Timestamp(0));
        p.object_opened(
            &f,
            &ObjectKey::new("/d"),
            ObjectKind::Dataset,
            &ObjectDescription::default(),
            Timestamp(1),
        );
        p.file_closed(&f, Timestamp(5));
        let s = state.lock();
        assert!(s.flushed_vol.is_empty());
        assert!(s.flushed_files.is_empty());
    }

    #[test]
    fn missing_task_defaults_to_main() {
        let cfg = MapperConfig::default();
        let state = Arc::new(Mutex::new(MapperState::new("wf".into(), cfg.clone())));
        let p = VolProfiler::new(
            state.clone(),
            SharedContext::new(),
            Arc::new(ComponentTimers::default()),
            cfg,
        );
        let f = FileKey::new("f");
        p.file_opened(&f, Timestamp(0));
        p.file_closed(&f, Timestamp(1));
        assert_eq!(state.lock().flushed_files[0].task, TaskKey::new("main"));
    }
}
