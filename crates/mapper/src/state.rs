//! The Access Tracker's accumulation state.
//!
//! Statistics are "collected as entries in a hash table in the duration of
//! the task" and logging is *deferred until the file is closed* — DaYu keeps
//! tracking semantic data even for closed datasets, so re-opening the same
//! dataset merges into the live entry instead of emitting a new record
//! (the behaviour behind the corner-case overhead shape of Fig. 9c).

use crate::config::MapperConfig;
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::store::{TraceBundle, TraceMeta};
use dayu_trace::time::{Interval, Timestamp};
use dayu_trace::vfd::{FileRecord, VfdRecord};
use dayu_trace::vol::{ObjectDescription, ObjectKind, VolAccess, VolRecord};

/// Live and flushed trace state shared by the VOL and VFD profilers.
pub(crate) struct MapperState {
    pub(crate) workflow: String,
    pub(crate) cfg: MapperConfig,
    pub(crate) task_order: Vec<TaskKey>,
    /// Live object entries, keyed by identity triple.
    open_vol: Vec<((TaskKey, FileKey, ObjectKey), VolRecord)>,
    /// Live per-(task, file) records.
    live_files: Vec<((TaskKey, FileKey), FileRecord)>,
    /// Records flushed on file close.
    pub(crate) flushed_vol: Vec<VolRecord>,
    pub(crate) flushed_files: Vec<FileRecord>,
    /// Time-sensitive I/O trace (when `trace_io` is on).
    pub(crate) vfd: Vec<VfdRecord>,
}

impl MapperState {
    pub(crate) fn new(workflow: String, cfg: MapperConfig) -> Self {
        Self {
            workflow,
            cfg,
            task_order: Vec::new(),
            open_vol: Vec::new(),
            live_files: Vec::new(),
            flushed_vol: Vec::new(),
            flushed_files: Vec::new(),
            vfd: Vec::new(),
        }
    }

    pub(crate) fn push_task(&mut self, task: TaskKey) {
        if !self.task_order.contains(&task) {
            self.task_order.push(task);
        }
    }

    /// Live-or-new VOL entry for an identity triple. Linear scan: the table
    /// holds only *open* objects of the current tasks, which stays small,
    /// and since keys are interned symbols each probe is three u32 compares
    /// — a HashMap would add hashing cost for no measured win at these
    /// sizes.
    pub(crate) fn vol_entry(
        &mut self,
        task: &TaskKey,
        file: &FileKey,
        object: &ObjectKey,
    ) -> Option<&mut VolRecord> {
        self.open_vol
            .iter_mut()
            .find(|((t, f, o), _)| t == task && f == file && o == object)
            .map(|(_, r)| r)
    }

    pub(crate) fn object_opened(
        &mut self,
        task: TaskKey,
        file: FileKey,
        object: ObjectKey,
        kind: ObjectKind,
        desc: &ObjectDescription,
        at: Timestamp,
    ) {
        if let Some(rec) = self.vol_entry(&task, &file, &object) {
            rec.lifetimes.push(Interval::new(at, at));
            if rec.description == ObjectDescription::default() {
                rec.description = desc.clone();
            }
            return;
        }
        let rec = VolRecord {
            task: task.clone(),
            file: file.clone(),
            object: object.clone(),
            kind,
            lifetimes: vec![Interval::new(at, at)],
            description: desc.clone(),
            accesses: Vec::new(),
        };
        self.open_vol.push(((task, file, object), rec));
    }

    pub(crate) fn object_closed(
        &mut self,
        task: &TaskKey,
        file: &FileKey,
        object: &ObjectKey,
        at: Timestamp,
    ) {
        if let Some(rec) = self.vol_entry(task, file, object) {
            if let Some(last) = rec.lifetimes.last_mut() {
                last.end = at;
            }
        }
    }

    pub(crate) fn object_access(
        &mut self,
        task: &TaskKey,
        file: &FileKey,
        object: &ObjectKey,
        access: VolAccess,
    ) {
        if let Some(rec) = self.vol_entry(task, file, object) {
            // Repeats of the same access pattern fold into one counted
            // entry — this is what keeps VOL storage near-constant under
            // repeated reads (Fig. 9d).
            if let Some(last) = rec.accesses.last_mut() {
                if last.same_pattern(&access) {
                    last.fold(&access);
                    return;
                }
            }
            rec.accesses.push(access);
        }
    }

    pub(crate) fn file_opened(&mut self, task: TaskKey, file: FileKey, at: Timestamp) {
        if let Some((_, rec)) = self
            .live_files
            .iter_mut()
            .find(|((t, f), _)| *t == task && *f == file)
        {
            rec.lifetimes.push(Interval::new(at, at));
            return;
        }
        let rec = FileRecord {
            task: task.clone(),
            file: file.clone(),
            lifetimes: vec![Interval::new(at, at)],
            stats: Default::default(),
        };
        self.live_files.push(((task, file), rec));
    }

    /// Per-(task, file) statistics entry, created on demand (the VFD
    /// profiler may see ops before the VOL `file_opened` event).
    pub(crate) fn file_stats(&mut self, task: &TaskKey, file: &FileKey) -> &mut FileRecord {
        let pos = self
            .live_files
            .iter()
            .position(|((t, f), _)| t == task && f == file);
        let pos = match pos {
            Some(p) => p,
            None => {
                self.live_files.push((
                    (task.clone(), file.clone()),
                    FileRecord {
                        task: task.clone(),
                        file: file.clone(),
                        lifetimes: Vec::new(),
                        stats: Default::default(),
                    },
                ));
                self.live_files.len() - 1
            }
        };
        &mut self.live_files[pos].1
    }

    /// The deferred flush: on file close, every live record touching the
    /// file is moved to the flushed stores.
    pub(crate) fn file_closed(&mut self, file: &FileKey, at: Timestamp) {
        let mut i = 0;
        while i < self.open_vol.len() {
            if self.open_vol[i].0 .1 == *file {
                let (_, mut rec) = self.open_vol.swap_remove(i);
                // Any still-open lifetime ends at file close.
                if let Some(last) = rec.lifetimes.last_mut() {
                    if last.end <= last.start {
                        last.end = last.end.max(at);
                    }
                }
                self.flushed_vol.push(rec);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.live_files.len() {
            if self.live_files[i].0 .1 == *file {
                let (_, mut rec) = self.live_files.swap_remove(i);
                if let Some(last) = rec.lifetimes.last_mut() {
                    last.end = last.end.max(at);
                }
                self.flushed_files.push(rec);
            } else {
                i += 1;
            }
        }
    }

    /// Flushes everything still live (end of workflow) and assembles the
    /// trace bundle.
    pub(crate) fn into_bundle(mut self, now: Timestamp) -> TraceBundle {
        let files: Vec<FileKey> = self
            .open_vol
            .iter()
            .map(|((_, f, _), _)| f.clone())
            .chain(self.live_files.iter().map(|((_, f), _)| f.clone()))
            .collect();
        for f in files {
            self.file_closed(&f, now);
        }
        TraceBundle {
            meta: TraceMeta {
                workflow: self.workflow,
                task_order: self.task_order,
                page_size: self.cfg.page_size,
                ..Default::default()
            },
            vol: self.flushed_vol,
            vfd: self.vfd,
            files: self.flushed_files,
        }
    }

    /// A snapshot bundle without consuming the state (live records are
    /// flushed into the snapshot but stay live here).
    pub(crate) fn snapshot_bundle(&self, now: Timestamp) -> TraceBundle {
        let mut copy = MapperState {
            workflow: self.workflow.clone(),
            cfg: self.cfg.clone(),
            task_order: self.task_order.clone(),
            open_vol: self.open_vol.clone(),
            live_files: self.live_files.clone(),
            flushed_vol: self.flushed_vol.clone(),
            flushed_files: self.flushed_files.clone(),
            vfd: self.vfd.clone(),
        };
        copy.open_vol = std::mem::take(&mut copy.open_vol);
        copy.into_bundle(now)
    }

    /// Number of live object entries (diagnostics / tests).
    #[cfg(test)]
    pub(crate) fn live_objects(&self) -> usize {
        self.open_vol.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::vol::VolAccessKind;

    fn keys() -> (TaskKey, FileKey, ObjectKey) {
        (
            TaskKey::new("t"),
            FileKey::new("f.h5"),
            ObjectKey::new("/d"),
        )
    }

    #[test]
    fn object_lifecycle_and_deferred_flush() {
        let (t, f, o) = keys();
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        s.object_opened(
            t.clone(),
            f.clone(),
            o.clone(),
            ObjectKind::Dataset,
            &ObjectDescription::default(),
            Timestamp(10),
        );
        s.object_access(
            &t,
            &f,
            &o,
            VolAccess {
                kind: VolAccessKind::Write,
                count: 1,
                bytes: 64,
                sel_offset: vec![],
                sel_count: vec![],
                at: Timestamp(11),
            },
        );
        s.object_closed(&t, &f, &o, Timestamp(20));
        assert_eq!(s.live_objects(), 1, "closed but not yet flushed");
        assert!(s.flushed_vol.is_empty());

        s.file_closed(&f, Timestamp(30));
        assert_eq!(s.live_objects(), 0);
        assert_eq!(s.flushed_vol.len(), 1);
        let rec = &s.flushed_vol[0];
        assert_eq!(
            rec.lifetimes,
            vec![Interval::new(Timestamp(10), Timestamp(20))]
        );
        assert_eq!(rec.bytes_written(), 64);
    }

    #[test]
    fn reopened_object_merges_into_live_entry() {
        let (t, f, o) = keys();
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        for i in 0..3u64 {
            s.object_opened(
                t.clone(),
                f.clone(),
                o.clone(),
                ObjectKind::Dataset,
                &ObjectDescription::default(),
                Timestamp(i * 10),
            );
            s.object_closed(&t, &f, &o, Timestamp(i * 10 + 5));
        }
        assert_eq!(s.live_objects(), 1, "one merged entry, not three");
        s.file_closed(&f, Timestamp(100));
        assert_eq!(s.flushed_vol.len(), 1);
        assert_eq!(s.flushed_vol[0].lifetimes.len(), 3);
    }

    #[test]
    fn file_stats_created_on_demand_and_flushed() {
        let (t, f, _) = keys();
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        s.file_stats(&t, &f).stats.read_ops = 7;
        s.file_opened(t.clone(), f.clone(), Timestamp(5));
        s.file_closed(&f, Timestamp(50));
        assert_eq!(s.flushed_files.len(), 1);
        assert_eq!(s.flushed_files[0].stats.read_ops, 7);
        assert_eq!(
            s.flushed_files[0].lifetimes,
            vec![Interval::new(Timestamp(5), Timestamp(50))]
        );
    }

    #[test]
    fn into_bundle_flushes_stragglers() {
        let (t, f, o) = keys();
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        s.push_task(t.clone());
        s.object_opened(
            t.clone(),
            f.clone(),
            o,
            ObjectKind::Dataset,
            &ObjectDescription::default(),
            Timestamp(1),
        );
        let b = s.into_bundle(Timestamp(99));
        assert_eq!(b.vol.len(), 1);
        assert_eq!(b.meta.workflow, "wf");
        assert_eq!(b.meta.task_order, vec![t]);
    }

    #[test]
    fn snapshot_does_not_consume() {
        let (t, f, o) = keys();
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        s.object_opened(
            t,
            f,
            o,
            ObjectKind::Dataset,
            &ObjectDescription::default(),
            Timestamp(1),
        );
        let b = s.snapshot_bundle(Timestamp(2));
        assert_eq!(b.vol.len(), 1);
        assert_eq!(s.live_objects(), 1, "live entry retained");
    }

    #[test]
    fn task_order_deduplicates() {
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        s.push_task(TaskKey::new("a"));
        s.push_task(TaskKey::new("b"));
        s.push_task(TaskKey::new("a"));
        assert_eq!(s.task_order.len(), 2);
    }

    #[test]
    fn distinct_tasks_get_distinct_records() {
        let (_, f, o) = keys();
        let mut s = MapperState::new("wf".into(), MapperConfig::default());
        for name in ["t1", "t2"] {
            s.object_opened(
                TaskKey::new(name),
                f.clone(),
                o.clone(),
                ObjectKind::Dataset,
                &ObjectDescription::default(),
                Timestamp(0),
            );
        }
        assert_eq!(s.live_objects(), 2);
        s.file_closed(&f, Timestamp(9));
        assert_eq!(s.flushed_vol.len(), 2);
    }
}
