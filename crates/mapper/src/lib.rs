//! # dayu-mapper
//!
//! The Data Semantic Mapper (Section IV of the paper): connects the
//! high-level semantics of data interactions ("what") with their underlying
//! I/O behaviours ("how"). It plugs into the format library at the same two
//! points DaYu plugs into HDF5:
//!
//! * the **VOL profiler** ([`VolProfiler`]) observes object-level events
//!   through the format's hook set, producing Table I records;
//! * the **VFD profiler** ([`ProfilingVfd`]) wraps the low-level driver,
//!   producing Table II records;
//! * the **Characteristic Mapper** joins the two layers through the shared
//!   context: the VOL layer publishes the current data object, and the VFD
//!   profiler stamps it onto every low-level operation — revealing the
//!   distinct I/O behaviour of each data object;
//! * the **Input Parser** ([`MapperConfig`]) controls collection
//!   granularity (page size, skipped ops, I/O tracing on/off).
//!
//! ## Usage
//!
//! ```
//! use dayu_mapper::Mapper;
//! use dayu_hdf::{H5File, DatasetBuilder, DataType};
//! use dayu_vfd::MemFs;
//!
//! let fs = MemFs::new();
//! let mapper = Mapper::new("my_workflow");
//! mapper.set_task("producer");
//!
//! let file = H5File::create(
//!     mapper.wrap_vfd(fs.create("out.h5"), "out.h5"),
//!     "out.h5",
//!     mapper.file_options(),
//! ).unwrap();
//! let mut ds = file.root()
//!     .create_dataset("d", DatasetBuilder::new(DataType::Float { width: 8 }, &[8]))
//!     .unwrap();
//! ds.write_f64s(&[0.0; 8]).unwrap();
//! ds.close().unwrap();
//! file.close().unwrap();
//!
//! let bundle = mapper.into_bundle();
//! assert_eq!(bundle.vol.len(), 1);          // one dataset record
//! assert!(!bundle.vfd.is_empty());          // low-level ops traced
//! ```

pub mod config;
pub mod state;
pub mod timers;
pub mod vfd_profiler;
pub mod vol_profiler;

pub use config::{ConfigError, MapperConfig};
pub use timers::{Component, ComponentTimers};
pub use vfd_profiler::ProfilingVfd;
pub use vol_profiler::VolProfiler;

use dayu_hdf::{FileOptions, HookSet};
use dayu_trace::context::SharedContext;
use dayu_trace::ids::FileKey;
use dayu_trace::store::TraceBundle;
use dayu_trace::time::{Clock, RealClock};
use dayu_vfd::Vfd;
use parking_lot::Mutex;
use state::MapperState;
use std::sync::Arc;

/// One profiling session: typically one per task process, merged into a
/// workflow-wide bundle afterwards (or one shared by all tasks of an
/// in-process workflow run).
#[derive(Clone)]
pub struct Mapper {
    cfg: MapperConfig,
    ctx: SharedContext,
    clock: Arc<dyn Clock>,
    state: Arc<Mutex<MapperState>>,
    timers: Arc<ComponentTimers>,
}

impl Mapper {
    /// A mapper with default configuration and a real-time clock.
    pub fn new(workflow: impl Into<String>) -> Self {
        Self::with_config(workflow, MapperConfig::default())
    }

    /// A mapper with explicit configuration.
    pub fn with_config(workflow: impl Into<String>, cfg: MapperConfig) -> Self {
        Self::with_config_and_clock(workflow, cfg, Arc::new(RealClock::new()))
    }

    /// A mapper with explicit configuration and clock (virtual clocks make
    /// traces deterministic for tests and simulation).
    pub fn with_config_and_clock(
        workflow: impl Into<String>,
        cfg: MapperConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self {
            ctx: SharedContext::new(),
            state: Arc::new(Mutex::new(MapperState::new(workflow.into(), cfg.clone()))),
            timers: Arc::new(ComponentTimers::default()),
            cfg,
            clock,
        }
    }

    /// Parses configuration text through the Input Parser (timed as such)
    /// and builds the mapper.
    pub fn from_config_text(workflow: impl Into<String>, text: &str) -> Result<Self, ConfigError> {
        let timers = Arc::new(ComponentTimers::default());
        let cfg = timers.time(Component::InputParser, || MapperConfig::parse(text))?;
        let mapper = Self::with_config(workflow, cfg);
        // Transplant the parse time into the session's timers.
        mapper
            .timers
            .add(Component::InputParser, timers.get(Component::InputParser));
        Ok(mapper)
    }

    /// Announces the current task (paper: "The workflow launcher or
    /// application must inform DaYu of the current task").
    pub fn set_task(&self, name: &str) {
        self.ctx.set_task(name);
        self.state.lock().push_task(name.into());
    }

    /// Ends the current task.
    pub fn clear_task(&self) {
        self.ctx.clear_task();
    }

    /// The shared VOL→VFD context channel (exposed for advanced callers and
    /// tests; the format library publishes objects into it automatically).
    pub fn context(&self) -> &SharedContext {
        &self.ctx
    }

    /// Component timing breakdown (Fig. 10).
    pub fn timers(&self) -> &Arc<ComponentTimers> {
        &self.timers
    }

    /// The active configuration.
    pub fn config(&self) -> &MapperConfig {
        &self.cfg
    }

    /// Wraps a raw driver in the VFD profiler for the named file.
    pub fn wrap_vfd<V: Vfd>(&self, inner: V, file: &str) -> ProfilingVfd<V> {
        ProfilingVfd::new(
            inner,
            FileKey::new(file),
            self.state.clone(),
            self.ctx.clone(),
            self.clock.clone(),
            self.timers.clone(),
            self.cfg.clone(),
        )
    }

    /// Format-library options with the VOL profiler installed and the
    /// shared context/clock wired through.
    pub fn file_options(&self) -> FileOptions {
        FileOptions {
            hooks: HookSet::single(Arc::new(VolProfiler::new(
                self.state.clone(),
                self.ctx.clone(),
                self.timers.clone(),
                self.cfg.clone(),
            ))),
            context: self.ctx.clone(),
            clock: self.clock.clone(),
            ..FileOptions::default()
        }
    }

    /// Snapshot of the trace so far (live records flushed into the
    /// snapshot; the session keeps running).
    pub fn bundle(&self) -> TraceBundle {
        self.state.lock().snapshot_bundle(self.clock.now())
    }

    /// Finishes the session and returns the trace bundle. Other clones of
    /// this mapper keep working against an emptied state.
    pub fn into_bundle(self) -> TraceBundle {
        let now = self.clock.now();
        let mut state = self.state.lock();
        let taken = std::mem::replace(
            &mut *state,
            MapperState::new(String::new(), self.cfg.clone()),
        );
        taken.into_bundle(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_hdf::{DataType, DatasetBuilder, H5File, LayoutKind};
    use dayu_trace::vfd::AccessType;
    use dayu_trace::vol::{ObjectKind, VolAccessKind};
    use dayu_vfd::MemFs;

    fn run_simple(cfg: MapperConfig) -> TraceBundle {
        let fs = MemFs::new();
        let mapper = Mapper::with_config("test_wf", cfg);
        mapper.set_task("writer");
        let file = H5File::create(
            mapper.wrap_vfd(fs.create("a.h5"), "a.h5"),
            "a.h5",
            mapper.file_options(),
        )
        .unwrap();
        let mut ds = file
            .root()
            .create_dataset(
                "data",
                DatasetBuilder::new(DataType::Float { width: 8 }, &[16]),
            )
            .unwrap();
        ds.write_f64s(&[1.0; 16]).unwrap();
        ds.close().unwrap();
        file.close().unwrap();
        mapper.into_bundle()
    }

    #[test]
    fn end_to_end_capture() {
        let b = run_simple(MapperConfig::default());
        assert_eq!(b.meta.workflow, "test_wf");
        assert_eq!(b.meta.task_order, vec!["writer".into()]);

        // Table I: a dataset record with description and one write access.
        let ds_rec = b
            .vol
            .iter()
            .find(|r| r.object.as_str() == "/data")
            .expect("dataset record");
        assert_eq!(ds_rec.kind, ObjectKind::Dataset);
        assert_eq!(ds_rec.description.shape, vec![16]);
        assert_eq!(ds_rec.description.layout, Some(LayoutKind::Contiguous));
        assert_eq!(ds_rec.access_count(VolAccessKind::Write), 1);
        assert_eq!(ds_rec.bytes_written(), 128);
        assert_eq!(ds_rec.lifetimes.len(), 1);

        // Table II: low-level ops, raw write attributed to the dataset.
        let raw_writes: Vec<_> = b
            .vfd
            .iter()
            .filter(|r| r.access == AccessType::RawData && r.object.as_str() == "/data")
            .collect();
        assert_eq!(raw_writes.len(), 1, "one contiguous write of 128 bytes");
        assert_eq!(raw_writes[0].len, 128);

        // Metadata ops exist and are attributed (header writes to /data,
        // superblock to File-Metadata).
        assert!(b
            .vfd
            .iter()
            .any(|r| r.access == AccessType::Metadata && r.object.as_str() == "/data"));
        assert!(b
            .vfd
            .iter()
            .any(|r| r.object == dayu_trace::ids::ObjectKey::file_metadata()));

        // File record with stats.
        assert_eq!(b.files.len(), 1);
        assert!(b.files[0].stats.write_ops > 0);
        assert!(b.files[0].stats.metadata_ops > 0);
    }

    #[test]
    fn trace_io_off_still_captures_semantics() {
        let b = run_simple(MapperConfig {
            trace_io: false,
            ..Default::default()
        });
        assert!(b.vfd.is_empty());
        assert!(!b.vol.is_empty());
        assert!(!b.files.is_empty());
        assert!(b.files[0].stats.total_ops() > 0, "stats still counted");
    }

    #[test]
    fn chunked_dataset_shows_index_metadata_ops() {
        let fs = MemFs::new();
        let mapper = Mapper::new("wf");
        mapper.set_task("t");
        let file = H5File::create(
            mapper.wrap_vfd(fs.create("c.h5"), "c.h5"),
            "c.h5",
            mapper.file_options(),
        )
        .unwrap();
        let mut ds = file
            .root()
            .create_dataset(
                "grid",
                DatasetBuilder::new(DataType::Int { width: 1 }, &[64]).chunks(&[16]),
            )
            .unwrap();
        ds.write(&[7u8; 64]).unwrap();
        ds.close().unwrap();
        file.close().unwrap();
        let b = mapper.into_bundle();

        // Chunked write-back: 4 chunk payload writes + index entry updates,
        // all attributed to /grid.
        let raw = b
            .vfd
            .iter()
            .filter(|r| r.object.as_str() == "/grid" && r.access == AccessType::RawData)
            .count();
        let meta = b
            .vfd
            .iter()
            .filter(|r| r.object.as_str() == "/grid" && r.access == AccessType::Metadata)
            .count();
        assert_eq!(raw, 4, "one write per chunk");
        // Chunk-index metadata: the index block create and its flush at
        // close (entries are cached in memory while the dataset is open,
        // like HDF5's metadata cache), plus header traffic.
        assert!(meta >= 3, "index create/flush + header ops: {meta}");
    }

    #[test]
    fn multi_task_shared_mapper() {
        let fs = MemFs::new();
        let mapper = Mapper::new("wf");
        mapper.set_task("producer");
        {
            let f = H5File::create(
                mapper.wrap_vfd(fs.create("x.h5"), "x.h5"),
                "x.h5",
                mapper.file_options(),
            )
            .unwrap();
            let mut ds = f
                .root()
                .create_dataset("d", DatasetBuilder::new(DataType::Int { width: 4 }, &[8]))
                .unwrap();
            ds.write(&[1; 32]).unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        mapper.set_task("consumer");
        {
            let f = H5File::open(
                mapper.wrap_vfd(fs.open("x.h5"), "x.h5"),
                "x.h5",
                mapper.file_options(),
            )
            .unwrap();
            let mut ds = f.root().open_dataset("d").unwrap();
            assert_eq!(ds.read().unwrap(), vec![1; 32]);
            ds.close().unwrap();
            f.close().unwrap();
        }
        let b = mapper.into_bundle();
        assert_eq!(
            b.meta.task_order,
            vec!["producer".into(), "consumer".into()]
        );
        // Each task has its own VOL record for /d.
        let tasks: Vec<&str> = b
            .vol
            .iter()
            .filter(|r| r.object.as_str() == "/d")
            .map(|r| r.task.as_str())
            .collect();
        assert!(tasks.contains(&"producer"));
        assert!(tasks.contains(&"consumer"));
        // The consumer's record is read-only.
        let cons = b
            .vol
            .iter()
            .find(|r| r.object.as_str() == "/d" && r.task.as_str() == "consumer")
            .unwrap();
        assert_eq!(cons.direction(), (true, false));
    }

    #[test]
    fn component_timers_populate() {
        let fs = MemFs::new();
        let mapper = Mapper::from_config_text("wf", "page_size=8192").unwrap();
        assert_eq!(mapper.config().page_size, 8192);
        assert!(mapper.timers().get(Component::InputParser) > 0);
        mapper.set_task("t");
        let f = H5File::create(
            mapper.wrap_vfd(fs.create("t.h5"), "t.h5"),
            "t.h5",
            mapper.file_options(),
        )
        .unwrap();
        f.close().unwrap();
        assert!(mapper.timers().get(Component::AccessTracker) > 0);
        assert!(mapper.timers().get(Component::CharacteristicMapper) > 0);
        let (ip, at, cm) = mapper.timers().breakdown();
        assert!((ip + at + cm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bundle_snapshot_then_final() {
        let mapper = Mapper::new("wf");
        mapper.set_task("t");
        let snap = mapper.bundle();
        assert_eq!(snap.meta.task_order.len(), 1);
        let fin = mapper.into_bundle();
        assert_eq!(fin.meta.workflow, "wf");
    }

    #[test]
    fn page_size_flows_into_bundle_meta() {
        let cfg = MapperConfig {
            page_size: 65536,
            ..Default::default()
        };
        let mapper = Mapper::with_config("wf", cfg);
        assert_eq!(mapper.bundle().meta.page_size, 65536);
    }
}
