//! The Input Parser: user-provided configuration for the Data Semantic
//! Mapper.
//!
//! The paper: "This component reads the user-provided configuration and
//! parameters for initialization. For example, the location to store the
//! recorded statistics, the page size to record, the number of I/O
//! operations to skip, and whether to turn on/off I/O tracing. This
//! flexibility allows users to adjust the data collection granularity,
//! reducing storage overhead based on their analysis needs."

use std::fmt;

/// Parse errors from the key=value configuration format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending line.
    pub line: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad config line {:?}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Mapper configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapperConfig {
    /// Where to store recorded statistics (informational; callers decide
    /// when to actually write the JSONL bundle).
    pub output: String,
    /// Page size used when the analyzer buckets file addresses into regions.
    pub page_size: u64,
    /// Number of leading I/O operations per file to skip before tracing
    /// begins (warm-up exclusion).
    pub skip_ops: u64,
    /// Whether to record individual time-sensitive I/O operations (VFD
    /// records). Off → constant storage overhead: only per-file statistics
    /// and object records are kept.
    pub trace_io: bool,
    /// Whether to record object-level (VOL) semantics.
    pub trace_vol: bool,
}

impl Default for MapperConfig {
    fn default() -> Self {
        Self {
            output: "dayu_trace.jsonl".to_owned(),
            page_size: 4096,
            skip_ops: 0,
            trace_io: true,
            trace_vol: true,
        }
    }
}

impl MapperConfig {
    /// Parses `key=value` lines (`#` comments and blank lines ignored).
    ///
    /// Recognized keys: `output`, `page_size`, `skip_ops`, `trace_io`
    /// (`on`/`off`/`true`/`false`), `trace_vol`.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = MapperConfig::default();
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: raw.to_owned(),
                    reason: "expected key=value".into(),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let bad = |reason: &str| ConfigError {
                line: raw.to_owned(),
                reason: reason.to_owned(),
            };
            match key {
                "output" => cfg.output = value.to_owned(),
                "page_size" => {
                    cfg.page_size = value
                        .parse()
                        .map_err(|_| bad("page_size must be an integer"))?;
                    if cfg.page_size == 0 {
                        return Err(bad("page_size must be positive"));
                    }
                }
                "skip_ops" => {
                    cfg.skip_ops = value
                        .parse()
                        .map_err(|_| bad("skip_ops must be an integer"))?
                }
                "trace_io" => {
                    cfg.trace_io =
                        parse_bool(value).ok_or_else(|| bad("trace_io must be on/off"))?
                }
                "trace_vol" => {
                    cfg.trace_vol =
                        parse_bool(value).ok_or_else(|| bad("trace_vol must be on/off"))?
                }
                _ => return Err(bad("unknown key")),
            }
        }
        Ok(cfg)
    }
}

fn parse_bool(v: &str) -> Option<bool> {
    match v.to_ascii_lowercase().as_str() {
        "on" | "true" | "1" | "yes" => Some(true),
        "off" | "false" | "0" | "no" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = MapperConfig::default();
        assert_eq!(c.page_size, 4096);
        assert!(c.trace_io);
        assert!(c.trace_vol);
        assert_eq!(c.skip_ops, 0);
    }

    #[test]
    fn parse_full_config() {
        let c = MapperConfig::parse(
            "# DaYu config\n\
             output = /tmp/run1.jsonl\n\
             page_size = 65536\n\
             skip_ops = 10\n\
             trace_io = off\n\
             trace_vol = on\n\
             \n",
        )
        .unwrap();
        assert_eq!(c.output, "/tmp/run1.jsonl");
        assert_eq!(c.page_size, 65536);
        assert_eq!(c.skip_ops, 10);
        assert!(!c.trace_io);
        assert!(c.trace_vol);
    }

    #[test]
    fn parse_bool_variants() {
        for v in ["on", "true", "1", "yes", "ON", "True"] {
            assert!(
                MapperConfig::parse(&format!("trace_io={v}"))
                    .unwrap()
                    .trace_io
            );
        }
        for v in ["off", "false", "0", "no"] {
            assert!(
                !MapperConfig::parse(&format!("trace_io={v}"))
                    .unwrap()
                    .trace_io
            );
        }
    }

    #[test]
    fn parse_errors() {
        assert!(MapperConfig::parse("nonsense").is_err());
        assert!(MapperConfig::parse("unknown_key=1").is_err());
        assert!(MapperConfig::parse("page_size=abc").is_err());
        assert!(MapperConfig::parse("page_size=0").is_err());
        assert!(MapperConfig::parse("trace_io=maybe").is_err());
        let e = MapperConfig::parse("page_size=zero").unwrap_err();
        assert!(e.to_string().contains("page_size"));
    }

    #[test]
    fn empty_config_is_defaults() {
        assert_eq!(MapperConfig::parse("").unwrap(), MapperConfig::default());
        assert_eq!(
            MapperConfig::parse("# only comments\n\n").unwrap(),
            MapperConfig::default()
        );
    }
}
