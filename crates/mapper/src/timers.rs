//! Component self-timing for the mapper's overhead breakdown (Fig. 10).
//!
//! Each of the three mapper components accumulates the wall time it spends
//! on the application's critical path, so the evaluation can report the
//! breakdown the paper shows: Characteristic Mapper dominating in I/O-heavy
//! runs, Access Tracker dominating in object-churn-heavy corner cases.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The three components of the Data Semantic Mapper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Configuration reading.
    InputParser,
    /// Interception of data accesses and I/O.
    AccessTracker,
    /// Joining data objects with their I/O.
    CharacteristicMapper,
}

/// Wall-time accumulators per component (nanoseconds).
#[derive(Debug, Default)]
pub struct ComponentTimers {
    input_parser_ns: AtomicU64,
    access_tracker_ns: AtomicU64,
    characteristic_mapper_ns: AtomicU64,
}

impl ComponentTimers {
    /// Adds `nanos` to a component's total.
    pub fn add(&self, c: Component, nanos: u64) {
        self.counter(c).fetch_add(nanos, Ordering::Relaxed);
    }

    /// Times `f`, charging its duration to `c`.
    pub fn time<R>(&self, c: Component, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(c, t0.elapsed().as_nanos() as u64);
        r
    }

    fn counter(&self, c: Component) -> &AtomicU64 {
        match c {
            Component::InputParser => &self.input_parser_ns,
            Component::AccessTracker => &self.access_tracker_ns,
            Component::CharacteristicMapper => &self.characteristic_mapper_ns,
        }
    }

    /// Nanoseconds charged to a component so far.
    pub fn get(&self, c: Component) -> u64 {
        self.counter(c).load(Ordering::Relaxed)
    }

    /// Total mapper time across components.
    pub fn total_ns(&self) -> u64 {
        self.get(Component::InputParser)
            + self.get(Component::AccessTracker)
            + self.get(Component::CharacteristicMapper)
    }

    /// `(input_parser, access_tracker, characteristic_mapper)` fractions of
    /// the total, each in `[0, 1]` (zeros when nothing was recorded).
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.total_ns() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.get(Component::InputParser) as f64 / total,
            self.get(Component::AccessTracker) as f64 / total,
            self.get(Component::CharacteristicMapper) as f64 / total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_breakdown() {
        let t = ComponentTimers::default();
        t.add(Component::InputParser, 100);
        t.add(Component::AccessTracker, 300);
        t.add(Component::CharacteristicMapper, 600);
        assert_eq!(t.total_ns(), 1000);
        let (ip, at, cm) = t.breakdown();
        assert!((ip - 0.1).abs() < 1e-12);
        assert!((at - 0.3).abs() < 1e-12);
        assert!((cm - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let t = ComponentTimers::default();
        assert_eq!(t.breakdown(), (0.0, 0.0, 0.0));
        assert_eq!(t.total_ns(), 0);
    }

    #[test]
    fn time_charges_elapsed() {
        let t = ComponentTimers::default();
        let out = t.time(Component::AccessTracker, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert_eq!(out, 499_500);
        assert!(t.get(Component::AccessTracker) > 0);
        assert_eq!(t.get(Component::InputParser), 0);
    }

    #[test]
    fn thread_safe_accumulation() {
        let t = ComponentTimers::default();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.add(Component::CharacteristicMapper, 1);
                    }
                });
            }
        });
        assert_eq!(t.get(Component::CharacteristicMapper), 4000);
    }
}
