//! The VFD profiler: low-level half of the Access Tracker, plus the
//! per-operation half of the Characteristic Mapper.
//!
//! [`ProfilingVfd`] wraps any driver. Every operation is timed and folded
//! into per-file statistics (Access Tracker); when time-sensitive I/O
//! tracing is enabled, a full [`VfdRecord`] is emitted, attributed to the
//! data object currently published in the shared context (Characteristic
//! Mapper). The `skip_ops` configuration suppresses the first N records per
//! file, and disabling `trace_io` keeps only the constant-size statistics —
//! the storage/overhead trade-offs evaluated in Fig. 9c/9d.

use crate::config::MapperConfig;
use crate::state::MapperState;
use crate::timers::{Component, ComponentTimers};
use dayu_trace::context::SharedContext;
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::Clock;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_vfd::{BatchCompletion, BatchOp, BatchOpKind, Vfd};
use parking_lot::Mutex;
use std::sync::Arc;

/// Profiling wrapper driver (the DaYu VFD plugin).
pub struct ProfilingVfd<V> {
    inner: V,
    file: FileKey,
    state: Arc<Mutex<MapperState>>,
    ctx: SharedContext,
    clock: Arc<dyn Clock>,
    timers: Arc<ComponentTimers>,
    cfg: MapperConfig,
    data_ops_seen: u64,
}

impl<V: Vfd> ProfilingVfd<V> {
    pub(crate) fn new(
        inner: V,
        file: FileKey,
        state: Arc<Mutex<MapperState>>,
        ctx: SharedContext,
        clock: Arc<dyn Clock>,
        timers: Arc<ComponentTimers>,
        cfg: MapperConfig,
    ) -> Self {
        let p = Self {
            inner,
            file,
            state,
            ctx,
            clock,
            timers,
            cfg,
            data_ops_seen: 0,
        };
        p.record_lifecycle(IoKind::Open);
        p
    }

    fn task(&self) -> TaskKey {
        self.ctx.task().unwrap_or_else(|| TaskKey::new("main"))
    }

    fn record_lifecycle(&self, kind: IoKind) {
        if !self.cfg.trace_io {
            return;
        }
        let now = self.clock.now();
        let task = self.task();
        self.timers.time(Component::CharacteristicMapper, || {
            self.state.lock().vfd.push(VfdRecord {
                task,
                file: self.file.clone(),
                kind,
                offset: 0,
                len: 0,
                access: AccessType::Metadata,
                object: ObjectKey::file_metadata(),
                start: now,
                end: now,
            });
        });
    }

    fn record_data_op(
        &mut self,
        kind: IoKind,
        offset: u64,
        len: u64,
        access: AccessType,
        start: dayu_trace::time::Timestamp,
        end: dayu_trace::time::Timestamp,
    ) {
        let task = self.task();
        // Access Tracker: constant-size running statistics.
        self.timers.time(Component::AccessTracker, || {
            self.state
                .lock()
                .file_stats(&task, &self.file)
                .stats
                .record(kind, offset, len, access);
        });
        // Characteristic Mapper: time-sensitive record attributed to the
        // current data object from the shared context.
        self.data_ops_seen += 1;
        if !self.cfg.trace_io || self.data_ops_seen <= self.cfg.skip_ops {
            return;
        }
        self.timers.time(Component::CharacteristicMapper, || {
            let snap = self.ctx.snapshot();
            let object = snap.object.unwrap_or_else(ObjectKey::file_metadata);
            self.state.lock().vfd.push(VfdRecord {
                task,
                file: self.file.clone(),
                kind,
                offset,
                len,
                access,
                object,
                start,
                end,
            });
        });
    }
}

impl<V: Vfd> Vfd for ProfilingVfd<V> {
    fn read(&mut self, offset: u64, buf: &mut [u8], access: AccessType) -> dayu_vfd::Result<()> {
        let start = self.clock.now();
        self.inner.read(offset, buf, access)?;
        let end = self.clock.now();
        self.record_data_op(IoKind::Read, offset, buf.len() as u64, access, start, end);
        Ok(())
    }

    fn write(&mut self, offset: u64, data: &[u8], access: AccessType) -> dayu_vfd::Result<()> {
        let start = self.clock.now();
        self.inner.write(offset, data, access)?;
        let end = self.clock.now();
        self.record_data_op(IoKind::Write, offset, data.len() as u64, access, start, end);
        Ok(())
    }

    /// Batched submissions forward to the inner driver (so native batch
    /// dispatch is reached), then unfold into the same per-segment records
    /// the scalar path would emit — one logical record per raw extent, with
    /// batch-level timestamps bracketing the whole submission. Segments of a
    /// failed op beyond its completed prefix are not recorded, matching the
    /// scalar "failed ops are invisible" rule.
    fn submit(&mut self, batch: &mut [BatchOp]) -> Vec<BatchCompletion> {
        let start = self.clock.now();
        let completions = self.inner.submit(batch);
        let end = self.clock.now();
        for (op, c) in batch.iter().zip(completions.iter()) {
            let done = if c.result.is_ok() {
                op.segments.len()
            } else {
                c.segments_done as usize
            };
            let kind = match op.kind {
                BatchOpKind::Read => IoKind::Read,
                BatchOpKind::Write => IoKind::Write,
            };
            for (seg_offset, range) in op.segment_ranges().take(done) {
                self.record_data_op(kind, seg_offset, range.len() as u64, op.access, start, end);
            }
        }
        completions
    }

    fn eof(&self) -> u64 {
        self.inner.eof()
    }

    fn truncate(&mut self, eof: u64) -> dayu_vfd::Result<()> {
        self.inner.truncate(eof)?;
        self.record_lifecycle(IoKind::Truncate);
        Ok(())
    }

    fn flush(&mut self) -> dayu_vfd::Result<()> {
        self.inner.flush()?;
        self.record_lifecycle(IoKind::Flush);
        Ok(())
    }

    fn close(&mut self) -> dayu_vfd::Result<()> {
        self.inner.close()?;
        self.record_lifecycle(IoKind::Close);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::time::ManualClock;
    use dayu_vfd::MemVfd;

    fn setup(cfg: MapperConfig) -> (ProfilingVfd<MemVfd>, Arc<Mutex<MapperState>>, ManualClock) {
        let state = Arc::new(Mutex::new(MapperState::new("wf".into(), cfg.clone())));
        let ctx = SharedContext::new();
        ctx.set_task("t0");
        let clock = ManualClock::new();
        let p = ProfilingVfd::new(
            MemVfd::new(),
            FileKey::new("f.h5"),
            state.clone(),
            ctx,
            Arc::new(clock.clone()),
            Arc::new(ComponentTimers::default()),
            cfg,
        );
        (p, state, clock)
    }

    #[test]
    fn records_ops_with_object_attribution() {
        let (mut p, state, clock) = setup(MapperConfig::default());
        p.ctx.enter_object("/dset", AccessType::RawData);
        clock.advance(10);
        p.write(0, &[1; 64], AccessType::RawData).unwrap();
        p.ctx.exit_object();
        p.write(64, &[2; 16], AccessType::Metadata).unwrap();

        let s = state.lock();
        // Open + 2 data ops.
        assert_eq!(s.vfd.len(), 3);
        assert_eq!(s.vfd[0].kind, IoKind::Open);
        let d1 = &s.vfd[1];
        assert_eq!(d1.object, ObjectKey::new("/dset"));
        assert_eq!(d1.len, 64);
        assert_eq!(d1.access, AccessType::RawData);
        assert_eq!(d1.task, TaskKey::new("t0"));
        let d2 = &s.vfd[2];
        assert_eq!(d2.object, ObjectKey::file_metadata());
        assert_eq!(d2.access, AccessType::Metadata);
    }

    #[test]
    fn stats_always_collected_even_without_io_trace() {
        let cfg = MapperConfig {
            trace_io: false,
            ..Default::default()
        };
        let (mut p, state, _) = setup(cfg);
        p.write(0, &[0; 100], AccessType::RawData).unwrap();
        let mut buf = [0u8; 50];
        p.read(0, &mut buf, AccessType::RawData).unwrap();
        p.close().unwrap();

        let s = state.lock();
        assert!(s.vfd.is_empty(), "no time-sensitive records");
        drop(s);
        let mut s = state.lock();
        let rec = s.file_stats(&TaskKey::new("t0"), &FileKey::new("f.h5"));
        assert_eq!(rec.stats.write_ops, 1);
        assert_eq!(rec.stats.read_ops, 1);
        assert_eq!(rec.stats.bytes_written, 100);
    }

    #[test]
    fn skip_ops_suppresses_leading_records() {
        let cfg = MapperConfig {
            skip_ops: 2,
            ..Default::default()
        };
        let (mut p, state, _) = setup(cfg);
        for i in 0..5u64 {
            p.write(i * 8, &[0; 8], AccessType::RawData).unwrap();
        }
        let s = state.lock();
        let data_ops = s.vfd.iter().filter(|r| r.kind.moves_data()).count();
        assert_eq!(data_ops, 3, "first 2 skipped");
    }

    #[test]
    fn failed_ops_are_not_recorded() {
        let (mut p, state, _) = setup(MapperConfig::default());
        let mut buf = [0u8; 4];
        assert!(p.read(100, &mut buf, AccessType::RawData).is_err());
        let s = state.lock();
        assert_eq!(s.vfd.iter().filter(|r| r.kind.moves_data()).count(), 0);
    }

    #[test]
    fn timestamps_bracket_the_operation() {
        let (mut p, state, clock) = setup(MapperConfig::default());
        clock.advance(100);
        p.write(0, &[0; 8], AccessType::RawData).unwrap();
        let s = state.lock();
        let rec = s.vfd.iter().find(|r| r.kind == IoKind::Write).unwrap();
        assert_eq!(rec.start.nanos(), 100);
        assert_eq!(rec.end.nanos(), 100, "manual clock did not advance inside");
    }

    #[test]
    fn lifecycle_ops_traced() {
        let (mut p, state, _) = setup(MapperConfig::default());
        p.flush().unwrap();
        p.truncate(10).unwrap();
        p.close().unwrap();
        let kinds: Vec<IoKind> = state.lock().vfd.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![IoKind::Open, IoKind::Flush, IoKind::Truncate, IoKind::Close]
        );
    }

    #[test]
    fn batched_submit_records_one_record_per_segment() {
        let (mut p, state, _) = setup(MapperConfig::default());
        p.ctx.enter_object("/dset", AccessType::RawData);
        // One coalesced write op carrying three 8-byte segments, then a
        // coalesced read of the first two back.
        let mut w = BatchOp::write(0, 0, vec![1; 8], AccessType::RawData);
        w.append_write_segment(&[2; 8]);
        w.append_write_segment(&[3; 8]);
        let mut r = BatchOp::read(1, 0, 8, AccessType::RawData);
        r.append_read_segment(8);
        let mut batch = vec![w, r];
        let completions = p.submit(&mut batch);
        assert!(completions.iter().all(|c| c.result.is_ok()));
        p.ctx.exit_object();

        let s = state.lock();
        let data: Vec<&VfdRecord> = s.vfd.iter().filter(|r| r.kind.moves_data()).collect();
        assert_eq!(data.len(), 5, "3 write segments + 2 read segments");
        let offsets: Vec<(IoKind, u64, u64)> =
            data.iter().map(|r| (r.kind, r.offset, r.len)).collect();
        assert_eq!(
            offsets,
            vec![
                (IoKind::Write, 0, 8),
                (IoKind::Write, 8, 8),
                (IoKind::Write, 16, 8),
                (IoKind::Read, 0, 8),
                (IoKind::Read, 8, 8),
            ]
        );
        assert!(data.iter().all(|r| r.object == ObjectKey::new("/dset")));
        drop(s);
        let mut s = state.lock();
        let rec = s.file_stats(&TaskKey::new("t0"), &FileKey::new("f.h5"));
        assert_eq!(rec.stats.write_ops, 3);
        assert_eq!(rec.stats.read_ops, 2);
    }

    #[test]
    fn batched_submit_failed_op_segments_are_invisible() {
        let (mut p, state, _) = setup(MapperConfig::default());
        // Read past EOF fails; the write op before it completes.
        let mut batch = vec![
            BatchOp::write(0, 0, vec![9; 16], AccessType::RawData),
            BatchOp::read(1, 1 << 20, 8, AccessType::RawData),
        ];
        let completions = p.submit(&mut batch);
        assert!(completions[0].result.is_ok());
        assert!(completions[1].result.is_err());
        let s = state.lock();
        let data: Vec<&VfdRecord> = s.vfd.iter().filter(|r| r.kind.moves_data()).collect();
        assert_eq!(data.len(), 1, "only the completed write is recorded");
        assert_eq!(data[0].kind, IoKind::Write);
    }

    #[test]
    fn passthrough_data_integrity() {
        let (mut p, _, _) = setup(MapperConfig::default());
        p.write(0, b"hello", AccessType::RawData).unwrap();
        let mut buf = [0u8; 5];
        p.read(0, &mut buf, AccessType::RawData).unwrap();
        assert_eq!(&buf, b"hello");
        assert_eq!(p.eof(), 5);
    }
}
