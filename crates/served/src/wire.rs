//! The length-framed ingest wire protocol.
//!
//! Built on the shared [`dayu_trace::wire`] primitives (LEB128 varints,
//! length-prefixed byte strings, sanity caps), so the service enforces
//! the same bounds as every other DaYu format. One request, one
//! response, in order, per connection:
//!
//! ```text
//! request  := op:u8 body
//!   INGEST (0x01) := tenant:str digest:[u8;32] section:bytes
//!   STATS  (0x02) := tenant:str
//!   PING   (0x03) :=
//! response := tag:u8 body
//!   ACCEPTED    (0x00) := records:varint duplicate:u8
//!   THROTTLED   (0x01) := retry_after_ns:varint
//!   QUARANTINED (0x02) := sequence:varint offset:varint len:varint cause:str
//!   REJECTED    (0x03) := reason:str
//!   STATS       (0x04) := found:u8 [sections accepted duplicates
//!                          quarantined dropped retained nodes:varint
//!                          degraded:opt-str]
//!   PONG        (0x05) :=
//! ```
//!
//! Every field is length-framed with a cap, so a torn or hostile frame
//! fails with a structured `io::Error` instead of a huge allocation or a
//! hang; the digest lets the server detect payload corruption the `.dtb`
//! format itself (checksum-free by design) cannot.

use crate::quarantine::QuarantineReport;
use crate::service::{IngestStatus, TenantStats};
use dayu_trace::sha256::Digest;
use dayu_trace::wire::{
    bad, read_bytes, read_str, read_u8, read_varint, write_bytes, write_str, write_u8, write_varint,
};
use std::io::{self, BufRead, Write};

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit one encoded `.dtb` section.
    Ingest {
        /// Target workflow (tenant).
        tenant: String,
        /// Client-computed SHA-256 of `section`.
        digest: Digest,
        /// The encoded section payload.
        section: Vec<u8>,
    },
    /// Fetch a tenant's counters.
    Stats {
        /// The tenant to describe.
        tenant: String,
    },
    /// Liveness probe.
    Ping,
}

/// One server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ingest outcome.
    Ingest(IngestStatus),
    /// Stats outcome (`None` for an unknown tenant).
    Stats(Option<TenantStats>),
    /// Liveness answer.
    Pong,
}

const OP_INGEST: u8 = 0x01;
const OP_STATS: u8 = 0x02;
const OP_PING: u8 = 0x03;

const TAG_ACCEPTED: u8 = 0x00;
const TAG_THROTTLED: u8 = 0x01;
const TAG_QUARANTINED: u8 = 0x02;
const TAG_REJECTED: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
const TAG_PONG: u8 = 0x05;

/// Writes one request frame.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    match req {
        Request::Ingest {
            tenant,
            digest,
            section,
        } => {
            write_u8(w, OP_INGEST)?;
            write_str(w, tenant)?;
            w.write_all(digest)?;
            write_bytes(w, section)?;
        }
        Request::Stats { tenant } => {
            write_u8(w, OP_STATS)?;
            write_str(w, tenant)?;
        }
        Request::Ping => write_u8(w, OP_PING)?,
    }
    w.flush()
}

/// Reads one request frame. `Ok(None)` is a clean end-of-stream (the
/// client closed between requests).
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    let op = match read_u8(r) {
        Ok(op) => op,
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    };
    match op {
        OP_INGEST => {
            let tenant = read_str(r, "tenant")?;
            let mut digest = [0u8; 32];
            r.read_exact(&mut digest)?;
            let section = read_bytes(r, "section")?;
            Ok(Some(Request::Ingest {
                tenant,
                digest,
                section,
            }))
        }
        OP_STATS => Ok(Some(Request::Stats {
            tenant: read_str(r, "tenant")?,
        })),
        OP_PING => Ok(Some(Request::Ping)),
        other => Err(bad(format!("unknown request op {other:#04x}"))),
    }
}

/// Writes one response frame.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    match resp {
        Response::Ingest(IngestStatus::Accepted { records, duplicate }) => {
            write_u8(w, TAG_ACCEPTED)?;
            write_varint(w, *records as u64)?;
            write_u8(w, u8::from(*duplicate))?;
        }
        Response::Ingest(IngestStatus::Throttled { retry_after_ns }) => {
            write_u8(w, TAG_THROTTLED)?;
            write_varint(w, *retry_after_ns)?;
        }
        Response::Ingest(IngestStatus::Quarantined(report)) => {
            write_u8(w, TAG_QUARANTINED)?;
            write_varint(w, report.sequence)?;
            write_varint(w, report.offset)?;
            write_varint(w, report.len)?;
            write_str(w, &report.cause.to_string())?;
        }
        Response::Ingest(IngestStatus::Rejected { reason }) => {
            write_u8(w, TAG_REJECTED)?;
            write_str(w, reason)?;
        }
        Response::Stats(stats) => {
            write_u8(w, TAG_STATS)?;
            match stats {
                None => write_u8(w, 0)?,
                Some(s) => {
                    write_u8(w, 1)?;
                    write_varint(w, s.sections)?;
                    write_varint(w, s.accepted)?;
                    write_varint(w, s.duplicates)?;
                    write_varint(w, s.quarantined)?;
                    write_varint(w, s.dropped)?;
                    write_varint(w, s.retained_bytes as u64)?;
                    write_varint(w, s.nodes as u64)?;
                    match &s.degraded {
                        None => write_u8(w, 0)?,
                        Some(reason) => {
                            write_u8(w, 1)?;
                            write_str(w, reason)?;
                        }
                    }
                }
            }
        }
        Response::Pong => write_u8(w, TAG_PONG)?,
    }
    w.flush()
}

/// Reads one response frame.
///
/// A `Quarantined` decodes into a [`QuarantineReport`] with the tenant
/// and digest left for the caller to fill in (the client knows both; the
/// wire does not repeat them).
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    match read_u8(r)? {
        TAG_ACCEPTED => Ok(Response::Ingest(IngestStatus::Accepted {
            records: read_varint(r)? as usize,
            duplicate: read_u8(r)? != 0,
        })),
        TAG_THROTTLED => Ok(Response::Ingest(IngestStatus::Throttled {
            retry_after_ns: read_varint(r)?,
        })),
        TAG_QUARANTINED => {
            let sequence = read_varint(r)?;
            let offset = read_varint(r)?;
            let len = read_varint(r)?;
            let cause = read_str(r, "quarantine cause")?;
            Ok(Response::Ingest(IngestStatus::Quarantined(Box::new(
                QuarantineReport {
                    tenant: String::new(),
                    sequence,
                    offset,
                    len,
                    digest: [0u8; 32],
                    cause: crate::quarantine::QuarantineCause::Malformed(cause),
                },
            ))))
        }
        TAG_REJECTED => Ok(Response::Ingest(IngestStatus::Rejected {
            reason: read_str(r, "reject reason")?,
        })),
        TAG_STATS => match read_u8(r)? {
            0 => Ok(Response::Stats(None)),
            1 => {
                let mut s = TenantStats {
                    sections: read_varint(r)?,
                    accepted: read_varint(r)?,
                    duplicates: read_varint(r)?,
                    quarantined: read_varint(r)?,
                    dropped: read_varint(r)?,
                    retained_bytes: read_varint(r)? as usize,
                    nodes: read_varint(r)? as usize,
                    degraded: None,
                };
                if read_u8(r)? != 0 {
                    s.degraded = Some(read_str(r, "degraded reason")?);
                }
                Ok(Response::Stats(Some(s)))
            }
            other => Err(bad(format!("bad stats presence tag {other:#04x}"))),
        },
        TAG_PONG => Ok(Response::Pong),
        other => Err(bad(format!("unknown response tag {other:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quarantine::QuarantineCause;
    use std::io::Cursor;

    fn round_trip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, req).unwrap();
        read_request(&mut Cursor::new(buf)).unwrap().unwrap()
    }

    fn round_trip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, resp).unwrap();
        read_response(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ingest {
                tenant: "wf/α".into(),
                digest: [7u8; 32],
                section: vec![1, 2, 3],
            },
            Request::Stats {
                tenant: "wf-2".into(),
            },
            Request::Ping,
        ] {
            assert_eq!(round_trip_request(&req), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ingest(IngestStatus::Accepted {
                records: 12,
                duplicate: true,
            }),
            Response::Ingest(IngestStatus::Throttled {
                retry_after_ns: 1_500_000,
            }),
            Response::Ingest(IngestStatus::Rejected {
                reason: "tenant byte budget exhausted".into(),
            }),
            Response::Stats(None),
            Response::Stats(Some(TenantStats {
                sections: 9,
                accepted: 7,
                duplicates: 1,
                quarantined: 1,
                dropped: 0,
                retained_bytes: 4096,
                nodes: 17,
                degraded: Some("quarantined sections".into()),
            })),
            Response::Pong,
        ] {
            assert_eq!(round_trip_response(&resp), resp);
        }
    }

    #[test]
    fn quarantine_response_carries_offset_and_cause_text() {
        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::Ingest(IngestStatus::Quarantined(Box::new(QuarantineReport {
                tenant: "wf".into(),
                sequence: 3,
                offset: 99,
                len: 1000,
                digest: [1u8; 32],
                cause: QuarantineCause::Truncated,
            }))),
        )
        .unwrap();
        match read_response(&mut Cursor::new(buf)).unwrap() {
            Response::Ingest(IngestStatus::Quarantined(r)) => {
                assert_eq!(r.sequence, 3);
                assert_eq!(r.offset, 99);
                assert_eq!(r.len, 1000);
                assert_eq!(
                    r.cause,
                    QuarantineCause::Malformed("section truncated".into())
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn truncated_and_garbage_frames_are_structured_errors() {
        let mut buf = Vec::new();
        write_request(
            &mut buf,
            &Request::Ingest {
                tenant: "wf".into(),
                digest: [0u8; 32],
                section: vec![9; 100],
            },
        )
        .unwrap();
        for cut in 1..buf.len() {
            let err = match read_request(&mut Cursor::new(buf[..cut].to_vec())) {
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Ok(None) => panic!("truncated frame read as clean EOF at cut {cut}"),
                Err(e) => e,
            };
            let _ = err.to_string();
        }
        assert!(read_request(&mut Cursor::new(vec![0xEEu8])).is_err());
        assert!(read_response(&mut Cursor::new(vec![0xEEu8])).is_err());
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert_eq!(read_request(&mut Cursor::new(Vec::new())).unwrap(), None);
    }
}
