//! Per-tenant and service-wide resource budgets.
//!
//! Every limit is a *policy*, enforced by [`crate::Served`]: the token
//! bucket turns a section-rate budget into backpressure (`Throttled` with
//! a retry hint), the byte and node budgets turn memory pressure into
//! load-shedding (oldest-idle tenant eviction, then rejection), and the
//! idle timeout bounds how long a silent tenant may pin state.

use dayu_trace::time::Timestamp;

/// Resource limits for the ingest service. [`Budgets::default`] is sized
/// for tests and small deployments; production callers override fields.
#[derive(Clone, Debug)]
pub struct Budgets {
    /// Most tenants resident at once; admitting one more evicts the
    /// oldest-idle tenant first.
    pub max_tenants: usize,
    /// Retained record bytes per tenant (see
    /// `PartialGraph::retained_bytes`); sections past it are shed.
    pub max_bytes_per_tenant: usize,
    /// Retained record bytes across all tenants; exceeding it evicts
    /// oldest-idle tenants until back under.
    pub max_bytes_total: usize,
    /// FTG node budget per tenant; a graph past it stops growing and the
    /// tenant degrades.
    pub max_graph_nodes: usize,
    /// Sustained sections/second each tenant may submit.
    pub sections_per_sec: f64,
    /// Burst capacity of the rate limiter, in sections.
    pub burst: f64,
    /// A tenant silent this long is evictable by the watchdog.
    pub idle_evict_ns: u64,
}

impl Default for Budgets {
    fn default() -> Self {
        Self {
            max_tenants: 64,
            max_bytes_per_tenant: 64 << 20,
            max_bytes_total: 512 << 20,
            max_graph_nodes: 100_000,
            sections_per_sec: 1000.0,
            burst: 100.0,
            idle_evict_ns: 300_000_000_000, // 5 minutes
        }
    }
}

impl Budgets {
    /// A permissive configuration for benchmarks: no practical limits.
    pub fn unlimited() -> Self {
        Self {
            max_tenants: usize::MAX,
            max_bytes_per_tenant: usize::MAX,
            max_bytes_total: usize::MAX,
            max_graph_nodes: usize::MAX,
            sections_per_sec: f64::INFINITY,
            burst: f64::INFINITY,
            idle_evict_ns: u64::MAX,
        }
    }
}

/// A token bucket over the service clock: `sections_per_sec` refill,
/// `burst` capacity. Deterministic under a `ManualClock`.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    tokens: f64,
    capacity: f64,
    per_ns: f64,
    last: Timestamp,
}

impl TokenBucket {
    /// A full bucket observed at `now`.
    pub fn new(sections_per_sec: f64, burst: f64, now: Timestamp) -> Self {
        Self {
            tokens: burst,
            capacity: burst,
            per_ns: sections_per_sec / 1e9,
            last: now,
        }
    }

    /// Takes one token, refilling for the time elapsed since the last
    /// call. On an empty bucket returns `Err(retry_after_ns)` — the wait
    /// after which one token will be available.
    pub fn try_take(&mut self, now: Timestamp) -> Result<(), u64> {
        if self.per_ns.is_infinite() || self.capacity.is_infinite() {
            return Ok(());
        }
        let elapsed = now.since(self.last) as f64;
        self.last = now;
        self.tokens = (self.tokens + elapsed * self.per_ns).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if self.per_ns <= 0.0 {
            Err(u64::MAX)
        } else {
            Err(((1.0 - self.tokens) / self.per_ns).ceil() as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::time::{Clock, ManualClock};

    #[test]
    fn bucket_enforces_rate_and_refills() {
        let clock = ManualClock::new();
        // 2 sections/sec, burst of 2.
        let mut b = TokenBucket::new(2.0, 2.0, clock.now());
        assert!(b.try_take(clock.now()).is_ok());
        assert!(b.try_take(clock.now()).is_ok());
        let retry = b.try_take(clock.now()).unwrap_err();
        // One token refills in 0.5 s.
        assert_eq!(retry, 500_000_000);
        clock.advance(retry);
        assert!(b.try_take(clock.now()).is_ok());
        assert!(b.try_take(clock.now()).is_err());
    }

    #[test]
    fn bucket_caps_at_burst() {
        let clock = ManualClock::new();
        let mut b = TokenBucket::new(1000.0, 3.0, clock.now());
        clock.advance(60_000_000_000);
        for _ in 0..3 {
            assert!(b.try_take(clock.now()).is_ok());
        }
        assert!(b.try_take(clock.now()).is_err());
    }

    #[test]
    fn unlimited_budgets_never_throttle() {
        let clock = ManualClock::new();
        let budgets = Budgets::unlimited();
        let mut b = TokenBucket::new(budgets.sections_per_sec, budgets.burst, clock.now());
        for _ in 0..10_000 {
            assert!(b.try_take(clock.now()).is_ok());
        }
    }

    #[test]
    fn zero_rate_bucket_reports_unbounded_wait() {
        let clock = ManualClock::new();
        let mut b = TokenBucket::new(0.0, 0.0, clock.now());
        assert_eq!(b.try_take(clock.now()).unwrap_err(), u64::MAX);
    }
}
