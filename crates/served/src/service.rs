//! The multi-tenant ingest service core (transport-free).
//!
//! [`Served`] owns one [`PartialGraph`] per workflow (tenant) and feeds it
//! encoded `.dtb` sections through a guarded pipeline:
//!
//! 1. **Admission** — unknown tenants are admitted, evicting the
//!    oldest-idle tenant when the tenant table is full.
//! 2. **Backpressure** — a per-tenant token bucket converts the
//!    section-rate budget into [`IngestStatus::Throttled`] with a retry
//!    hint instead of unbounded queueing.
//! 3. **Quarantine** — the payload digest is verified and the decode runs
//!    inside a panic barrier; anything wrong produces a structured
//!    [`QuarantineReport`] and the tenant keeps serving snapshots from
//!    its last good graph.
//! 4. **Load-shedding** — per-tenant byte and node budgets reject
//!    sections once exhausted; the service-wide byte budget evicts
//!    oldest-idle tenants.
//!
//! A [`watchdog`](Served::watchdog) pass evicts idle tenants and surfaces
//! every degraded tenant as an analyzer
//! [`Finding::DegradedIngest`], which the advisor turns into a
//! re-ingest recommendation.

use crate::budget::{Budgets, TokenBucket};
use crate::quarantine::{QuarantineCause, QuarantineReport};
use dayu_analyzer::{Finding, Graph, PartialGraph, SdgOptions};
use dayu_trace::sha256::{sha256, Digest};
use dayu_trace::time::{Clock, RealClock, Timestamp};
use dayu_trace::TraceBundle;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};

/// Refresh the cached FTG node count every this many accepted sections;
/// between refreshes the node budget is enforced against the last count.
const NODE_CHECK_EVERY: u64 = 16;

/// Most quarantine reports retained in the service-wide log.
const QUARANTINE_LOG_CAP: usize = 1024;

/// Outcome of one section submission.
#[derive(Clone, Debug, PartialEq)]
pub enum IngestStatus {
    /// The section was absorbed into the tenant's graph (or was an exact
    /// duplicate of one that already was, which is success for a
    /// retrying client).
    Accepted {
        /// Data records the section carried.
        records: usize,
        /// Whether this exact section (by digest) had been absorbed
        /// before.
        duplicate: bool,
    },
    /// The tenant is over its section-rate budget; retry after the hint.
    Throttled {
        /// Nanoseconds after which one submission will be admitted.
        retry_after_ns: u64,
    },
    /// The section was corrupt and has been quarantined; the tenant's
    /// graph is unchanged.
    Quarantined(Box<QuarantineReport>),
    /// The section was valid but the tenant is out of budget (bytes or
    /// graph nodes); the section was shed.
    Rejected {
        /// Which budget was exhausted.
        reason: String,
    },
}

/// Per-tenant counters, for operators and the watchdog.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Sections that arrived (including bad ones).
    pub sections: u64,
    /// Sections absorbed into the graph.
    pub accepted: u64,
    /// Exact duplicates dropped by digest.
    pub duplicates: u64,
    /// Sections quarantined as corrupt.
    pub quarantined: u64,
    /// Sections shed by throttling or budget rejection.
    pub dropped: u64,
    /// Approximate retained record bytes.
    pub retained_bytes: usize,
    /// FTG nodes at the last refresh.
    pub nodes: usize,
    /// Why the tenant is degraded, if it is.
    pub degraded: Option<String>,
}

struct Tenant {
    graph: PartialGraph,
    bucket: TokenBucket,
    last_seen: Timestamp,
    stats: TenantStats,
}

impl Tenant {
    fn new(budgets: &Budgets, now: Timestamp) -> Self {
        Self {
            graph: PartialGraph::new(),
            bucket: TokenBucket::new(budgets.sections_per_sec, budgets.burst, now),
            last_seen: now,
            stats: TenantStats::default(),
        }
    }

    fn degrade(&mut self, reason: &str) {
        if self.stats.degraded.is_none() {
            self.stats.degraded = Some(reason.to_owned());
        }
    }
}

#[derive(Default)]
struct State {
    tenants: HashMap<String, Tenant>,
    quarantine_log: Vec<QuarantineReport>,
    evicted: u64,
}

/// The transport-free ingest service. Thread-safe: the TCP front-end
/// shares one instance across connections via [`Arc`].
pub struct Served {
    budgets: Budgets,
    clock: Arc<dyn Clock>,
    state: Mutex<State>,
}

impl Served {
    /// A service on the real clock.
    pub fn new(budgets: Budgets) -> Self {
        Self::with_clock(budgets, Arc::new(RealClock::new()))
    }

    /// A service on an explicit clock (deterministic tests use
    /// [`dayu_trace::ManualClock`]).
    pub fn with_clock(budgets: Budgets, clock: Arc<dyn Clock>) -> Self {
        Self {
            budgets,
            clock,
            state: Mutex::new(State::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A panicking ingest never leaves partial tenant state behind
        // (the graph mutates only after every check passes), so a
        // poisoned lock is safe to keep using.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Submits one encoded `.dtb` section for `tenant`. `declared` is the
    /// client's digest of the payload (from the wire frame); `None` means
    /// the transport did not carry one and only the self-computed digest
    /// is used (for dedup).
    pub fn ingest(&self, tenant: &str, payload: &[u8], declared: Option<Digest>) -> IngestStatus {
        let now = self.clock.now();
        let mut state = self.lock();
        self.admit(&mut state, tenant, now);
        let computed = sha256(payload);

        // Everything below needs the tenant entry; admission guarantees
        // it exists.
        let t = state.tenants.get_mut(tenant).expect("admitted above");
        t.last_seen = now;
        t.stats.sections += 1;
        let sequence = t.stats.sections;

        if let Err(retry_after_ns) = t.bucket.try_take(now) {
            t.stats.dropped += 1;
            return IngestStatus::Throttled { retry_after_ns };
        }

        if let Some(declared) = declared {
            if declared != computed {
                let report = QuarantineReport {
                    tenant: tenant.to_owned(),
                    sequence,
                    offset: 0,
                    len: payload.len() as u64,
                    digest: computed,
                    cause: QuarantineCause::DigestMismatch { declared, computed },
                };
                return Self::quarantine(&mut state, tenant, report);
            }
        }

        let bundle = match Self::decode_guarded(payload) {
            Ok(bundle) => bundle,
            Err((offset, cause)) => {
                let report = QuarantineReport {
                    tenant: tenant.to_owned(),
                    sequence,
                    offset,
                    len: payload.len() as u64,
                    digest: computed,
                    cause,
                };
                return Self::quarantine(&mut state, tenant, report);
            }
        };

        let t = state.tenants.get_mut(tenant).expect("admitted above");
        if t.stats.retained_bytes >= self.budgets.max_bytes_per_tenant {
            t.stats.dropped += 1;
            t.degrade("byte budget exhausted");
            return IngestStatus::Rejected {
                reason: "tenant byte budget exhausted".to_owned(),
            };
        }
        if t.stats.nodes >= self.budgets.max_graph_nodes {
            t.stats.dropped += 1;
            t.degrade("graph node budget exhausted");
            return IngestStatus::Rejected {
                reason: "tenant graph node budget exhausted".to_owned(),
            };
        }

        let records = bundle.vfd.len() + bundle.vol.len() + bundle.files.len();
        if !t.graph.absorb_unique(computed, &bundle) {
            t.stats.duplicates += 1;
            return IngestStatus::Accepted {
                records,
                duplicate: true,
            };
        }
        t.stats.accepted += 1;
        t.stats.retained_bytes = t.graph.retained_bytes();
        if t.stats.nodes == 0 || t.stats.accepted.is_multiple_of(NODE_CHECK_EVERY) {
            t.stats.nodes = t.graph.snapshot_ftg().nodes.len();
        }

        self.shed_global(&mut state, tenant);
        IngestStatus::Accepted {
            records,
            duplicate: false,
        }
    }

    /// Evicts idle tenants and reports every degraded tenant as a
    /// [`Finding::DegradedIngest`] for the advisor. Run it periodically;
    /// the TCP front-end calls it between accepts.
    pub fn watchdog(&self) -> Vec<Finding> {
        let now = self.clock.now();
        let mut state = self.lock();
        let idle: Vec<String> = state
            .tenants
            .iter()
            .filter(|(_, t)| now.since(t.last_seen) >= self.budgets.idle_evict_ns)
            .map(|(name, _)| name.clone())
            .collect();
        for name in idle {
            state.tenants.remove(&name);
            state.evicted += 1;
        }
        let mut names: Vec<&String> = state.tenants.keys().collect();
        names.sort();
        names
            .into_iter()
            .filter_map(|name| {
                let t = &state.tenants[name];
                let reason = t.stats.degraded.clone()?;
                Some(Finding::DegradedIngest {
                    workflow: name.clone(),
                    reason,
                    quarantined: t.stats.quarantined,
                    dropped: t.stats.dropped,
                })
            })
            .collect()
    }

    /// Snapshot of a tenant's File-Task Graph (its last good graph).
    pub fn snapshot_ftg(&self, tenant: &str) -> Option<Graph> {
        let mut state = self.lock();
        let t = state.tenants.get_mut(tenant)?;
        let g = t.graph.snapshot_ftg();
        t.stats.nodes = g.nodes.len();
        Some(g)
    }

    /// Snapshot of a tenant's Semantic Dataflow Graph.
    pub fn snapshot_sdg(&self, tenant: &str, opts: &SdgOptions) -> Option<Graph> {
        let mut state = self.lock();
        Some(state.tenants.get_mut(tenant)?.graph.snapshot_sdg(opts))
    }

    /// The merged bundle a tenant's snapshots are built from.
    pub fn bundle(&self, tenant: &str) -> Option<TraceBundle> {
        let state = self.lock();
        Some(state.tenants.get(tenant)?.graph.to_bundle())
    }

    /// A tenant's counters.
    pub fn stats(&self, tenant: &str) -> Option<TenantStats> {
        let state = self.lock();
        Some(state.tenants.get(tenant)?.stats.clone())
    }

    /// Resident tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let state = self.lock();
        let mut names: Vec<String> = state.tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// The service-wide quarantine log, oldest first (bounded; oldest
    /// entries are dropped past the cap).
    pub fn quarantine_log(&self) -> Vec<QuarantineReport> {
        self.lock().quarantine_log.clone()
    }

    /// Tenants evicted so far (idle timeout or byte-budget shedding).
    pub fn evicted(&self) -> u64 {
        self.lock().evicted
    }

    /// Approximate retained record bytes across all tenants.
    pub fn total_retained_bytes(&self) -> usize {
        let state = self.lock();
        state.tenants.values().map(|t| t.stats.retained_bytes).sum()
    }

    /// Admits `tenant`, evicting the oldest-idle tenant if the table is
    /// full.
    fn admit(&self, state: &mut State, tenant: &str, now: Timestamp) {
        if state.tenants.contains_key(tenant) {
            return;
        }
        while state.tenants.len() >= self.budgets.max_tenants.max(1) {
            if !Self::evict_lru(state, None) {
                break;
            }
        }
        state
            .tenants
            .insert(tenant.to_owned(), Tenant::new(&self.budgets, now));
    }

    /// Sheds oldest-idle tenants (never `keep`) until the service-wide
    /// byte budget is respected.
    fn shed_global(&self, state: &mut State, keep: &str) {
        loop {
            let total: usize = state.tenants.values().map(|t| t.stats.retained_bytes).sum();
            if total <= self.budgets.max_bytes_total {
                return;
            }
            if !Self::evict_lru(state, Some(keep)) {
                return;
            }
        }
    }

    /// Evicts the least-recently-active tenant (ties broken by name for
    /// determinism), skipping `keep`. Returns whether anything was
    /// evicted.
    fn evict_lru(state: &mut State, keep: Option<&str>) -> bool {
        let victim = state
            .tenants
            .iter()
            .filter(|(name, _)| Some(name.as_str()) != keep)
            .min_by(|(an, a), (bn, b)| a.last_seen.cmp(&b.last_seen).then_with(|| an.cmp(bn)))
            .map(|(name, _)| name.clone());
        match victim {
            Some(name) => {
                state.tenants.remove(&name);
                state.evicted += 1;
                true
            }
            None => false,
        }
    }

    fn quarantine(state: &mut State, tenant: &str, report: QuarantineReport) -> IngestStatus {
        let t = state.tenants.get_mut(tenant).expect("admitted above");
        t.stats.quarantined += 1;
        t.degrade("quarantined sections");
        if state.quarantine_log.len() >= QUARANTINE_LOG_CAP {
            state.quarantine_log.remove(0);
        }
        state.quarantine_log.push(report.clone());
        IngestStatus::Quarantined(Box::new(report))
    }

    /// Decodes a section behind a panic barrier. The decoder is hardened
    /// against corrupt input and should never panic; if it does anyway,
    /// the panic becomes a quarantine cause instead of taking down the
    /// service.
    fn decode_guarded(payload: &[u8]) -> Result<TraceBundle, (u64, QuarantineCause)> {
        match catch_unwind(AssertUnwindSafe(|| dayu_trace::decode_section(payload))) {
            Ok(Ok(bundle)) => Ok(bundle),
            Ok(Err(e)) => {
                let cause = if e.is_truncation() {
                    QuarantineCause::Truncated
                } else {
                    QuarantineCause::Malformed(e.cause.to_string())
                };
                Err((e.offset, cause))
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                Err((0, QuarantineCause::DecoderPanic(msg)))
            }
        }
    }
}
