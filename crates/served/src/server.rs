//! TCP front-end and retrying client for the ingest service.
//!
//! The server is deliberately plain `std::net`: one acceptor thread, one
//! thread per connection, read/write timeouts on every socket so a stalled
//! peer can never pin a thread. A connection idle past the read timeout is
//! dropped — recovery is the *client's* job, and [`IngestClient`] does it
//! with the same deterministic-jitter [`RetryPolicy`] the workflow runner
//! uses for task retries. Resubmitting after an ambiguous failure is safe:
//! the service deduplicates sections by digest, so ingest is idempotent.

use crate::service::{IngestStatus, Served, TenantStats};
use crate::wire::{read_request, read_response, write_request, write_response, Request, Response};
use dayu_vfd::RetryPolicy;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket and lifecycle knobs for [`Server`].
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// A connection that sends nothing for this long is dropped.
    pub read_timeout: Duration,
    /// A peer that accepts nothing for this long is dropped.
    pub write_timeout: Duration,
    /// Stop serving after this long with no new connections
    /// (`None` = run until [`Server::shutdown`]).
    pub idle_shutdown: Option<Duration>,
    /// How often the acceptor runs the service watchdog (idle-tenant
    /// eviction, degradation marking).
    pub watchdog_interval: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_shutdown: None,
            watchdog_interval: Duration::from_secs(1),
        }
    }
}

/// A running ingest server. Dropping it (or calling
/// [`shutdown`](Server::shutdown)) stops the acceptor and joins it.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn bind(addr: &str, service: Arc<Served>, opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            accept_loop(&listener, &service, &opts, &stop_accept);
        });
        Ok(Server {
            addr: local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and waits for it. Connection threads exit on
    /// their own once their sockets drain or time out.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the acceptor exits on its own — which it only does
    /// when [`ServerOptions::idle_shutdown`] is set.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Served>,
    opts: &ServerOptions,
    stop: &AtomicBool,
) {
    let poll = Duration::from_millis(5);
    let mut last_conn = Instant::now();
    let mut last_watchdog = Instant::now();
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        if let Some(idle) = opts.idle_shutdown {
            if last_conn.elapsed() >= idle {
                break;
            }
        }
        if last_watchdog.elapsed() >= opts.watchdog_interval {
            let _ = service.watchdog();
            last_watchdog = Instant::now();
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                last_conn = Instant::now();
                let service = Arc::clone(service);
                let opts = opts.clone();
                workers.retain(|h| !h.is_finished());
                workers.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &service, &opts);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            // Transient accept errors (per-connection resets, fd
            // pressure): back off briefly and keep serving.
            Err(_) => std::thread::sleep(poll),
        }
    }
    for h in workers {
        let _ = h.join();
    }
}

/// Serves one connection until clean EOF, a timeout, or a protocol error.
fn serve_connection(stream: TcpStream, service: &Served, opts: &ServerOptions) -> io::Result<()> {
    stream.set_read_timeout(Some(opts.read_timeout))?;
    stream.set_write_timeout(Some(opts.write_timeout))?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(req) = read_request(&mut reader)? {
        let resp = match req {
            Request::Ingest {
                tenant,
                digest,
                section,
            } => Response::Ingest(service.ingest(&tenant, &section, Some(digest))),
            Request::Stats { tenant } => Response::Stats(service.stats(&tenant)),
            Request::Ping => Response::Pong,
        };
        write_response(&mut writer, &resp)?;
    }
    Ok(())
}

/// A client that reconnects with bounded, deterministic-jitter backoff —
/// the shared [`RetryPolicy`] — and resubmits idempotently (the service
/// dedups by digest).
pub struct IngestClient {
    addr: String,
    policy: RetryPolicy,
    timeout: Duration,
    jitter_seed: u64,
    conn: Option<(BufReader<TcpStream>, BufWriter<TcpStream>)>,
}

impl IngestClient {
    /// A client for `addr`. No connection is made until the first
    /// request.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        Self {
            addr: addr.into(),
            policy,
            timeout: Duration::from_secs(10),
            jitter_seed: 0x5eed,
            conn: None,
        }
    }

    /// Per-socket read/write timeout (default 10 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Seed for deterministic backoff jitter (distinct per client keeps a
    /// reconnecting fleet from thundering in lockstep).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Submits one encoded section, computing its digest client-side.
    pub fn ingest(&mut self, tenant: &str, section: &[u8]) -> io::Result<IngestStatus> {
        let req = Request::Ingest {
            tenant: tenant.to_owned(),
            digest: dayu_trace::sha256(section),
            section: section.to_vec(),
        };
        match self.roundtrip(&req)? {
            Response::Ingest(status) => Ok(status),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected ingest response, got {other:?}"),
            )),
        }
    }

    /// Fetches a tenant's counters (`None` for an unknown tenant).
    pub fn stats(&mut self, tenant: &str) -> io::Result<Option<TenantStats>> {
        let req = Request::Stats {
            tenant: tenant.to_owned(),
        };
        match self.roundtrip(&req)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected stats response, got {other:?}"),
            )),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected pong, got {other:?}"),
            )),
        }
    }

    /// One request/response exchange with reconnect-and-retry on I/O
    /// failure, up to the policy's attempt budget.
    fn roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_roundtrip(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    self.conn = None;
                    if attempt >= self.policy.max_attempts {
                        return Err(e);
                    }
                    let pause = self.policy.backoff_ns(attempt, self.jitter_seed);
                    if pause > 0 {
                        std::thread::sleep(Duration::from_nanos(pause));
                    }
                }
            }
        }
    }

    fn try_roundtrip(&mut self, req: &Request) -> io::Result<Response> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some((reader, BufWriter::new(stream)));
        }
        let (reader, writer) = self.conn.as_mut().expect("connected above");
        write_request(writer, req)?;
        read_response(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budgets;
    use dayu_trace::{TaskKey, TraceBundle};

    fn sample_section(workflow: &str, task: &str) -> Vec<u8> {
        let mut b = TraceBundle::new(workflow);
        b.push_task(TaskKey::new(task));
        b.to_binary_bytes()
    }

    fn start_server() -> (Server, Arc<Served>) {
        let service = Arc::new(Served::new(Budgets::default()));
        let server = Server::bind(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerOptions {
                read_timeout: Duration::from_secs(2),
                write_timeout: Duration::from_secs(2),
                ..ServerOptions::default()
            },
        )
        .expect("bind loopback");
        (server, service)
    }

    #[test]
    fn client_ingests_over_tcp_and_server_builds_graph() {
        let (server, service) = start_server();
        let mut client = IngestClient::new(server.local_addr().to_string(), RetryPolicy::default());
        client.ping().unwrap();
        let status = client.ingest("wf", &sample_section("wf", "t1")).unwrap();
        assert_eq!(
            status,
            IngestStatus::Accepted {
                records: 0,
                duplicate: false
            }
        );
        // A resend of the same bytes is an accepted duplicate.
        let status = client.ingest("wf", &sample_section("wf", "t1")).unwrap();
        assert_eq!(
            status,
            IngestStatus::Accepted {
                records: 0,
                duplicate: true
            }
        );
        let stats = client.stats("wf").unwrap().expect("tenant exists");
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.duplicates, 1);
        assert!(client.stats("nobody").unwrap().is_none());
        let g = service.snapshot_ftg("wf").expect("tenant resident");
        assert_eq!(g.nodes.len(), 1);
        server.shutdown();
    }

    #[test]
    fn corrupt_payload_is_quarantined_not_fatal() {
        let (server, service) = start_server();
        let mut client = IngestClient::new(server.local_addr().to_string(), RetryPolicy::default());
        let good = sample_section("wf", "t1");
        client.ingest("wf", &good).unwrap();
        let mut torn = sample_section("wf", "t2");
        torn.truncate(torn.len() / 2);
        match client.ingest("wf", &torn).unwrap() {
            IngestStatus::Quarantined(report) => assert!(report.offset <= torn.len() as u64),
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The tenant still serves its last good graph.
        assert_eq!(service.snapshot_ftg("wf").unwrap().nodes.len(), 1);
        assert_eq!(service.quarantine_log().len(), 1);
        server.shutdown();
    }

    #[test]
    fn client_reconnects_after_connection_drop() {
        let (server, _service) = start_server();
        let addr = server.local_addr().to_string();
        let mut client = IngestClient::new(addr, RetryPolicy::default().attempts(4));
        client.ping().unwrap();
        // Sever the client's connection under it; the next request must
        // transparently reconnect and succeed.
        client.conn = None;
        client.ping().unwrap();
        server.shutdown();
    }

    #[test]
    fn client_fails_cleanly_when_server_is_gone() {
        let (server, _service) = start_server();
        let addr = server.local_addr().to_string();
        server.shutdown();
        let mut client = IngestClient::new(
            addr,
            RetryPolicy {
                max_attempts: 2,
                base_backoff_ns: 1_000,
                ..RetryPolicy::default()
            },
        );
        assert!(client.ping().is_err());
    }
}
