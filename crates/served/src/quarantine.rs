//! Structured quarantine reports for sections the service refused.
//!
//! The ingest path never lets a bad section near a tenant's graph: the
//! frame digest is verified first, the decode runs inside a panic
//! barrier, and whatever goes wrong is written down as a
//! [`QuarantineReport`] — which section, which tenant, where in the
//! bytes it broke, and why — while the tenant keeps serving snapshots
//! from its last good graph.

use dayu_trace::sha256::Digest;
use std::fmt;

/// Why a section was quarantined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuarantineCause {
    /// The frame's declared SHA-256 digest does not match the payload:
    /// the section was corrupted (or torn) in transit or at rest.
    DigestMismatch {
        /// Digest the frame header declared.
        declared: Digest,
        /// Digest of the bytes actually received.
        computed: Digest,
    },
    /// The payload ends before the section does — a torn flush or a
    /// truncated upload.
    Truncated,
    /// The payload is structurally invalid at the recorded offset.
    Malformed(String),
    /// The decoder panicked — a decoder bug, survived by the barrier.
    /// The panic payload is preserved for the report.
    DecoderPanic(String),
}

impl fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineCause::DigestMismatch { .. } => write!(f, "frame digest mismatch"),
            QuarantineCause::Truncated => write!(f, "section truncated"),
            QuarantineCause::Malformed(m) => write!(f, "malformed section: {m}"),
            QuarantineCause::DecoderPanic(m) => write!(f, "decoder panic: {m}"),
        }
    }
}

/// One quarantined section: everything an operator needs to find the bad
/// producer and re-flush, without taking the tenant down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineReport {
    /// Workflow (tenant) the section was addressed to.
    pub tenant: String,
    /// 1-based ordinal of this section among the tenant's arrivals.
    pub sequence: u64,
    /// Byte offset into the section payload where decoding failed
    /// (0 for digest mismatches — the whole frame is suspect).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// SHA-256 of the received payload.
    pub digest: Digest,
    /// What went wrong.
    pub cause: QuarantineCause,
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "quarantined section #{} for {} ({} bytes): {} at byte {}",
            self.sequence, self.tenant, self.len, self.cause, self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_names_tenant_offset_and_cause() {
        let r = QuarantineReport {
            tenant: "wf-3".into(),
            sequence: 7,
            offset: 42,
            len: 128,
            digest: [0u8; 32],
            cause: QuarantineCause::Malformed("bad frame tag 0x7f".into()),
        };
        let text = r.to_string();
        assert!(text.contains("wf-3"));
        assert!(text.contains("#7"));
        assert!(text.contains("byte 42"));
        assert!(text.contains("bad frame tag"));
    }
}
