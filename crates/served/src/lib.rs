//! # dayu-served
//!
//! A long-running, multi-tenant trace-ingest service: workflows stream
//! their `.dtb` trace sections in as they execute, and the service keeps a
//! live File-Task Graph / Semantic Dataflow Graph per workflow by feeding
//! each section to an incremental
//! [`PartialGraph`](dayu_analyzer::PartialGraph) — the same
//! partition/merge machinery as the batch analyzer, so a live snapshot is
//! *identical* to the one-shot build over the sections absorbed so far.
//!
//! The robustness layer is the point:
//!
//! * **Quarantine** ([`QuarantineReport`]) — the frame digest is checked
//!   and the decode runs behind a panic barrier; a corrupt section is
//!   recorded (byte offset, cause) and the tenant keeps serving its last
//!   good graph.
//! * **Budgets & backpressure** ([`Budgets`]) — per-tenant section-rate
//!   token buckets answer `Throttled` with a retry hint; byte and
//!   graph-node budgets shed load; the service-wide byte budget evicts
//!   oldest-idle tenants (LRU).
//! * **Graceful degradation** — the watchdog surfaces every degraded
//!   tenant as an analyzer `Finding::DegradedIngest`, which the advisor
//!   turns into a re-ingest recommendation.
//! * **Timeouts & retries** ([`Server`], [`IngestClient`]) — every socket
//!   carries read/write timeouts; clients reconnect with the same
//!   deterministic-jitter [`RetryPolicy`](dayu_vfd::RetryPolicy) the
//!   workflow runner uses, and resubmission is idempotent because
//!   sections are deduplicated by digest.
//!
//! In-process use (tests, benches) goes through [`Served`] directly; the
//! wire protocol ([`wire`]) and TCP front-end ([`server`]) add the
//! length-framed transport.

pub mod budget;
pub mod quarantine;
pub mod server;
pub mod service;
pub mod wire;

pub use budget::{Budgets, TokenBucket};
pub use quarantine::{QuarantineCause, QuarantineReport};
pub use server::{IngestClient, Server, ServerOptions};
pub use service::{IngestStatus, Served, TenantStats};

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_analyzer::build_ftg;
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::time::{ManualClock, Timestamp};
    use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
    use dayu_trace::TraceBundle;
    use std::sync::Arc;

    fn sample_bundle(workflow: &str) -> TraceBundle {
        let mut b = TraceBundle::new(workflow);
        for t in ["w", "r"] {
            b.push_task(TaskKey::new(t));
        }
        let mk = |task: &str, kind, at| VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new("f.h5"),
            kind,
            offset: 0,
            len: 512,
            access: AccessType::RawData,
            object: ObjectKey::new("/d"),
            start: Timestamp(at),
            end: Timestamp(at + 1),
        };
        b.vfd = vec![mk("w", IoKind::Write, 0), mk("r", IoKind::Read, 10)];
        b
    }

    fn service(budgets: Budgets) -> (Served, ManualClock) {
        let clock = ManualClock::new();
        (Served::with_clock(budgets, Arc::new(clock.clone())), clock)
    }

    #[test]
    fn live_graph_is_identical_to_batch_build() {
        let (served, _clock) = service(Budgets::default());
        let bundle = sample_bundle("wf");
        for section in bundle.split_per_task() {
            let status = served.ingest("wf", &section.to_binary_bytes(), None);
            assert!(matches!(status, IngestStatus::Accepted { .. }));
        }
        let live = served.snapshot_ftg("wf").expect("tenant resident");
        let batch = build_ftg(&bundle);
        assert_eq!(live.nodes, batch.nodes);
        assert_eq!(live.edges, batch.edges);
    }

    #[test]
    fn corrupt_sections_quarantine_and_leave_last_good_graph() {
        let (served, _clock) = service(Budgets::default());
        let bundle = sample_bundle("wf");
        let good = bundle.to_binary_bytes();
        assert!(matches!(
            served.ingest("wf", &good, None),
            IngestStatus::Accepted { .. }
        ));
        let before = served.snapshot_ftg("wf").unwrap();

        let mut torn = good.clone();
        torn.truncate(torn.len() - 3);
        let digest = dayu_trace::sha256(&torn);
        match served.ingest("wf", &torn, Some(digest)) {
            IngestStatus::Quarantined(report) => {
                assert_eq!(report.tenant, "wf");
                assert_eq!(report.cause, QuarantineCause::Truncated);
                assert!(report.offset <= torn.len() as u64);
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // Digest mismatch: frame claims one digest, payload hashes to
        // another.
        match served.ingest("wf", &good, Some([0u8; 32])) {
            IngestStatus::Quarantined(report) => {
                assert!(matches!(
                    report.cause,
                    QuarantineCause::DigestMismatch { .. }
                ));
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let after = served.snapshot_ftg("wf").unwrap();
        assert_eq!(before.nodes, after.nodes);
        assert_eq!(before.edges, after.edges);
        let stats = served.stats("wf").unwrap();
        assert_eq!(stats.quarantined, 2);
        assert_eq!(served.quarantine_log().len(), 2);
    }

    #[test]
    fn rate_budget_throttles_with_retry_hint() {
        let budgets = Budgets {
            sections_per_sec: 10.0,
            burst: 2.0,
            ..Budgets::default()
        };
        let (served, clock) = service(budgets);
        let payload = sample_bundle("wf").to_binary_bytes();
        assert!(matches!(
            served.ingest("wf", &payload, None),
            IngestStatus::Accepted { .. }
        ));
        // Second send of identical bytes: in-budget duplicate.
        assert!(matches!(
            served.ingest("wf", &payload, None),
            IngestStatus::Accepted {
                duplicate: true,
                ..
            }
        ));
        let retry = match served.ingest("wf", &payload, None) {
            IngestStatus::Throttled { retry_after_ns } => retry_after_ns,
            other => panic!("expected throttle, got {other:?}"),
        };
        assert!(retry > 0);
        assert_eq!(served.stats("wf").unwrap().dropped, 1);
        clock.advance(retry);
        assert!(matches!(
            served.ingest("wf", &payload, None),
            IngestStatus::Accepted { .. }
        ));
    }

    #[test]
    fn byte_budget_sheds_and_degrades() {
        let budgets = Budgets {
            max_bytes_per_tenant: 1,
            ..Budgets::default()
        };
        let (served, _clock) = service(budgets);
        let b = sample_bundle("wf");
        let sections: Vec<Vec<u8>> = b
            .split_per_task()
            .iter()
            .map(TraceBundle::to_binary_bytes)
            .collect();
        assert!(matches!(
            served.ingest("wf", &sections[0], None),
            IngestStatus::Accepted { .. }
        ));
        match served.ingest("wf", &sections[1], None) {
            IngestStatus::Rejected { reason } => assert!(reason.contains("byte budget")),
            other => panic!("expected rejection, got {other:?}"),
        }
        let findings = served.watchdog();
        assert_eq!(findings.len(), 1);
        match &findings[0] {
            dayu_analyzer::Finding::DegradedIngest {
                workflow,
                reason,
                dropped,
                ..
            } => {
                assert_eq!(workflow, "wf");
                assert!(reason.contains("byte budget"));
                assert_eq!(*dropped, 1);
            }
            other => panic!("expected DegradedIngest, got {other:?}"),
        }
    }

    #[test]
    fn tenant_table_evicts_oldest_idle() {
        let budgets = Budgets {
            max_tenants: 2,
            ..Budgets::default()
        };
        let (served, clock) = service(budgets);
        served.ingest("a", &sample_bundle("a").to_binary_bytes(), None);
        clock.advance(1_000);
        served.ingest("b", &sample_bundle("b").to_binary_bytes(), None);
        clock.advance(1_000);
        // Admitting "c" evicts "a", the least recently active.
        served.ingest("c", &sample_bundle("c").to_binary_bytes(), None);
        assert_eq!(served.tenants(), vec!["b".to_owned(), "c".to_owned()]);
        assert_eq!(served.evicted(), 1);
    }

    #[test]
    fn watchdog_evicts_idle_tenants() {
        let budgets = Budgets {
            idle_evict_ns: 1_000_000,
            ..Budgets::default()
        };
        let (served, clock) = service(budgets);
        served.ingest("wf", &sample_bundle("wf").to_binary_bytes(), None);
        assert_eq!(served.tenants().len(), 1);
        assert!(served.total_retained_bytes() > 0);
        clock.advance(2_000_000);
        let findings = served.watchdog();
        assert!(findings.is_empty(), "healthy tenant: no degradation");
        assert!(served.tenants().is_empty(), "idle tenant evicted");
        assert_eq!(served.evicted(), 1);
        assert_eq!(served.total_retained_bytes(), 0);
    }

    #[test]
    fn unknown_tenant_queries_are_none() {
        let (served, _clock) = service(Budgets::default());
        assert!(served.snapshot_ftg("ghost").is_none());
        assert!(served
            .snapshot_sdg("ghost", &dayu_analyzer::SdgOptions::default())
            .is_none());
        assert!(served.stats("ghost").is_none());
        assert!(served.bundle("ghost").is_none());
    }
}
