//! Automated optimization — the paper's first future-work item: "further
//! leveraging DaYu's insights to automate optimization strategies."
//!
//! [`optimize`] closes the loop without a human in it: analyze a recorded
//! run, map every finding to its guideline action, apply the actions that
//! are plan-level (scheduling, placement, staging, access elimination,
//! pipelining) to the replay job, and score the optimized plan against the
//! baseline on a simulated cluster. Actions that require regenerating the
//! data itself (layout changes, consolidation) are reported as advisories —
//! they need a re-run of the producing application.

use dayu_advisor::{advise, advise_lint, Action, Recommendation};
use dayu_analyzer::Analysis;
use dayu_lint::{plan_critical_path_bytes, verify, ContractCatalog, ExtentCatalog, LintConfig};
use dayu_sim::cluster::{Cluster, FileLocation, Placement};
use dayu_sim::engine::{Engine, SimError, SimReport};
use dayu_sim::program::SimTask;
use dayu_sim::tiers::TierKind;
use dayu_trace::vfd::IoKind;
use dayu_workflow::{
    file_written_bytes, readers_of, to_sim_tasks, transform, RecordedRun, Schedule,
};
use std::collections::HashMap;

/// The outcome of automatic optimization.
pub struct AutoOutcome {
    /// Baseline replay (round-robin schedule, default shared placement).
    pub baseline: SimReport,
    /// Replay of the automatically derived plan.
    pub optimized: SimReport,
    /// Human-readable description of each applied action.
    pub applied: Vec<String>,
    /// Advisories that could not be applied mechanically (data-layout
    /// changes requiring application re-runs).
    pub advisories: Vec<String>,
    /// Transforms the semantics-preservation verifier rejected and rolled
    /// back (each entry names the transform and the regressions it would
    /// have introduced).
    pub rejected: Vec<String>,
    /// The recommendations the plan was derived from.
    pub recommendations: Vec<Recommendation>,
    /// Predicted critical-path bytes (abstract cost model, engine-blind)
    /// of the baseline replay plan.
    pub predicted_baseline_cp_bytes: u64,
    /// Predicted critical-path bytes of the final optimized plan.
    pub predicted_plan_cp_bytes: u64,
    /// One line per cost-scored candidate action: the predicted
    /// critical-path bytes of the plan with that rewrite applied. Phase-2
    /// application order follows these scores (cheapest predicted path
    /// first), not the advisor's emission order.
    pub plan_scores: Vec<String>,
}

impl AutoOutcome {
    /// Makespan speedup of the optimized plan.
    pub fn speedup(&self) -> f64 {
        self.baseline.makespan_ns as f64 / self.optimized.makespan_ns.max(1) as f64
    }
}

/// The node a task most often ran I/O against (fallback 0).
fn node_of(tasks: &[SimTask], name: &str) -> usize {
    tasks
        .iter()
        .find(|t| t.name == name)
        .map(|t| t.node)
        .unwrap_or(0)
}

/// Bytes the run moved for `file`: what was written, or — for pure inputs
/// written before tracing began — what was read.
fn traced_file_bytes(run: &RecordedRun, file: &str) -> u64 {
    file_written_bytes(run, file).max(
        run.bundle
            .vfd
            .iter()
            .filter(|r| r.file.as_str() == file && r.kind == IoKind::Read)
            .map(|r| r.len)
            .sum(),
    )
}

/// Predicted critical-path bytes of `tasks` with `f` applied to a scratch
/// copy; the real plan is untouched.
fn scored<R>(tasks: &[SimTask], f: impl FnOnce(&mut Vec<SimTask>) -> R) -> u64 {
    let mut scratch = tasks.to_vec();
    f(&mut scratch);
    plan_critical_path_bytes(&scratch).0
}

/// Scores a candidate action by re-running the abstract cost model on the
/// transformed plan: `(label, predicted critical-path bytes)`. `None` for
/// actions with no mechanical plan rewrite to score (advisories, phase-1
/// trace edits, pure placement hints).
fn score_action(tasks: &[SimTask], run: &RecordedRun, action: &Action) -> Option<(String, u64)> {
    match action {
        Action::Parallelize { first, second } => Some((
            format!("parallelize {second} with {first}"),
            scored(tasks, |t| transform::parallelize(t, first, second)),
        )),
        Action::CoSchedule { producer, consumer } => Some((
            format!("co-schedule {consumer} with {producer}"),
            scored(tasks, |t| transform::co_schedule(t, producer, consumer)),
        )),
        Action::PrefetchToNodeLocal { file, .. } => {
            let bytes = traced_file_bytes(run, file);
            if bytes == 0 {
                return None;
            }
            Some((
                format!("prefetch {file}"),
                scored(tasks, |t| {
                    let node = readers_of(t, file).first().map(|&i| t[i].node)?;
                    let mut scratch_placement = Placement::new();
                    transform::stage_in(
                        t,
                        &mut scratch_placement,
                        file,
                        bytes,
                        node,
                        TierKind::NvmeSsd,
                    );
                    Some(())
                }),
            ))
        }
        Action::StageOut { file } => {
            let bytes = file_written_bytes(run, file);
            if bytes == 0 {
                return None;
            }
            Some((
                format!("stage-out {file}"),
                scored(tasks, |t| {
                    let node = readers_of(t, file).first().map(|&i| t[i].node).unwrap_or(0);
                    transform::stage_out_async(t, file, bytes, node);
                }),
            ))
        }
        _ => None,
    }
}

/// Applies an ordering rewrite through two gates: the abstract cost model
/// first — a rewrite whose transformed plan predicts *more* critical-path
/// bytes is rejected before any semantics check (`parallelize` makes the
/// second task inherit the first's prerequisites, which lengthens the
/// weighted path when the advisor mispairs tasks) — then the
/// semantics-preservation verifier.
fn cp_gated<R>(
    tasks: &mut Vec<SimTask>,
    label: &str,
    contracts: Option<&ContractCatalog>,
    catalog: &ExtentCatalog,
    f: impl Fn(&mut Vec<SimTask>) -> R,
) -> Result<R, String> {
    let before = plan_critical_path_bytes(tasks).0;
    let after = scored(tasks, &f);
    if after > before {
        return Err(format!(
            "{label}: predicted critical-path bytes regress ({before} -> {after} B)"
        ));
    }
    verify::verified_with_oracles(tasks, label, contracts, Some(catalog), f)
        .map_err(|v| v.to_string())
}

/// Derives and scores an optimized plan for a recorded run on `cluster`.
pub fn optimize(run: &RecordedRun, cluster: &Cluster) -> Result<AutoOutcome, SimError> {
    optimize_with_contracts(run, cluster, None)
}

/// [`optimize`] with declared contract footprints: every plan rewrite is
/// gated by the declarations *first* (a `parallelize` between tasks whose
/// declared extents are provably disjoint is discharged with no recorded
/// extents at all), falling back to the recorded-extent oracle for tasks
/// the contracts do not cover.
pub fn optimize_with_contracts(
    run: &RecordedRun,
    cluster: &Cluster,
    contracts: Option<&ContractCatalog>,
) -> Result<AutoOutcome, SimError> {
    let analysis = Analysis::run(&run.bundle);
    let mut recommendations = advise(&analysis.findings);
    // Waste findings from the linter's lifetime pass (dead datasets,
    // redundant overwrites) become elision recommendations. They stay
    // advisory here: the linter cannot tell dead data from a final
    // product nobody reads *within* the recorded window.
    let lint_report = dayu_lint::analyze_bundle(
        &run.bundle,
        &LintConfig {
            report_dead_data: true,
            ..LintConfig::default()
        },
    );
    recommendations.extend(advise_lint(&lint_report));

    // Baseline.
    let schedule = Schedule::round_robin(run, cluster.nodes);
    let baseline_tasks = to_sim_tasks(run, &schedule);
    let baseline = Engine::new(cluster, &Placement::new()).run(&baseline_tasks)?;

    let mut applied = Vec::new();
    let mut advisories = Vec::new();
    let mut rejected = Vec::new();

    // Phase 1 — trace-level action: eliminate unused dataset accesses
    // before converting to a replay job.
    let mut bundle = run.bundle.clone();
    for rec in &recommendations {
        if let Action::SkipUnusedDataset { dataset } = &rec.action {
            let Some((file, object)) = dataset.split_once(':') else {
                continue;
            };
            // Every task that touched the object stops moving its content;
            // tasks that genuinely read its data were excluded by the
            // detector, so only writers and metadata-only readers remain.
            let touchers: Vec<String> = bundle
                .vfd
                .iter()
                .filter(|r| r.file.as_str() == file && r.object.as_str() == object)
                .map(|r| r.task.as_str().to_owned())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let mut dropped = 0;
            for t in touchers {
                dropped += transform::drop_object_ops(&mut bundle, &t, object);
            }
            if dropped > 0 {
                applied.push(format!(
                    "partial file access: eliminated {dropped} ops on unused {dataset}"
                ));
            }
        }
    }
    let opt_run = RecordedRun {
        bundle,
        stage_of: run.stage_of.clone(),
        compute_ns: run.compute_ns.clone(),
        stage_names: run.stage_names.clone(),
        outcomes: run.outcomes.clone(),
    };
    let mut tasks = to_sim_tasks(&opt_run, &schedule);
    let mut placement = Placement::new();

    // Phase 2 — plan-level actions. Every plan rewrite goes through the
    // semantics-preservation verifier (`dayu_lint::verify`): a transform
    // that would introduce a hazard or break a producer→consumer ordering
    // is rolled back and reported in `rejected` instead of applied. The
    // recorded byte extents sharpen the gate in both directions: rewrites
    // whose tasks provably touch disjoint bytes pass even when they share
    // a file, and real collisions are rejected as extent races.
    let catalog = ExtentCatalog::from_bundle(&opt_run.bundle);
    let mut staged: HashMap<String, ()> = HashMap::new();

    // Rank the candidates before applying any of them: re-run the abstract
    // cost model (`plan_critical_path_bytes`) on each mechanical rewrite
    // applied to a scratch copy of the plan, and walk phase 2 cheapest
    // predicted critical path first. Unscorable actions keep the advisor's
    // emission order at a neutral score, and ties stay stable.
    let predicted_baseline_cp_bytes = plan_critical_path_bytes(&baseline_tasks).0;
    let start_cp = plan_critical_path_bytes(&tasks).0;
    let mut plan_scores = Vec::new();
    let mut order: Vec<(usize, u64)> = recommendations
        .iter()
        .enumerate()
        .map(
            |(i, rec)| match score_action(&tasks, &opt_run, &rec.action) {
                Some((label, cp)) => {
                    plan_scores.push(format!(
                        "{label}: predicted critical path {start_cp} -> {cp} B"
                    ));
                    (i, cp)
                }
                None => (i, start_cp),
            },
        )
        .collect();
    order.sort_by_key(|&(_, cp)| cp);

    for &(idx, _) in &order {
        let rec = &recommendations[idx];
        match &rec.action {
            Action::CoSchedule { producer, consumer } => {
                match cp_gated(&mut tasks, "co_schedule", contracts, &catalog, |t| {
                    transform::co_schedule(t, producer, consumer)
                }) {
                    Ok(()) => {
                        // The file between them becomes node-local.
                        let node = node_of(&tasks, producer);
                        transform::place_outputs_local(
                            &tasks,
                            &mut placement,
                            producer,
                            TierKind::NvmeSsd,
                        );
                        applied.push(format!(
                            "co-scheduled {consumer} with {producer} on node {node}, outputs on local SSD"
                        ));
                    }
                    Err(v) => rejected.push(v),
                }
            }
            Action::CacheInFastTier { target } => {
                // Home the file on the fastest local tier of its busiest
                // reader's node.
                let readers = readers_of(&tasks, target);
                let node = readers.first().map(|&i| tasks[i].node).unwrap_or(0);
                placement.place(target.clone(), FileLocation::NodeLocal(node, TierKind::Ram));
                applied.push(format!("cached {target} in memory on node {node}"));
            }
            Action::PrefetchToNodeLocal { file, delayed } => {
                if staged.contains_key(file) {
                    continue;
                }
                let bytes = file_written_bytes(&opt_run, file).max(
                    // Pure inputs were written before tracing; size them by
                    // what was read.
                    opt_run
                        .bundle
                        .vfd
                        .iter()
                        .filter(|r| r.file.as_str() == file && r.kind == IoKind::Read)
                        .map(|r| r.len)
                        .sum(),
                );
                if bytes == 0 {
                    continue;
                }
                let readers = readers_of(&tasks, file);
                let Some(&first_reader) = readers.first() else {
                    continue;
                };
                let node = tasks[first_reader].node;
                // A rejected stage-in leaves its replica entry in
                // `placement` (the transform records it before the check);
                // harmless, since after rollback no task references the
                // replica file.
                match verify::verified_with_oracles(
                    &mut tasks,
                    "stage_in",
                    contracts,
                    Some(&catalog),
                    |t| {
                        transform::stage_in(t, &mut placement, file, bytes, node, TierKind::NvmeSsd)
                    },
                ) {
                    Ok(_) => {
                        staged.insert(file.clone(), ());
                        applied.push(format!(
                            "{}prefetched {file} ({bytes} B) to node {node} SSD",
                            if *delayed { "(delayed) " } else { "" }
                        ));
                    }
                    Err(v) => rejected.push(v.to_string()),
                }
            }
            Action::Parallelize { first, second } => {
                match cp_gated(&mut tasks, "parallelize", contracts, &catalog, |t| {
                    transform::parallelize(t, first, second)
                }) {
                    Ok(()) => applied.push(format!("pipelined {second} with {first}")),
                    Err(v) => rejected.push(v),
                }
            }
            Action::StageOut { file } => {
                // Only meaningful when the file was placed node-local by an
                // earlier action; the copy back to shared is asynchronous.
                let bytes = file_written_bytes(&opt_run, file);
                if bytes > 0 {
                    let node = readers_of(&tasks, file)
                        .first()
                        .map(|&i| tasks[i].node)
                        .unwrap_or(0);
                    match verify::verified_with_oracles(
                        &mut tasks,
                        "stage_out_async",
                        contracts,
                        Some(&catalog),
                        |t| transform::stage_out_async(t, file, bytes, node),
                    ) {
                        Ok(()) => applied.push(format!("async stage-out of {file}")),
                        Err(v) => rejected.push(v.to_string()),
                    }
                }
            }
            Action::ChangeLayout { dataset, to } => {
                advisories.push(format!(
                    "re-run producer with {to} layout for {dataset} (data-format change)"
                ));
            }
            Action::ConsolidateSmallDatasets { file, count } => {
                advisories.push(format!(
                    "consolidate {count} small datasets in {file} into one (data-format change)"
                ));
            }
            Action::SkipUnusedDataset { .. } => {} // handled in phase 1
            Action::ElideDataset {
                file,
                dataset,
                bytes,
            } => {
                // Never applied mechanically: within the recorded window a
                // final product is indistinguishable from dead data. The
                // cost model still prices the hypothetical so a human can
                // rank which elisions are worth confirming.
                let mut elided = opt_run.bundle.clone();
                let touchers: Vec<String> = elided
                    .vfd
                    .iter()
                    .filter(|r| r.file.as_str() == file && r.object.as_str() == dataset)
                    .map(|r| r.task.as_str().to_owned())
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                for t in &touchers {
                    transform::drop_object_ops(&mut elided, t, dataset);
                }
                let elided_run = RecordedRun {
                    bundle: elided,
                    stage_of: opt_run.stage_of.clone(),
                    compute_ns: opt_run.compute_ns.clone(),
                    stage_names: opt_run.stage_names.clone(),
                    outcomes: opt_run.outcomes.clone(),
                };
                let elided_cp = plan_critical_path_bytes(&to_sim_tasks(&elided_run, &schedule)).0;
                let cur_cp = plan_critical_path_bytes(&tasks).0;
                plan_scores.push(format!(
                    "elide {file}:{dataset}: predicted critical path {cur_cp} -> {elided_cp} B"
                ));
                advisories.push(format!(
                    "elide {file}:{dataset} ({bytes} B written, never read in the \
                     recorded workflow; would take the predicted critical path \
                     from {cur_cp} to {elided_cp} B) — confirm it is not a final product"
                ));
            }
            Action::AuditRecoveredOutputs { task } => {
                // Crash-recovered outputs are already fsck'd by the runner;
                // the plan-level response is advisory: keep journaled
                // durability and treat the task's timing as an outlier.
                advisories.push(format!(
                    "audit {task}'s recovered outputs (retry resumed from \
                     journal-recovered files); keep journaled durability for its stage"
                ));
            }
            Action::AuditContract { task, dataset } => {
                // A contract the trace contradicts poisons every proof
                // discharged from it; plans keep working off recorded
                // extents, so the response is advisory.
                advisories.push(format!(
                    "audit {task}'s I/O contract for {dataset} (trace and declaration \
                     disagree); until they are reconciled, symbolic proofs involving \
                     {task} are unsound"
                ));
            }
            Action::RerunTask { task } => {
                // A salvaged trace fragment under-reports the task's I/O;
                // optimizing against it would bake the gap into the plan.
                advisories.push(format!(
                    "re-record {task} (salvaged trace fragment; plan derived from partial data)"
                ));
            }
            Action::ReingestWorkflow { workflow } => {
                // The live graph is missing quarantined or load-shed
                // sections; a plan built on it optimizes a partial view.
                advisories.push(format!(
                    "re-ingest {workflow} from a clean trace (streaming ingest \
                     degraded; this plan was derived from an incomplete graph)"
                ));
            }
            Action::InvestigateDivergence { task, event_index } => {
                // Two recordings disagree: the trace this plan was derived
                // from may not describe what the workload actually does.
                advisories.push(format!(
                    "investigate {task}'s divergence at event {event_index} before \
                     trusting this plan (cross-run traces disagree)"
                ));
            }
        }
    }

    let optimized = Engine::new(cluster, &placement).run(&tasks)?;
    let predicted_plan_cp_bytes = plan_critical_path_bytes(&tasks).0;
    Ok(AutoOutcome {
        baseline,
        optimized,
        applied,
        advisories,
        rejected,
        recommendations,
        predicted_baseline_cp_bytes,
        predicted_plan_cp_bytes,
        plan_scores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_vfd::MemFs;
    use dayu_workloads::{ddmd, pyflextrkr};

    #[test]
    fn auto_optimize_ddmd_beats_baseline() {
        let cfg = ddmd::DdmdConfig {
            sim_tasks: 4,
            iterations: 1,
            contact_map_dim: 64,
            point_cloud_points: 128,
            scalar_series_len: 32,
            compute_ns: 1_000_000,
            ..Default::default()
        };
        let fs = MemFs::new();
        let run = dayu_workflow::record(&ddmd::workflow(&cfg), &fs).unwrap();
        let cluster = Cluster::gpu_cluster(2);
        let out = optimize(&run, &cluster).unwrap();
        assert!(
            out.speedup() > 1.0,
            "auto plan should not be slower: {:.2}x\napplied: {:?}",
            out.speedup(),
            out.applied
        );
        assert!(!out.applied.is_empty(), "something was applied");
        // The unused contact_map elimination fired.
        assert!(
            out.applied.iter().any(|a| a.contains("contact_map")),
            "{:?}",
            out.applied
        );
        // Layout advisories are surfaced, not silently dropped.
        assert!(out
            .advisories
            .iter()
            .any(|a| a.contains("layout") || a.contains("consolidate")));
        // Advisor-derived transforms on a clean run all pass verification.
        assert!(out.rejected.is_empty(), "{:?}", out.rejected);
        // The abstract cost model priced the baseline and the candidates.
        assert!(out.predicted_baseline_cp_bytes > 0);
        assert!(out.predicted_plan_cp_bytes > 0);
        assert!(
            out.plan_scores
                .iter()
                .all(|s| s.contains("predicted critical path")),
            "{:?}",
            out.plan_scores
        );
    }

    #[test]
    fn auto_optimize_pyflextrkr_beats_baseline() {
        let cfg = pyflextrkr::PyflextrkrConfig {
            input_files: 4,
            input_bytes: 128 << 10,
            feature_bytes: 64 << 10,
            small_datasets: 12,
            small_dataset_bytes: 300,
            small_dataset_accesses: 3,
            compute_ns: 2_000_000,
        };
        let fs = MemFs::new();
        pyflextrkr::prepare_inputs_untraced(&fs, &cfg).unwrap();
        let run = dayu_workflow::record(&pyflextrkr::workflow(&cfg), &fs).unwrap();
        let cluster = Cluster::gpu_cluster(2);
        let out = optimize(&run, &cluster).unwrap();
        assert!(
            out.speedup() > 1.0,
            "auto plan regressed: {:.2}x\napplied: {:?}",
            out.speedup(),
            out.applied
        );
        assert!(out.rejected.is_empty(), "{:?}", out.rejected);
    }

    #[test]
    fn illegal_transform_is_rejected_not_applied() {
        use dayu_sim::program::{SimOp, SimTask};

        // Drive the same gate optimize() uses with a transform that breaks
        // the producer→consumer order; the plan must be left untouched.
        let mut tasks = vec![
            SimTask::new("producer").with_program(vec![SimOp::write("out.h5", 1 << 20)]),
            SimTask::new("consumer")
                .after(&[0])
                .with_program(vec![SimOp::read("out.h5", 1 << 20)]),
        ];
        let before = tasks.clone();
        let err = verify::verified(&mut tasks, "parallelize", |t| {
            transform::parallelize(t, "producer", "consumer")
        })
        .unwrap_err();
        assert_eq!(tasks, before);
        assert!(err.to_string().contains("parallelize"), "{err}");
    }

    #[test]
    fn cost_model_rejects_cp_regressing_parallelize() {
        use dayu_sim::program::{SimOp, SimTask};

        // "first" sits downstream of a heavy producer; "second" is an
        // independent writer whose own path is the critical one. The
        // parallelize rewrite makes `second` inherit `first`'s heavy
        // prerequisite, lengthening the byte-weighted critical path — the
        // cost model rejects the plan before the semantics verifier runs.
        let mut tasks = vec![
            SimTask::new("heavy").with_program(vec![SimOp::write("big.h5", 1 << 20)]),
            SimTask::new("first")
                .after(&[0])
                .with_program(vec![SimOp::read("big.h5", 1 << 20)]),
            SimTask::new("second").with_program(vec![SimOp::write("out.h5", 3 << 20)]),
        ];
        let before = tasks.clone();
        let catalog = ExtentCatalog::default();
        let err = cp_gated(&mut tasks, "parallelize", None, &catalog, |t| {
            transform::parallelize(t, "first", "second")
        })
        .unwrap_err();
        assert!(err.contains("critical-path bytes regress"), "{err}");
        assert_eq!(tasks, before, "plan untouched after cost rejection");
    }
}
