//! Offline analysis of a persisted DaYu trace — the post-execution half of
//! the toolset: point it at a `trace.jsonl` produced by any instrumented
//! run and get the graphs, findings and recommendations.
//!
//! ```text
//! dayu-analyze trace.jsonl                 # summary to stdout
//! dayu-analyze trace.jsonl --out report/   # + FTG/SDG html/dot/json
//! dayu-analyze trace.jsonl --regions 8     # address-region nodes
//! dayu-analyze trace.jsonl --aggregate     # collapse parallel task groups
//! dayu-analyze check trace.jsonl           # dataflow-hazard lint (exit 1 on findings)
//! dayu-analyze check trace.jsonl --inputs a.h5,b.h5   # declared external inputs
//! ```

use dayu_analyzer::{export, resolution, Analysis, DetectorConfig, SdgOptions};
use dayu_lint::{analyze_bundle, LintConfig};
use dayu_trace::TraceBundle;
use std::io::BufReader;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: dayu-analyze <trace.jsonl> [--out DIR] [--regions N] [--aggregate]\n       dayu-analyze check <trace.jsonl> [--inputs FILE,FILE,...]"
    );
    std::process::exit(2);
}

fn load_bundle(input: &PathBuf) -> TraceBundle {
    let file = std::fs::File::open(input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", input.display());
        std::process::exit(1);
    });
    TraceBundle::read_jsonl(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", input.display());
        std::process::exit(1);
    })
}

/// `dayu-analyze check`: static dataflow-hazard lint over a recorded trace.
fn check_main(args: Vec<String>) -> ! {
    let mut input: Option<PathBuf> = None;
    let mut cfg = LintConfig::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--inputs" => {
                let list = args.next().unwrap_or_else(|| usage());
                cfg = LintConfig::with_external_inputs(
                    list.split(',').filter(|s| !s.is_empty()).map(str::to_owned),
                );
            }
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let bundle = load_bundle(&input);
    let report = analyze_bundle(&bundle, &cfg);
    if report.is_clean() {
        println!(
            "workflow {:?}: no dataflow hazards ({} low-level ops checked)",
            bundle.meta.workflow,
            bundle.vfd.len()
        );
        std::process::exit(0);
    }
    println!(
        "workflow {:?}: {} finding(s)",
        bundle.meta.workflow,
        report.len()
    );
    for f in &report.findings {
        println!("  [{}] {f}", f.category());
    }
    std::process::exit(1);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("check") {
        check_main(raw[1..].to_vec());
    }
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut regions: u64 = 0;
    let mut aggregate = false;
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--regions" => {
                regions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--aggregate" => aggregate = true,
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let bundle = load_bundle(&input);

    let sdg_opts = SdgOptions {
        include_regions: regions > 0,
        region_count: regions.max(4),
    };
    let analysis = Analysis::run_with(&bundle, &sdg_opts, &DetectorConfig::default());
    let recommendations = dayu_advisor::advise(&analysis.findings);

    println!("workflow {:?}", bundle.meta.workflow);
    println!(
        "  tasks: {}, object records: {}, low-level ops: {}, files: {}",
        bundle.meta.task_order.len(),
        bundle.vol.len(),
        bundle.vfd.len(),
        bundle.files.len()
    );
    let (mut ftg, mut sdg) = (analysis.ftg, analysis.sdg);
    if aggregate {
        ftg = resolution::aggregate(&ftg, &resolution::by_task_prefix);
        sdg = resolution::aggregate(&sdg, &resolution::by_task_prefix);
        println!("  (task groups aggregated by numeric-suffix prefix)");
    }
    println!(
        "  FTG: {} nodes / {} edges;  SDG: {} nodes / {} edges",
        ftg.nodes.len(),
        ftg.edges.len(),
        sdg.nodes.len(),
        sdg.edges.len()
    );
    println!("\nfindings ({}):", analysis.findings.len());
    for f in &analysis.findings {
        println!("  [{}] {f:?}", f.category());
    }
    println!("\n{}", dayu_advisor::report(&recommendations));

    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create out dir");
        for (g, name) in [(&ftg, "ftg"), (&sdg, "sdg")] {
            std::fs::write(dir.join(format!("{name}.dot")), export::to_dot(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.html")), export::to_html(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.json")), export::to_json(g)).unwrap();
        }
        println!("graphs written to {}/", dir.display());
    }
}
