//! Offline analysis of a persisted DaYu trace — the post-execution half of
//! the toolset: point it at a `trace.jsonl` produced by any instrumented
//! run and get the graphs, findings and recommendations.
//!
//! ```text
//! dayu-analyze trace.jsonl                 # summary to stdout
//! dayu-analyze trace.jsonl --out report/   # + FTG/SDG html/dot/json
//! dayu-analyze trace.jsonl --regions 8     # address-region nodes
//! dayu-analyze trace.jsonl --aggregate     # collapse parallel task groups
//! ```

use dayu_analyzer::{export, resolution, Analysis, DetectorConfig, SdgOptions};
use dayu_trace::TraceBundle;
use std::io::BufReader;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: dayu-analyze <trace.jsonl> [--out DIR] [--regions N] [--aggregate]");
    std::process::exit(2);
}

fn main() {
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut regions: u64 = 0;
    let mut aggregate = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--regions" => {
                regions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--aggregate" => aggregate = true,
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };

    let file = std::fs::File::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", input.display());
        std::process::exit(1);
    });
    let bundle = TraceBundle::read_jsonl(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", input.display());
        std::process::exit(1);
    });

    let sdg_opts = SdgOptions {
        include_regions: regions > 0,
        region_count: regions.max(4),
    };
    let analysis = Analysis::run_with(&bundle, &sdg_opts, &DetectorConfig::default());
    let recommendations = dayu_advisor::advise(&analysis.findings);

    println!("workflow {:?}", bundle.meta.workflow);
    println!(
        "  tasks: {}, object records: {}, low-level ops: {}, files: {}",
        bundle.meta.task_order.len(),
        bundle.vol.len(),
        bundle.vfd.len(),
        bundle.files.len()
    );
    let (mut ftg, mut sdg) = (analysis.ftg, analysis.sdg);
    if aggregate {
        ftg = resolution::aggregate(&ftg, &resolution::by_task_prefix);
        sdg = resolution::aggregate(&sdg, &resolution::by_task_prefix);
        println!("  (task groups aggregated by numeric-suffix prefix)");
    }
    println!(
        "  FTG: {} nodes / {} edges;  SDG: {} nodes / {} edges",
        ftg.nodes.len(),
        ftg.edges.len(),
        sdg.nodes.len(),
        sdg.edges.len()
    );
    println!("\nfindings ({}):", analysis.findings.len());
    for f in &analysis.findings {
        println!("  [{}] {f:?}", f.category());
    }
    println!("\n{}", dayu_advisor::report(&recommendations));

    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create out dir");
        for (g, name) in [(&ftg, "ftg"), (&sdg, "sdg")] {
            std::fs::write(dir.join(format!("{name}.dot")), export::to_dot(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.html")), export::to_html(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.json")), export::to_json(g)).unwrap();
        }
        println!("graphs written to {}/", dir.display());
    }
}
