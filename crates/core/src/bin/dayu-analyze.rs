//! Offline analysis of a persisted DaYu trace — the post-execution half of
//! the toolset: point it at a `trace.jsonl` produced by any instrumented
//! run and get the graphs, findings and recommendations.
//!
//! ```text
//! dayu-analyze trace.jsonl                 # summary to stdout
//! dayu-analyze trace.dtb                   # binary traces auto-detected
//! dayu-analyze trace.bin --format binary   # ...or forced explicitly
//! dayu-analyze trace.jsonl --out report/   # + FTG/SDG html/dot/json
//! dayu-analyze trace.jsonl --regions 8     # address-region nodes
//! dayu-analyze trace.jsonl --aggregate     # collapse parallel task groups
//! dayu-analyze check trace.jsonl           # dataflow-hazard lint (exit 1 on findings)
//! dayu-analyze check trace.jsonl --inputs a.h5,b.h5   # declared external inputs
//! dayu-analyze check trace.dtb --json --deny extent-race --deny use-after-close
//!                                          # CI gate: exit 1 only on denied classes
//! dayu-analyze check trace.dtb --waste     # also report dead datasets / redundant overwrites
//! dayu-analyze check --contracts ddmd      # static contract pass alone: prove/refute the
//!                                          # declared footprints, no trace needed
//! dayu-analyze check trace.jsonl --contracts ddmd --deny contract-violation
//!                                          # + replay the trace against the declared
//!                                          # contracts (out-of-footprint I/O, waste)
//! dayu-analyze record ddmd                 # record a built-in workload, analyze it
//! dayu-analyze record ddmd --format binary --out run/    # persist as trace.dtb
//! dayu-analyze record arldm --chaos-seed 7 --retries 3 --fault-rate 0.05 --out run/
//! dayu-analyze record ddmd --crash-seed 11 --crash-at 40 --durability journal --resume
//!                                          # torn-write crash + journaled recovery resume
//! ```
//!
//! `record` executes one of the paper's workloads under full
//! instrumentation — optionally under seeded chaos injection with retry,
//! or a seeded torn-write power-loss crash — prints per-task outcomes,
//! audits every surviving file image with fsck, and analyzes whatever
//! trace survived. Exit status:
//!
//! * `0` — every task completed and every file image is fsck-clean
//!   (tasks that resumed from journal recovery still count as clean:
//!   their traces are complete and carry a `Recovered` marker);
//! * `3` — degraded: at least one task exhausted its retries and its
//!   trace is a salvaged fragment, but every surviving image is intact
//!   or repairable (`dayu-h5ls --fsck --repair` can rebuild it);
//! * `4` — unrecoverable corruption: at least one surviving file image
//!   has no valid superblock slot, so no metadata can be trusted and
//!   repair cannot rebuild it.

use dayu_analyzer::{export, resolution, Analysis, DetectorConfig, SdgOptions};
use dayu_hdf::Durability;
use dayu_lint::{
    analyze_contracts, analyze_stream, check_conformance_stream, fsck_bytes, repair_bytes, Finding,
    LintConfig,
};
use dayu_trace::{TraceBundle, TraceFormat};
use dayu_vfd::{CrashSchedule, FaultSchedule, MemFs};
use dayu_workflow::{record_opts, RecordOptions, RetryPolicy, WorkflowSpec};
use dayu_workloads::{arldm, ddmd, pyflextrkr};
use std::io::BufReader;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: dayu-analyze <trace.{{jsonl|dtb}}> [--format jsonl|binary] [--out DIR]\n                           [--regions N] [--aggregate]\n       dayu-analyze check [<trace.{{jsonl|dtb}}>] [--inputs FILE,FILE,...] [--json]\n                           [--deny CLASS]... [--waste]\n                           [--contracts <ddmd|pyflextrkr|arldm>]\n                           (a trace, --contracts, or both; --contracts alone runs\n                            the static footprint pass, with a trace it also checks\n                            conformance)\n       dayu-analyze record <ddmd|pyflextrkr|arldm> [--chaos-seed N] [--retries N]\n                           [--fault-rate P] [--dead-at N] [--crash-seed N] [--crash-at N]\n                           [--durability journal|write-through] [--resume]\n                           [--format jsonl|binary] [--out DIR]\n       record exits 0 (clean), 3 (degraded trace), 4 (unrecoverable corruption)"
    );
    std::process::exit(2);
}

/// `dayu-analyze record`: run a built-in workload under instrumentation
/// (and optionally chaos), report per-task outcomes, analyze the result.
fn record_main(args: Vec<String>) -> ! {
    let mut workload: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut retries: u32 = 3;
    let mut fault_rate: f64 = 0.0;
    let mut dead_at: Option<u64> = None;
    let mut crash_seed: Option<u64> = None;
    let mut crash_at: Option<u64> = None;
    let mut durability = Durability::default();
    let mut resume = false;
    let mut format = TraceFormat::Jsonl;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--format" => format = parse_format(args.next()),
            "--chaos-seed" => {
                chaos_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--crash-seed" => {
                crash_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--crash-at" => {
                crash_at = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--durability" => {
                durability = match args.next().as_deref() {
                    Some("journal") => Durability::Journal,
                    Some("write-through") => Durability::WriteThrough,
                    _ => usage(),
                }
            }
            "--resume" => resume = true,
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--fault-rate" => {
                fault_rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dead-at" => {
                dead_at = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-h" | "--help" => usage(),
            w if workload.is_none() => workload = Some(w.to_owned()),
            _ => usage(),
        }
    }
    let Some(workload) = workload else { usage() };

    let fs = MemFs::new();
    if workload == "pyflextrkr" {
        pyflextrkr::prepare_inputs_untraced(&fs, &pyflextrkr::PyflextrkrConfig::default())
            .unwrap_or_else(|e| {
                eprintln!("cannot prepare pyflextrkr inputs: {e}");
                std::process::exit(1);
            });
    }
    let spec: WorkflowSpec = workload_spec(&workload);

    let chaos = chaos_seed.map(|seed| {
        let mut s = FaultSchedule::new(seed).with_fault_prob(fault_rate);
        if let Some(op) = dead_at {
            s = s.with_dead_at(op);
        }
        s
    });
    let crash = crash_seed.map(|seed| {
        let mut s = CrashSchedule::new(seed).torn();
        if let Some(op) = crash_at {
            s = s.with_crash_at(op);
        }
        s
    });
    let opts = RecordOptions {
        retry: RetryPolicy::default().attempts(retries),
        chaos,
        crash,
        durability,
        resume,
        ..RecordOptions::default()
    };
    let run = record_opts(&spec, &fs, &opts).unwrap_or_else(|e| {
        eprintln!("record failed: {e}");
        std::process::exit(1);
    });

    println!("workload {workload}: {} task(s)", run.outcomes.len());
    if let Some(seed) = chaos_seed {
        println!("  chaos seed {seed:#018x}, retries {retries}, fault rate {fault_rate}");
    }
    if let Some(seed) = crash_seed {
        println!(
            "  crash seed {seed:#018x} (torn writes), durability {durability:?}, resume {resume}"
        );
    }
    println!(
        "  {:<24} {:>8} {:>7} {:>9} {:>9}  error",
        "task", "attempts", "faults", "degraded", "recovered"
    );
    for o in &run.outcomes {
        println!(
            "  {:<24} {:>8} {:>7} {:>9} {:>9}  {}",
            o.task,
            o.attempts,
            o.faults_injected,
            if o.degraded { "yes" } else { "-" },
            if o.recovered() { "yes" } else { "-" },
            o.error.as_deref().unwrap_or("-"),
        );
    }

    // Audit every surviving file image: a degraded run's salvage is only
    // trustworthy if the bytes it points at still parse, and a crashed
    // run must distinguish repairable torn state from total loss.
    let mut unrecoverable: Vec<String> = Vec::new();
    let mut repairable: Vec<String> = Vec::new();
    let mut names = fs.list();
    names.sort();
    for name in &names {
        let Some(bytes) = fs.snapshot(name) else {
            continue;
        };
        // A created-but-never-written file carries no data to audit.
        if bytes.is_empty() || fsck_bytes(&bytes).is_clean() {
            continue;
        }
        let mut scratch = bytes.clone();
        if repair_bytes(&mut scratch).is_clean() {
            repairable.push(name.clone());
        } else {
            unrecoverable.push(name.clone());
        }
    }
    if !repairable.is_empty() || !unrecoverable.is_empty() {
        println!("\nfile image audit:");
        for name in &repairable {
            println!("  {name}: corrupt, repairable (dayu-h5ls --fsck --repair)");
        }
        for name in &unrecoverable {
            println!("  {name}: UNRECOVERABLE (no valid superblock slot)");
        }
    }

    let analysis = Analysis::run(&run.bundle);
    let recommendations = dayu_advisor::advise(&analysis.findings);
    println!(
        "\nFTG: {} nodes / {} edges;  SDG: {} nodes / {} edges;  findings: {}",
        analysis.ftg.nodes.len(),
        analysis.ftg.edges.len(),
        analysis.sdg.nodes.len(),
        analysis.sdg.edges.len(),
        analysis.findings.len()
    );
    println!("\n{}", dayu_advisor::report(&recommendations));

    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create out dir");
        let trace_name = format!("trace.{}", format.extension());
        let mut f = std::fs::File::create(dir.join(&trace_name)).expect("create trace file");
        run.bundle.save(&mut f, format).expect("write trace file");
        // Dump every file image the run left behind (including ones a
        // killed or degraded task only partially wrote) so the format fsck
        // (`dayu-h5ls --fsck`) can audit them offline.
        let mut names = fs.list();
        names.sort();
        for name in names {
            if let Some(bytes) = fs.snapshot(&name) {
                std::fs::write(dir.join(name.replace('/', "_")), bytes).expect("dump image");
            }
        }
        println!("trace and file images written to {}/", dir.display());
    }

    std::process::exit(if !unrecoverable.is_empty() {
        4
    } else if run.degraded() {
        3
    } else {
        0
    });
}

/// Builds a bundled workload's spec, contracts included. The same specs
/// `record` executes, so a recorded trace lines up with the contracts
/// task-for-task.
fn workload_spec(name: &str) -> WorkflowSpec {
    match name {
        "ddmd" => ddmd::workflow(&ddmd::DdmdConfig::default()),
        "pyflextrkr" => pyflextrkr::workflow(&pyflextrkr::PyflextrkrConfig::default()),
        "arldm" => arldm::workflow(&arldm::ArldmConfig::default()),
        other => {
            eprintln!("unknown workload {other:?} (expected ddmd, pyflextrkr or arldm)");
            usage()
        }
    }
}

/// Reads a trace in either persistence format. `forced` pins the decoder;
/// otherwise the format is sniffed from the first byte ([`TraceFormat::detect`]).
fn load_bundle(input: &PathBuf, forced: Option<TraceFormat>) -> TraceBundle {
    let file = std::fs::File::open(input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", input.display());
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let parsed = match forced {
        Some(TraceFormat::Jsonl) => TraceBundle::read_jsonl(reader),
        Some(TraceFormat::Binary) => TraceBundle::read_binary(reader),
        None => TraceBundle::load(reader),
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", input.display());
        std::process::exit(1);
    })
}

fn parse_format(v: Option<String>) -> TraceFormat {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

/// `dayu-analyze check`: static dataflow-hazard lint over a recorded
/// trace, streamed record-by-record in either persistence format (the
/// checker never materializes the bundle, so multi-gigabyte `.dtb`
/// traces lint in bounded memory).
///
/// `--contracts <workload>` adds the symbolic passes: the static
/// footprint analysis always runs (it needs no trace — `check
/// --contracts ddmd` with no input proves or refutes the declared
/// partition by itself), and when a trace is given it is also replayed
/// against the contracts for conformance (out-of-footprint I/O,
/// declared-but-never-touched waste).
///
/// Exit codes, designed for CI gating: 0 — no denied findings; 1 — at
/// least one denied finding (`--deny <class>` restricts which classes
/// fail the run; no `--deny` denies every class); 2 — usage error,
/// including an unknown `--deny` class.
fn check_main(args: Vec<String>) -> ! {
    let mut input: Option<PathBuf> = None;
    let mut cfg = LintConfig::default();
    let mut json = false;
    let mut deny: Vec<String> = Vec::new();
    let mut contracts: Option<String> = None;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--inputs" => {
                let list = args.next().unwrap_or_else(|| usage());
                cfg.external_inputs = Some(
                    list.split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect(),
                );
            }
            "--json" => json = true,
            "--waste" => cfg.report_dead_data = true,
            "--contracts" => contracts = Some(args.next().unwrap_or_else(|| usage())),
            "--deny" => {
                let class = args.next().unwrap_or_else(|| usage());
                if !Finding::categories().contains(&class.as_str()) {
                    eprintln!(
                        "unknown finding class {class:?}; expected one of: {}",
                        Finding::categories().join(", ")
                    );
                    std::process::exit(2);
                }
                deny.push(class);
            }
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let spec = contracts.as_deref().map(workload_spec);
    if input.is_none() && spec.is_none() {
        usage()
    }

    let mut report = dayu_lint::Report::new();
    let mut records = 0u64;
    // Static contract pass: spec + happens-before alone, before any trace.
    if let Some(spec) = &spec {
        report
            .findings
            .extend(analyze_contracts(spec, &cfg).findings);
    }
    if let Some(input) = &input {
        let open = || {
            std::fs::File::open(input).unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", input.display());
                std::process::exit(1);
            })
        };
        let (hazards, n) = analyze_stream(BufReader::new(open()), &cfg).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", input.display());
            std::process::exit(1);
        });
        records = n;
        report.findings.extend(hazards.findings);
        // Conformance: replay the same trace against the declarations.
        if let Some(spec) = &spec {
            let (conf, _) =
                check_conformance_stream(BufReader::new(open()), spec).unwrap_or_else(|e| {
                    eprintln!("cannot parse {}: {e}", input.display());
                    std::process::exit(1);
                });
            report.findings.extend(conf.findings);
        }
    }

    let denied = report.denied(&deny);
    let source = match (&input, &contracts) {
        (Some(p), Some(w)) => format!("{} + contracts:{w}", p.display()),
        (Some(p), None) => p.display().to_string(),
        (None, Some(w)) => format!("contracts:{w} (static only)"),
        (None, None) => unreachable!(),
    };
    if json {
        println!("{}", report.to_json());
    } else if report.is_clean() {
        println!("{source}: no findings ({records} records checked)");
    } else {
        println!(
            "{source}: {} finding(s), {} denied",
            report.len(),
            denied.len()
        );
        for f in &report.findings {
            println!("  [{}] {f}", f.category());
        }
    }
    std::process::exit(if denied.is_empty() { 0 } else { 1 });
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("check") {
        check_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("record") {
        record_main(raw[1..].to_vec());
    }
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut regions: u64 = 0;
    let mut aggregate = false;
    let mut forced: Option<TraceFormat> = None;
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--regions" => {
                regions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--aggregate" => aggregate = true,
            "--format" => forced = Some(parse_format(args.next())),
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let bundle = load_bundle(&input, forced);

    let sdg_opts = SdgOptions {
        include_regions: regions > 0,
        region_count: regions.max(4),
    };
    let analysis = Analysis::run_with(&bundle, &sdg_opts, &DetectorConfig::default());
    let recommendations = dayu_advisor::advise(&analysis.findings);

    println!("workflow {:?}", bundle.meta.workflow);
    println!(
        "  tasks: {}, object records: {}, low-level ops: {}, files: {}",
        bundle.meta.task_order.len(),
        bundle.vol.len(),
        bundle.vfd.len(),
        bundle.files.len()
    );
    let (mut ftg, mut sdg) = (analysis.ftg, analysis.sdg);
    if aggregate {
        ftg = resolution::aggregate(&ftg, &resolution::by_task_prefix);
        sdg = resolution::aggregate(&sdg, &resolution::by_task_prefix);
        println!("  (task groups aggregated by numeric-suffix prefix)");
    }
    println!(
        "  FTG: {} nodes / {} edges;  SDG: {} nodes / {} edges",
        ftg.nodes.len(),
        ftg.edges.len(),
        sdg.nodes.len(),
        sdg.edges.len()
    );
    println!("\nfindings ({}):", analysis.findings.len());
    for f in &analysis.findings {
        println!("  [{}] {f:?}", f.category());
    }
    println!("\n{}", dayu_advisor::report(&recommendations));

    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create out dir");
        for (g, name) in [(&ftg, "ftg"), (&sdg, "sdg")] {
            std::fs::write(dir.join(format!("{name}.dot")), export::to_dot(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.html")), export::to_html(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.json")), export::to_json(g)).unwrap();
        }
        println!("graphs written to {}/", dir.display());
    }
}
