//! Offline analysis of a persisted DaYu trace — the post-execution half of
//! the toolset: point it at a `trace.jsonl` produced by any instrumented
//! run and get the graphs, findings and recommendations.
//!
//! ```text
//! dayu-analyze trace.jsonl                 # summary to stdout
//! dayu-analyze trace.dtb                   # binary traces auto-detected
//! dayu-analyze trace.bin --format binary   # ...or forced explicitly
//! dayu-analyze trace.jsonl --out report/   # + FTG/SDG html/dot/json
//! dayu-analyze trace.jsonl --regions 8     # address-region nodes
//! dayu-analyze trace.jsonl --aggregate     # collapse parallel task groups
//! dayu-analyze check trace.jsonl           # dataflow-hazard lint (exit 1 on findings)
//! dayu-analyze check trace.jsonl --inputs a.h5,b.h5   # declared external inputs
//! dayu-analyze check trace.dtb --json --deny extent-race --deny use-after-close
//!                                          # CI gate: exit 1 only on denied classes
//! dayu-analyze check trace.dtb --waste     # also report dead datasets / redundant overwrites
//! dayu-analyze check --contracts ddmd      # static contract pass alone: prove/refute the
//!                                          # declared footprints, no trace needed
//! dayu-analyze predict ddmd                # contract-derived sSDG/sFTG + abstract cost
//!                                          # model: per-stage bytes/ops, critical path
//! dayu-analyze predict ddmd --io-engine batched    # op counts under coalescing
//! dayu-analyze predict ddmd --compare run/trace.jsonl --deny incomplete-contract
//!                                          # CI gate: recorded SDG must be contained in
//!                                          # the prediction (exit 1 on contract holes)
//! dayu-analyze check trace.jsonl --contracts ddmd --deny contract-violation
//!                                          # + replay the trace against the declared
//!                                          # contracts (out-of-footprint I/O, waste)
//! dayu-analyze record ddmd                 # record a built-in workload, analyze it
//! dayu-analyze record ddmd --format binary --out run/    # persist as trace.dtb
//! dayu-analyze record arldm --chaos-seed 7 --retries 3 --fault-rate 0.05 --out run/
//! dayu-analyze record ddmd --crash-seed 11 --crash-at 40 --durability journal --resume
//!                                          # torn-write crash + journaled recovery resume
//! dayu-analyze record ddmd --bundle run.drb    # + self-contained replay bundle
//! dayu-analyze bundle verify run.drb       # hash-chain check, no re-execution
//! dayu-analyze replay run.drb              # re-execute + cross-check op-by-op
//! dayu-analyze diff a.drb b.drb [--json]   # first divergent event + SDG ancestors
//! dayu-analyze serve --idle-shutdown-ms 60000   # streaming-ingest service (quarantine,
//!                                          # budgets, live per-tenant FTG/SDG)
//! dayu-analyze ingest run/trace.dtb --addr 127.0.0.1:7474   # stream a trace into it
//! ```
//!
//! `record` executes one of the paper's workloads under full
//! instrumentation — optionally under seeded chaos injection with retry,
//! or a seeded torn-write power-loss crash — prints per-task outcomes,
//! audits every surviving file image with fsck, and analyzes whatever
//! trace survived. Exit status:
//!
//! * `0` — every task completed and every file image is fsck-clean
//!   (tasks that resumed from journal recovery still count as clean:
//!   their traces are complete and carry a `Recovered` marker);
//! * `3` — degraded: at least one task exhausted its retries and its
//!   trace is a salvaged fragment, but every surviving image is intact
//!   or repairable (`dayu-h5ls --fsck --repair` can rebuild it);
//! * `4` — unrecoverable corruption: at least one surviving file image
//!   has no valid superblock slot, so no metadata can be trusted and
//!   repair cannot rebuild it.
//!
//! On the failure exits (3/4) `record` automatically emits a replay
//! bundle and prints the exact command line that reproduces the run —
//! same seeds, schedule and durability — so the failure travels as one
//! artifact. `replay` re-executes a bundle under a cross-checking driver
//! stack (exit 0: validated, 5: diverged); `diff` compares two bundles
//! and names the first divergent event plus its SDG causal ancestors
//! (exit 0: identical, 1: diverged).

use dayu_analyzer::{export, resolution, Analysis, DetectorConfig, SdgOptions};
use dayu_hdf::Durability;
use dayu_lint::{
    analyze_contracts, analyze_stream, check_conformance_stream, cost_model, fsck_bytes,
    repair_bytes, CostConfig, Finding, LintConfig, StaticPrediction,
};
use dayu_trace::{TraceBundle, TraceFormat};
use dayu_vfd::{CrashSchedule, FaultSchedule, IoEngineConfig, IoEngineMode, MemFs};
use dayu_workflow::{
    record_to_bundle, replay_bundle, with_manual_clock, RecordOptions, ReplayBundle, RetryPolicy,
    WorkflowSpec,
};
use dayu_workloads::{arldm, ddmd, pyflextrkr};
use std::io::BufReader;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: dayu-analyze <trace.{{jsonl|dtb}}> [--format jsonl|binary] [--out DIR]\n                           [--regions N] [--aggregate]\n       dayu-analyze check [<trace.{{jsonl|dtb}}>] [--inputs FILE,FILE,...] [--json]\n                           [--deny CLASS]... [--waste]\n                           [--contracts <ddmd|pyflextrkr|arldm>]\n                           (a trace, --contracts, or both; --contracts alone runs\n                            the static footprint pass, with a trace it also checks\n                            conformance)\n       dayu-analyze predict <ddmd|pyflextrkr|arldm> [--json] [--io-engine scalar|batched]\n                           [--compare <trace.{{jsonl|dtb}}>] [--deny CLASS]...\n                           (contract-derived static sSDG/sFTG + abstract cost model;\n                            --compare validates a recorded trace against the prediction,\n                            unpredicted raw edges are incomplete-contract findings)\n       dayu-analyze record <ddmd|pyflextrkr|arldm> [--chaos-seed N] [--retries N]\n                           [--fault-rate P] [--dead-at N] [--crash-seed N] [--crash-at N]\n                           [--durability journal|write-through] [--resume]\n                           [--io-engine scalar|batched] [--queue-depth N]\n                           [--readahead N] [--no-coalesce]\n                           [--manual-clock] [--bundle FILE.drb]\n                           [--format jsonl|binary] [--out DIR]\n       record exits 0 (clean), 3 (degraded trace), 4 (unrecoverable corruption);\n       on 3/4 a replay bundle is auto-emitted with the reproduction command\n       dayu-analyze bundle verify <run.drb>    # hash-chain check, no re-execution\n       dayu-analyze replay <run.drb>           # re-execute + cross-check (exit 5: diverged)\n       dayu-analyze diff <a.drb> <b.drb> [--json]   # first divergence + SDG ancestors
       dayu-analyze serve [--addr HOST:PORT] [--idle-shutdown-ms N]
                           [--max-tenants N] [--sections-per-sec R]
                           # resilient streaming-ingest service: quarantine,
                           # budgets/backpressure, live per-tenant graphs
       dayu-analyze ingest <trace.{{jsonl|dtb}}> [--addr HOST:PORT] [--tenant NAME]
                           [--format jsonl|binary]   # stream a trace in per-task
                           # sections (digest-framed, deduplicated, retried)"
    );
    std::process::exit(2);
}

/// `dayu-analyze record`: run a built-in workload under instrumentation
/// (and optionally chaos), report per-task outcomes, analyze the result.
fn record_main(args: Vec<String>) -> ! {
    let mut workload: Option<String> = None;
    let mut out: Option<PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut retries: u32 = 3;
    let mut fault_rate: f64 = 0.0;
    let mut dead_at: Option<u64> = None;
    let mut crash_seed: Option<u64> = None;
    let mut crash_at: Option<u64> = None;
    let mut durability = Durability::default();
    let mut resume = false;
    let mut io_engine = IoEngineConfig::default();
    let mut manual_clock = false;
    let mut bundle_path: Option<PathBuf> = None;
    let mut format = TraceFormat::Jsonl;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--bundle" => bundle_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--manual-clock" => manual_clock = true,
            "--format" => format = parse_format(args.next()),
            "--chaos-seed" => {
                chaos_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--crash-seed" => {
                crash_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--crash-at" => {
                crash_at = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--durability" => {
                durability = match args.next().as_deref() {
                    Some("journal") => Durability::Journal,
                    Some("write-through") => Durability::WriteThrough,
                    _ => usage(),
                }
            }
            "--resume" => resume = true,
            "--io-engine" => {
                io_engine.mode = match args.next().as_deref() {
                    Some("scalar") => IoEngineMode::Scalar,
                    Some("batched") => IoEngineMode::Batched,
                    _ => usage(),
                }
            }
            "--queue-depth" => {
                let depth: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                io_engine = io_engine.with_queue_depth(depth);
            }
            "--readahead" => {
                let chunks: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                io_engine = io_engine.with_readahead(chunks);
            }
            "--no-coalesce" => io_engine = io_engine.with_coalesce(false),
            "--retries" => {
                retries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--fault-rate" => {
                fault_rate = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dead-at" => {
                dead_at = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "-h" | "--help" => usage(),
            w if workload.is_none() => workload = Some(w.to_owned()),
            _ => usage(),
        }
    }
    let Some(workload) = workload else { usage() };

    let fs = MemFs::new();
    if workload == "pyflextrkr" {
        pyflextrkr::prepare_inputs_untraced(&fs, &pyflextrkr::PyflextrkrConfig::default())
            .unwrap_or_else(|e| {
                eprintln!("cannot prepare pyflextrkr inputs: {e}");
                std::process::exit(1);
            });
    }
    let spec: WorkflowSpec = workload_spec(&workload);

    let chaos = chaos_seed.map(|seed| {
        let mut s = FaultSchedule::new(seed).with_fault_prob(fault_rate);
        if let Some(op) = dead_at {
            s = s.with_dead_at(op);
        }
        s
    });
    let crash = crash_seed.map(|seed| {
        let mut s = CrashSchedule::new(seed).torn();
        if let Some(op) = crash_at {
            s = s.with_crash_at(op);
        }
        s
    });
    let mut opts = RecordOptions {
        retry: RetryPolicy::default().attempts(retries),
        chaos,
        crash,
        durability,
        resume,
        io_engine,
        ..RecordOptions::default()
    };
    if manual_clock {
        opts = with_manual_clock(opts);
    }

    // The flag string doubles as the bundle's params field and (with the
    // workload and a bundle path) the exact reproduction command line.
    let mut flags: Vec<String> = Vec::new();
    if let Some(seed) = chaos_seed {
        flags.push(format!("--chaos-seed {seed}"));
        if fault_rate != 0.0 {
            flags.push(format!("--fault-rate {fault_rate}"));
        }
        if let Some(op) = dead_at {
            flags.push(format!("--dead-at {op}"));
        }
    }
    if let Some(seed) = crash_seed {
        flags.push(format!("--crash-seed {seed}"));
        if let Some(op) = crash_at {
            flags.push(format!("--crash-at {op}"));
        }
    }
    if retries != 3 {
        flags.push(format!("--retries {retries}"));
    }
    if durability != Durability::default() {
        flags.push("--durability journal".into());
    }
    if resume {
        flags.push("--resume".into());
    }
    if io_engine.is_batched() {
        flags.push("--io-engine batched".into());
        let defaults = IoEngineConfig::batched();
        if io_engine.queue_depth != defaults.queue_depth {
            flags.push(format!("--queue-depth {}", io_engine.queue_depth));
        }
        if io_engine.readahead_chunks != defaults.readahead_chunks {
            flags.push(format!("--readahead {}", io_engine.readahead_chunks));
        }
        if !io_engine.coalesce {
            flags.push("--no-coalesce".into());
        }
    }
    if manual_clock {
        flags.push("--manual-clock".into());
    }
    let flags = flags.join(" ");
    let params = if flags.is_empty() {
        "default".to_owned()
    } else {
        flags.clone()
    };

    let (run, drb) = record_to_bundle(
        &spec,
        &fs,
        &opts,
        params,
        env!("CARGO_PKG_VERSION"),
        manual_clock,
    )
    .unwrap_or_else(|e| {
        eprintln!("record failed: {e}");
        std::process::exit(1);
    });

    println!("workload {workload}: {} task(s)", run.outcomes.len());
    if let Some(seed) = chaos_seed {
        println!("  chaos seed {seed:#018x}, retries {retries}, fault rate {fault_rate}");
    }
    if let Some(seed) = crash_seed {
        println!(
            "  crash seed {seed:#018x} (torn writes), durability {durability:?}, resume {resume}"
        );
    }
    println!(
        "  {:<24} {:>8} {:>7} {:>9} {:>9}  error",
        "task", "attempts", "faults", "degraded", "recovered"
    );
    for o in &run.outcomes {
        println!(
            "  {:<24} {:>8} {:>7} {:>9} {:>9}  {}",
            o.task,
            o.attempts,
            o.faults_injected,
            if o.degraded { "yes" } else { "-" },
            if o.recovered() { "yes" } else { "-" },
            o.error.as_deref().unwrap_or("-"),
        );
    }

    // Audit every surviving file image: a degraded run's salvage is only
    // trustworthy if the bytes it points at still parse, and a crashed
    // run must distinguish repairable torn state from total loss.
    let mut unrecoverable: Vec<String> = Vec::new();
    let mut repairable: Vec<String> = Vec::new();
    let mut names = fs.list();
    names.sort();
    for name in &names {
        let Some(bytes) = fs.snapshot(name) else {
            continue;
        };
        // A created-but-never-written file carries no data to audit.
        if bytes.is_empty() || fsck_bytes(&bytes).is_clean() {
            continue;
        }
        let mut scratch = bytes.clone();
        if repair_bytes(&mut scratch).is_clean() {
            repairable.push(name.clone());
        } else {
            unrecoverable.push(name.clone());
        }
    }
    if !repairable.is_empty() || !unrecoverable.is_empty() {
        println!("\nfile image audit:");
        for name in &repairable {
            println!("  {name}: corrupt, repairable (dayu-h5ls --fsck --repair)");
        }
        for name in &unrecoverable {
            println!("  {name}: UNRECOVERABLE (no valid superblock slot)");
        }
    }

    let analysis = Analysis::run(&run.bundle);
    let recommendations = dayu_advisor::advise(&analysis.findings);
    println!(
        "\nFTG: {} nodes / {} edges;  SDG: {} nodes / {} edges;  findings: {}",
        analysis.ftg.nodes.len(),
        analysis.ftg.edges.len(),
        analysis.sdg.nodes.len(),
        analysis.sdg.edges.len(),
        analysis.findings.len()
    );
    println!("\n{}", dayu_advisor::report(&recommendations));

    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).expect("create out dir");
        let trace_name = format!("trace.{}", format.extension());
        let mut f = std::fs::File::create(dir.join(&trace_name)).expect("create trace file");
        run.bundle.save(&mut f, format).expect("write trace file");
        // Dump every file image the run left behind (including ones a
        // killed or degraded task only partially wrote) so the format fsck
        // (`dayu-h5ls --fsck`) can audit them offline.
        let mut names = fs.list();
        names.sort();
        for name in names {
            if let Some(bytes) = fs.snapshot(&name) {
                std::fs::write(dir.join(name.replace('/', "_")), bytes).expect("dump image");
            }
        }
        println!("trace and file images written to {}/", dir.display());
    }

    let code = if !unrecoverable.is_empty() {
        4
    } else if run.degraded() {
        3
    } else {
        0
    };

    // A failure exit always leaves a bundle behind: the degraded or
    // corrupt run travels as one self-contained, replayable artifact.
    let emit_path = bundle_path.or_else(|| {
        (code != 0).then(|| match &out {
            Some(dir) => dir.join("failure.drb"),
            None => PathBuf::from(format!("{workload}-failure.drb")),
        })
    });
    if let Some(path) = emit_path {
        drb.write_file(&path).unwrap_or_else(|e| {
            eprintln!("cannot write bundle {}: {e}", path.display());
            std::process::exit(1);
        });
        println!("\nreplay bundle written to {}", path.display());
        if code != 0 {
            let sep = if flags.is_empty() { "" } else { " " };
            println!(
                "reproduce with:\n  dayu-analyze record {workload}{sep}{flags} --bundle {}",
                path.display()
            );
            println!("  dayu-analyze replay {}", path.display());
        }
    }

    std::process::exit(code);
}

/// Builds a bundled workload's spec, contracts included. The same specs
/// `record` executes, so a recorded trace lines up with the contracts
/// task-for-task.
fn workload_spec(name: &str) -> WorkflowSpec {
    match name {
        "ddmd" => ddmd::workflow(&ddmd::DdmdConfig::default()),
        "pyflextrkr" => pyflextrkr::workflow(&pyflextrkr::PyflextrkrConfig::default()),
        "arldm" => arldm::workflow(&arldm::ArldmConfig::default()),
        other => {
            eprintln!("unknown workload {other:?} (expected ddmd, pyflextrkr or arldm)");
            usage()
        }
    }
}

/// Reads a trace in either persistence format. `forced` pins the decoder;
/// otherwise the format is sniffed from the first byte ([`TraceFormat::detect`]).
fn load_bundle(input: &PathBuf, forced: Option<TraceFormat>) -> TraceBundle {
    let file = std::fs::File::open(input).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", input.display());
        std::process::exit(1);
    });
    let reader = BufReader::new(file);
    let parsed = match forced {
        Some(TraceFormat::Jsonl) => TraceBundle::read_jsonl(reader),
        Some(TraceFormat::Binary) => TraceBundle::read_binary(reader),
        None => TraceBundle::load(reader),
    };
    parsed.unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", input.display());
        std::process::exit(1);
    })
}

fn parse_format(v: Option<String>) -> TraceFormat {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
}

/// `dayu-analyze check`: static dataflow-hazard lint over a recorded
/// trace, streamed record-by-record in either persistence format (the
/// checker never materializes the bundle, so multi-gigabyte `.dtb`
/// traces lint in bounded memory).
///
/// `--contracts <workload>` adds the symbolic passes: the static
/// footprint analysis always runs (it needs no trace — `check
/// --contracts ddmd` with no input proves or refutes the declared
/// partition by itself), and when a trace is given it is also replayed
/// against the contracts for conformance (out-of-footprint I/O,
/// declared-but-never-touched waste).
///
/// Exit codes, designed for CI gating: 0 — no denied findings; 1 — at
/// least one denied finding (`--deny <class>` restricts which classes
/// fail the run; no `--deny` denies every class); 2 — usage error,
/// including an unknown `--deny` class.
fn check_main(args: Vec<String>) -> ! {
    let mut input: Option<PathBuf> = None;
    let mut cfg = LintConfig::default();
    let mut json = false;
    let mut deny: Vec<String> = Vec::new();
    let mut contracts: Option<String> = None;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--inputs" => {
                let list = args.next().unwrap_or_else(|| usage());
                cfg.external_inputs = Some(
                    list.split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect(),
                );
            }
            "--json" => json = true,
            "--waste" => cfg.report_dead_data = true,
            "--contracts" => contracts = Some(args.next().unwrap_or_else(|| usage())),
            "--deny" => {
                let class = args.next().unwrap_or_else(|| usage());
                if !Finding::categories().contains(&class.as_str()) {
                    eprintln!(
                        "unknown finding class {class:?}; expected one of: {}",
                        Finding::categories().join(", ")
                    );
                    std::process::exit(2);
                }
                deny.push(class);
            }
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let spec = contracts.as_deref().map(workload_spec);
    if input.is_none() && spec.is_none() {
        usage()
    }

    let mut report = dayu_lint::Report::new();
    let mut records = 0u64;
    // Static contract pass: spec + happens-before alone, before any trace.
    if let Some(spec) = &spec {
        report
            .findings
            .extend(analyze_contracts(spec, &cfg).findings);
    }
    if let Some(input) = &input {
        let open = || {
            std::fs::File::open(input).unwrap_or_else(|e| {
                eprintln!("cannot open {}: {e}", input.display());
                std::process::exit(1);
            })
        };
        let (hazards, n) = analyze_stream(BufReader::new(open()), &cfg).unwrap_or_else(|e| {
            eprintln!("cannot parse {}: {e}", input.display());
            std::process::exit(1);
        });
        records = n;
        report.findings.extend(hazards.findings);
        // Conformance: replay the same trace against the declarations.
        if let Some(spec) = &spec {
            let (conf, _) =
                check_conformance_stream(BufReader::new(open()), spec).unwrap_or_else(|e| {
                    eprintln!("cannot parse {}: {e}", input.display());
                    std::process::exit(1);
                });
            report.findings.extend(conf.findings);
        }
    }

    let denied = report.denied(&deny);
    let source = match (&input, &contracts) {
        (Some(p), Some(w)) => format!("{} + contracts:{w}", p.display()),
        (Some(p), None) => p.display().to_string(),
        (None, Some(w)) => format!("contracts:{w} (static only)"),
        (None, None) => unreachable!(),
    };
    if json {
        println!("{}", report.to_json());
    } else if report.is_clean() {
        println!("{source}: no findings ({records} records checked)");
    } else {
        println!(
            "{source}: {} finding(s), {} denied",
            report.len(),
            denied.len()
        );
        for f in &report.findings {
            println!("  [{}] {f}", f.category());
        }
    }
    std::process::exit(if denied.is_empty() { 0 } else { 1 });
}

/// `dayu-analyze predict`: static dataflow prediction — abstract
/// interpretation of the workload's declared contracts builds the sSDG
/// and sFTG without opening a single VFD, and the abstract cost model
/// prices every task, stage and the symbolic critical path under the
/// chosen I/O engine.
///
/// `--compare <trace>` additionally builds the *recorded* SDG from a
/// trace of the same workload and checks containment: every recorded
/// raw-data edge must have a static counterpart. A recorded edge the
/// contracts never predict is an `incomplete-contract` finding (a hole in
/// the declaration); a recorded task the spec does not know is a
/// `graph-mismatch`. Exit codes mirror `check`: 0 — no denied findings;
/// 1 — at least one denied finding; 2 — usage error.
fn predict_main(args: Vec<String>) -> ! {
    let mut workload: Option<String> = None;
    let mut compare: Option<PathBuf> = None;
    let mut json = false;
    let mut deny: Vec<String> = Vec::new();
    let mut cost_cfg = CostConfig::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--compare" => compare = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--io-engine" => {
                cost_cfg.engine = match args.next().as_deref() {
                    Some("scalar") => IoEngineConfig::default(),
                    Some("batched") => IoEngineConfig::batched(),
                    _ => usage(),
                }
            }
            "--deny" => {
                let class = args.next().unwrap_or_else(|| usage());
                if !Finding::categories().contains(&class.as_str()) {
                    eprintln!(
                        "unknown finding class {class:?}; expected one of: {}",
                        Finding::categories().join(", ")
                    );
                    std::process::exit(2);
                }
                deny.push(class);
            }
            "-h" | "--help" => usage(),
            w if workload.is_none() => workload = Some(w.to_owned()),
            _ => usage(),
        }
    }
    let Some(workload) = workload else { usage() };
    let spec = workload_spec(&workload);
    let pred = StaticPrediction::from_spec(&spec);
    let costs = cost_model(&pred, &cost_cfg);

    let comparison = compare.as_ref().map(|path| {
        let bundle = load_bundle(path, None);
        let analysis = Analysis::run(&bundle);
        pred.compare(&analysis.sdg)
    });

    if json {
        #[derive(serde::Serialize)]
        struct CompareJson {
            matched: usize,
            missing: usize,
            extra: usize,
            mismatched: usize,
            precision: f64,
            recall: f64,
            findings: Vec<String>,
        }
        #[derive(serde::Serialize)]
        struct PredictJson<'a> {
            workflow: &'a str,
            cost: &'a dayu_lint::CostReport,
            flows: &'a [dayu_lint::PredictedFlow],
            live_ranges: &'a [dayu_lint::LiveRange],
            compare: Option<CompareJson>,
        }
        let out = PredictJson {
            workflow: &workload,
            cost: &costs,
            flows: &pred.flows,
            live_ranges: &pred.live_ranges,
            compare: comparison.as_ref().map(|c| CompareJson {
                matched: c.matched,
                missing: c.missing,
                extra: c.extra,
                mismatched: c.mismatched,
                precision: c.precision(),
                recall: c.recall(),
                findings: c
                    .report
                    .findings
                    .iter()
                    .map(|f| format!("[{}] {f}", f.category()))
                    .collect(),
            }),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serialize prediction")
        );
    } else {
        let contracted = pred.tasks.iter().filter(|t| t.contracted).count();
        println!(
            "workflow {workload}: {} task(s) over {} stage(s); contracts cover {contracted}/{}",
            pred.tasks.len(),
            pred.stage_names.len(),
            pred.tasks.len()
        );
        println!(
            "sSDG: {} nodes / {} edges;  sFTG: {} nodes / {} edges;  flows: {};  live ranges: {}",
            pred.sdg.nodes.len(),
            pred.sdg.edges.len(),
            pred.ftg.nodes.len(),
            pred.ftg.edges.len(),
            pred.flows.len(),
            pred.live_ranges.len()
        );
        println!(
            "\npredicted cost ({} engine, {} B requests, {} B cache):",
            if cost_cfg.engine.is_batched() {
                "batched"
            } else {
                "scalar"
            },
            cost_cfg.request_bytes,
            cost_cfg.cache_bytes
        );
        println!(
            "  {:<20} {:>5} {:>12} {:>12} {:>7} {:>12}  heaviest task",
            "stage", "tasks", "read B", "written B", "ops", "working set"
        );
        for s in &costs.stages {
            println!(
                "  {:<20} {:>5} {:>12} {:>12} {:>7} {:>12}{} {} ({} B)",
                s.stage,
                s.tasks,
                s.bytes_read,
                s.bytes_written,
                s.ops,
                s.working_set,
                if s.over_cache { "!" } else { " " },
                s.critical_task,
                s.critical_bytes
            );
        }
        println!(
            "  total: {} B moved in {} predicted op(s)",
            costs.total_bytes, costs.total_ops
        );
        println!(
            "critical path ({} B): {}",
            costs.critical_path_bytes,
            costs.critical_path.join(" -> ")
        );
        if let (Some(c), Some(path)) = (&comparison, &compare) {
            println!(
                "\ncompare vs {}: {} matched, {} missing, {} extra, {} mismatched \
                 (precision {:.2}, recall {:.2})",
                path.display(),
                c.matched,
                c.missing,
                c.extra,
                c.mismatched,
                c.precision(),
                c.recall()
            );
            for f in &c.report.findings {
                println!("  [{}] {f}", f.category());
            }
            if c.is_sound() {
                println!("  prediction sound: every recorded raw-data edge was predicted");
            }
        }
    }

    let denied = comparison
        .map(|c| c.report.denied(&deny).len())
        .unwrap_or(0);
    std::process::exit(if denied == 0 { 0 } else { 1 });
}

/// Loads a replay bundle, turning every failure mode — missing file,
/// torn section, hash mismatch, malformed manifest — into a structured
/// one-line error instead of a panic.
fn load_drb(path: &PathBuf) -> ReplayBundle {
    ReplayBundle::read_file(path).unwrap_or_else(|e| {
        eprintln!("cannot load bundle {}: {e}", path.display());
        std::process::exit(1);
    })
}

/// `dayu-analyze bundle verify`: checks the section hash chain without
/// decoding or re-executing anything. Exit 0: intact; 1: rejected (with
/// the offending section named); 2: usage.
fn bundle_main(args: Vec<String>) -> ! {
    let [cmd, path] = args.as_slice() else {
        usage()
    };
    if cmd != "verify" {
        usage();
    }
    let path = PathBuf::from(path);
    match ReplayBundle::verify_file(&path) {
        Ok(report) => {
            println!("{}: bundle intact", path.display());
            for s in &report.sections {
                println!(
                    "  {:<24} {:>10} bytes  sha256:{}",
                    s.name, s.bytes, s.digest
                );
            }
            println!("  chain: {}", report.chain);
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{}: bundle verification failed: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// `dayu-analyze replay`: re-executes a bundle's workload under the
/// cross-checking driver stack and reports the verdict. Exit 0:
/// validated; 5: diverged or mismatched; 1: bundle unreadable.
fn replay_main(args: Vec<String>) -> ! {
    let [path] = args.as_slice() else { usage() };
    let path = PathBuf::from(path);
    let bundle = load_drb(&path);
    let m = &bundle.manifest;
    println!(
        "replaying {} (workload {}, params {:?}, recorded by v{})",
        path.display(),
        m.workload,
        m.params,
        m.tool_version
    );
    let spec = workload_spec(&m.workload);
    let fs = MemFs::new();
    let report = replay_bundle(&bundle, &spec, &fs).unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    if !report.op_checked {
        println!("  (sampled recording: op-by-op checking disabled, outcomes/images only)");
    }
    if report.validated() {
        println!(
            "replay validated: {} task(s), {} recorded op(s), zero divergences",
            report.run.outcomes.len(),
            bundle.trace.vfd.len()
        );
        std::process::exit(0);
    }
    if let Some(d) = &report.divergence {
        println!("OP DIVERGENCE: {d}");
    }
    for m in &report.mismatches {
        println!("MISMATCH: {m}");
    }
    std::process::exit(5);
}

/// `dayu-analyze diff`: compares two bundles' recorded operation streams
/// and reports the first divergent event with its causal SDG ancestors.
/// Exit 0: operationally identical; 1: diverged; 2: usage.
fn diff_main(args: Vec<String>) -> ! {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "-h" | "--help" => usage(),
            p => paths.push(PathBuf::from(p)),
        }
    }
    let [pa, pb] = paths.as_slice() else { usage() };
    let (a, b) = (load_drb(pa), load_drb(pb));
    let diff = dayu_analyzer::diff_traces(&a.trace, &b.trace);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&diff).expect("serialize diff")
        );
        std::process::exit(i32::from(!diff.is_empty()));
    }
    println!(
        "diff {} ({}) vs {} ({})",
        pa.display(),
        diff.workload_a,
        pb.display(),
        diff.workload_b
    );
    if diff.is_empty() {
        println!("  operation streams identical (timestamps ignored)");
        std::process::exit(0);
    }
    if let Some(first) = &diff.first {
        println!("first divergence: {}", first.detail);
        if !first.ancestors.is_empty() {
            println!(
                "  causal ancestors (SDG walk over run A):\n    tasks:    {}\n    datasets: {}\n    files:    {}",
                first.ancestors.tasks.join(", "),
                first.ancestors.datasets.join(", "),
                first.ancestors.files.join(", ")
            );
        } else {
            println!("  no upstream producers: the cause is local to the task");
        }
    }
    if !diff.diverged_tasks.is_empty() {
        println!("diverged tasks: {}", diff.diverged_tasks.join(", "));
    }
    if !diff.only_in_a.is_empty() {
        println!("tasks only in run A: {}", diff.only_in_a.join(", "));
    }
    if !diff.only_in_b.is_empty() {
        println!("tasks only in run B: {}", diff.only_in_b.join(", "));
    }
    if let Some(finding) = diff.finding() {
        let recs = dayu_advisor::advise(&[finding]);
        if !recs.is_empty() {
            println!("\n{}", dayu_advisor::report(&recs));
        }
    }
    std::process::exit(1);
}

/// `dayu-analyze serve`: run the resilient streaming-ingest service.
/// Workflows stream `.dtb` sections in over TCP; corrupt sections are
/// quarantined, over-budget tenants are shed, and each tenant's live graph
/// stays identical to the batch build of its accepted sections.
fn serve_main(args: Vec<String>) -> ! {
    let mut addr = "127.0.0.1:7474".to_owned();
    let mut idle_shutdown_ms: Option<u64> = None;
    let mut budgets = dayu_served::Budgets::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--idle-shutdown-ms" => {
                idle_shutdown_ms = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--max-tenants" => {
                budgets.max_tenants = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--sections-per-sec" => {
                budgets.sections_per_sec = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let service = std::sync::Arc::new(dayu_served::Served::new(budgets));
    let opts = dayu_served::ServerOptions {
        idle_shutdown: idle_shutdown_ms.map(std::time::Duration::from_millis),
        ..dayu_served::ServerOptions::default()
    };
    let server = match dayu_served::Server::bind(&addr, std::sync::Arc::clone(&service), opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("serving on {}", server.local_addr());
    server.wait();
    let findings = service.watchdog();
    for t in service.tenants() {
        if let Some(s) = service.stats(&t) {
            println!(
                "tenant {t}: {} accepted, {} quarantined, {} dropped, {} B retained{}",
                s.accepted,
                s.quarantined,
                s.dropped,
                s.retained_bytes,
                s.degraded
                    .as_deref()
                    .map(|r| format!(" (DEGRADED: {r})"))
                    .unwrap_or_default()
            );
        }
    }
    for f in &findings {
        println!("  [{}] {f:?}", f.category());
    }
    std::process::exit(0);
}

/// `dayu-analyze ingest`: stream a persisted trace into a running serve
/// instance, one section per task, with digest framing and retry.
fn ingest_main(args: Vec<String>) -> ! {
    let mut input: Option<PathBuf> = None;
    let mut addr = "127.0.0.1:7474".to_owned();
    let mut tenant: Option<String> = None;
    let mut forced: Option<TraceFormat> = None;
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--tenant" => tenant = Some(args.next().unwrap_or_else(|| usage())),
            "--format" => forced = Some(parse_format(args.next())),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let bundle = load_bundle(&input, forced);
    let tenant = tenant.unwrap_or_else(|| bundle.meta.workflow.clone());
    let mut client = dayu_served::IngestClient::new(addr.clone(), RetryPolicy::default());
    let sections = bundle.split_per_task();
    let mut failed = false;
    for (i, section) in sections.iter().enumerate() {
        let bytes = section.to_binary_bytes();
        let mut attempt = 0u32;
        loop {
            match client.ingest(&tenant, &bytes) {
                Ok(dayu_served::IngestStatus::Accepted { records, duplicate }) => {
                    println!(
                        "section {}/{}: accepted, {records} records{}",
                        i + 1,
                        sections.len(),
                        if duplicate { " (duplicate)" } else { "" }
                    );
                    break;
                }
                Ok(dayu_served::IngestStatus::Throttled { retry_after_ns }) => {
                    attempt += 1;
                    if attempt > 100 {
                        eprintln!("section {}: throttled too long, giving up", i + 1);
                        failed = true;
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_nanos(retry_after_ns));
                }
                Ok(dayu_served::IngestStatus::Quarantined(report)) => {
                    eprintln!("section {}: quarantined: {report}", i + 1);
                    failed = true;
                    break;
                }
                Ok(dayu_served::IngestStatus::Rejected { reason }) => {
                    eprintln!("section {}: rejected: {reason}", i + 1);
                    failed = true;
                    break;
                }
                Err(e) => {
                    eprintln!("section {}: transport failure: {e}", i + 1);
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            break;
        }
    }
    if let Ok(Some(s)) = client.stats(&tenant) {
        println!(
            "tenant {tenant} @ {addr}: {} accepted, {} duplicates, {} quarantined, {} dropped",
            s.accepted, s.duplicates, s.quarantined, s.dropped
        );
    }
    std::process::exit(i32::from(failed));
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("check") {
        check_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("predict") {
        predict_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("record") {
        record_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("bundle") {
        bundle_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("replay") {
        replay_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("diff") {
        diff_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("serve") {
        serve_main(raw[1..].to_vec());
    }
    if raw.first().map(String::as_str) == Some("ingest") {
        ingest_main(raw[1..].to_vec());
    }
    let mut input: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut regions: u64 = 0;
    let mut aggregate = false;
    let mut forced: Option<TraceFormat> = None;
    let mut args = raw.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--regions" => {
                regions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--aggregate" => aggregate = true,
            "--format" => forced = Some(parse_format(args.next())),
            "-h" | "--help" => usage(),
            p if input.is_none() => input = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };
    let bundle = load_bundle(&input, forced);

    let sdg_opts = SdgOptions {
        include_regions: regions > 0,
        region_count: regions.max(4),
    };
    let analysis = Analysis::run_with(&bundle, &sdg_opts, &DetectorConfig::default());
    let recommendations = dayu_advisor::advise(&analysis.findings);

    println!("workflow {:?}", bundle.meta.workflow);
    println!(
        "  tasks: {}, object records: {}, low-level ops: {}, files: {}",
        bundle.meta.task_order.len(),
        bundle.vol.len(),
        bundle.vfd.len(),
        bundle.files.len()
    );
    let (mut ftg, mut sdg) = (analysis.ftg, analysis.sdg);
    if aggregate {
        ftg = resolution::aggregate(&ftg, &resolution::by_task_prefix);
        sdg = resolution::aggregate(&sdg, &resolution::by_task_prefix);
        println!("  (task groups aggregated by numeric-suffix prefix)");
    }
    println!(
        "  FTG: {} nodes / {} edges;  SDG: {} nodes / {} edges",
        ftg.nodes.len(),
        ftg.edges.len(),
        sdg.nodes.len(),
        sdg.edges.len()
    );
    println!("\nfindings ({}):", analysis.findings.len());
    for f in &analysis.findings {
        println!("  [{}] {f:?}", f.category());
    }
    println!("\n{}", dayu_advisor::report(&recommendations));

    if let Some(dir) = out {
        std::fs::create_dir_all(&dir).expect("create out dir");
        for (g, name) in [(&ftg, "ftg"), (&sdg, "sdg")] {
            std::fs::write(dir.join(format!("{name}.dot")), export::to_dot(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.html")), export::to_html(g)).unwrap();
            std::fs::write(dir.join(format!("{name}.json")), export::to_json(g)).unwrap();
        }
        println!("graphs written to {}/", dir.display());
    }
}
