//! Inspect a file written by the format library — the `h5ls`/`h5dump`
//! counterpart for this repo's self-describing format.
//!
//! ```text
//! dayu-h5ls file.h5              # object tree with shapes/layouts
//! dayu-h5ls file.h5 --extents    # + file extents per dataset (fragmentation)
//! dayu-h5ls file.h5 --attrs      # + attributes
//! dayu-h5ls file.h5 --fsck       # structural integrity check first (exit 1 on findings)
//! dayu-h5ls file.h5 --fsck --repair  # replay the journal + prune damage, rewrite in place
//! ```

use dayu_hdf::{AttrValue, FileOptions, Group, H5File, LayoutKind};
use dayu_lint::{fsck_bytes, repair_bytes};
use dayu_trace::vol::ObjectKind;
use dayu_vfd::FileVfd;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: dayu-h5ls <file> [--extents] [--attrs] [--fsck] [--repair]");
    std::process::exit(2);
}

fn fmt_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(x) => x.to_string(),
        AttrValue::I64(x) => x.to_string(),
        AttrValue::F64(x) => x.to_string(),
        AttrValue::Str(s) => format!("{s:?}"),
        AttrValue::Bytes(b) => format!("<{} bytes>", b.len()),
    }
}

fn walk(group: &Group, indent: usize, extents: bool, attrs: bool) {
    let pad = "  ".repeat(indent);
    if attrs {
        for a in group.attrs().unwrap_or_default() {
            println!("{pad}  @{} = {}", a.name, fmt_attr(&a.value));
        }
    }
    for (name, kind) in group.list().unwrap_or_default() {
        match kind {
            ObjectKind::Group => {
                println!("{pad}{name}/");
                if let Ok(child) = group.open_group(&name) {
                    walk(&child, indent + 1, extents, attrs);
                }
            }
            _ => {
                let Ok(mut ds) = group.open_dataset(&name) else {
                    println!("{pad}{name}  <unreadable>");
                    continue;
                };
                let layout = match ds.layout() {
                    LayoutKind::Compact => "compact",
                    LayoutKind::Contiguous => "contiguous",
                    LayoutKind::Chunked => "chunked",
                };
                println!(
                    "{pad}{name}  shape {:?}  {:?}  {layout}",
                    ds.shape(),
                    ds.dtype()
                );
                if attrs {
                    for a in ds.attrs().unwrap_or_default() {
                        println!("{pad}  @{} = {}", a.name, fmt_attr(&a.value));
                    }
                }
                if extents {
                    match ds.extents() {
                        Ok(ext) if ext.is_empty() => {
                            println!("{pad}  extents: (none allocated)")
                        }
                        Ok(ext) => {
                            for (addr, len) in ext {
                                println!("{pad}  extent [{addr}, {})", addr + len);
                            }
                        }
                        Err(e) => println!("{pad}  extents: error: {e}"),
                    }
                }
                let _ = ds.close();
            }
        }
    }
}

fn main() {
    let mut path: Option<PathBuf> = None;
    let mut extents = false;
    let mut attrs = false;
    let mut fsck = false;
    let mut repair = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--extents" => extents = true,
            "--attrs" => attrs = true,
            "--fsck" => fsck = true,
            "--repair" => repair = true,
            "-h" | "--help" => usage(),
            p if path.is_none() => path = Some(PathBuf::from(p)),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    if repair {
        // Journal replay + targeted pruning, in place. The repaired image
        // is only written back when something actually changed.
        let mut image = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let report = repair_bytes(&mut image);
        print!("{report}");
        if report.modified() {
            std::fs::write(&path, &image).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            });
        }
        if !report.is_clean() {
            std::process::exit(1);
        }
    } else if fsck {
        // Run on the raw image before trying to open: a corrupt file may
        // not survive H5File::open, but fsck still pinpoints the damage.
        let image = std::fs::read(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let report = fsck_bytes(&image);
        if report.is_clean() {
            println!("fsck: clean ({} bytes)", image.len());
        } else {
            println!("fsck: {} finding(s)", report.len());
            for f in &report.findings {
                println!("  [{}] {f}", f.category());
            }
            std::process::exit(1);
        }
    }
    let vfd = FileVfd::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {}: {e}", path.display());
        std::process::exit(1);
    });
    let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("file");
    let file = H5File::open(vfd, name, FileOptions::default()).unwrap_or_else(|e| {
        eprintln!("not a valid file: {e}");
        std::process::exit(1);
    });
    println!(
        "{name}  ({} bytes allocated, {} free)",
        file.eof(),
        file.free_space()
    );
    println!("/");
    walk(&file.root(), 1, extents, attrs);
    let _ = file.close();
}
