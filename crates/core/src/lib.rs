//! # dayu-core
//!
//! The DaYu facade: one entry point over the whole toolset.
//!
//! DaYu (after Yu the Great, the legendary tamer of floods) is a dataflow
//! analysis and optimization framework for distributed scientific
//! workflows that exchange data through self-describing formats. This
//! workspace reimplements the system described in *"DaYu: Optimizing
//! Distributed Scientific Workflows by Decoding Dataflow Semantics and
//! Dynamics"* (IEEE CLUSTER 2024):
//!
//! * [`hdf`] — a from-scratch HDF5-like format library with VOL hook
//!   points and a driver (VFD) abstraction;
//! * [`mapper`] — the Data Semantic Mapper (VOL + VFD profilers joined by
//!   a shared context channel);
//! * [`analyzer`] — the Workflow Analyzer (FTG/SDG graphs, detectors,
//!   exporters);
//! * [`advisor`] — the optimization guideline engine;
//! * [`lint`] — static analysis: dataflow-hazard linting, transform
//!   semantics-preservation verification, and a format fsck;
//! * [`workflow`] — staged workflow execution, trace replay, optimization
//!   transforms;
//! * [`sim`] — the cluster/storage discrete-event simulator;
//! * [`workloads`] — the paper's applications and benchmarks.
//!
//! ## The one-call pipeline
//!
//! ```
//! use dayu_core::{diagnose, prelude::*};
//! use dayu_core::workloads::ddmd;
//!
//! let fs = MemFs::new();
//! let cfg = ddmd::DdmdConfig {
//!     sim_tasks: 2,
//!     contact_map_dim: 8,
//!     point_cloud_points: 16,
//!     scalar_series_len: 8,
//!     ..Default::default()
//! };
//! let diagnosis = diagnose(&ddmd::workflow(&cfg), &fs).unwrap();
//! assert!(!diagnosis.recommendations.is_empty());
//! println!("{}", diagnosis.summary());
//! ```

pub mod auto;

pub use dayu_advisor as advisor;
pub use dayu_analyzer as analyzer;
pub use dayu_hdf as hdf;
pub use dayu_lint as lint;
pub use dayu_mapper as mapper;
pub use dayu_sim as sim;
pub use dayu_trace as trace;
pub use dayu_vfd as vfd;
pub use dayu_workflow as workflow;
pub use dayu_workloads as workloads;

use dayu_advisor::Recommendation;
use dayu_analyzer::{export, Analysis, SdgOptions};
use dayu_hdf::Result;
use dayu_vfd::MemFs;
use dayu_workflow::{RecordedRun, WorkflowSpec};
use std::io::Write as _;
use std::path::Path;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use dayu_advisor::{advise, Action, Guideline, Recommendation};
    pub use dayu_analyzer::{
        build_ftg, build_sdg, diff_traces, run_detectors, Analysis, BundleDiff, DetectorConfig,
        Finding, FirstDivergence, Graph, GraphKind, NodeKind, SdgOptions,
    };
    pub use dayu_hdf::{
        AttrValue, DataType, Dataset, DatasetBuilder, FileOptions, Group, H5File, HdfError,
        LayoutKind, Selection,
    };
    pub use dayu_lint::{
        analyze_bundle, analyze_sim_tasks, analyze_stream, fsck_bytes, ExtentCatalog,
        Finding as LintFinding, LintConfig, Report as LintReport, TaskHb,
    };
    pub use dayu_mapper::{Mapper, MapperConfig};
    pub use dayu_sim::{Cluster, Engine, FileLocation, Placement, SimOp, SimTask, TierKind};
    pub use dayu_trace::{SharedContext, TraceBundle};
    pub use dayu_vfd::{
        FaultInjector, FaultSchedule, MemFs, MemVfd, ReplayDivergence, ReplayValidator, Vfd,
    };
    pub use dayu_workflow::{
        record, record_opts, record_to_bundle, replay_bundle, to_sim_tasks, BundleError,
        RecordOptions, ReplayBundle, ReplayReport, RetryPolicy, Schedule, TaskIo, TaskOutcome,
        TaskSpec, WorkflowSpec,
    };
}

/// Everything DaYu derives from one profiled workflow execution.
pub struct Diagnosis {
    /// The recorded run (trace bundle + stage metadata).
    pub run: RecordedRun,
    /// Graphs and findings.
    pub analysis: Analysis,
    /// Optimization recommendations per the Section III-A guidelines.
    pub recommendations: Vec<Recommendation>,
}

impl Diagnosis {
    /// A one-page text summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let b = &self.run.bundle;
        let _ = writeln!(out, "DaYu diagnosis — workflow {:?}", b.meta.workflow);
        let _ = writeln!(
            out,
            "  tasks: {}, files: {}, objects: {}, low-level ops: {}",
            b.meta.task_order.len(),
            self.analysis
                .ftg
                .nodes_of(dayu_analyzer::NodeKind::File)
                .count(),
            b.vol.len(),
            b.vfd.len()
        );
        let _ = writeln!(
            out,
            "  FTG: {} nodes / {} edges;  SDG: {} nodes / {} edges",
            self.analysis.ftg.nodes.len(),
            self.analysis.ftg.edges.len(),
            self.analysis.sdg.nodes.len(),
            self.analysis.sdg.edges.len()
        );
        let _ = writeln!(out, "  findings ({}):", self.analysis.findings.len());
        let mut by_cat: std::collections::BTreeMap<&str, usize> = Default::default();
        for f in &self.analysis.findings {
            *by_cat.entry(f.category()).or_default() += 1;
        }
        for (cat, n) in by_cat {
            let _ = writeln!(out, "    {cat}: {n}");
        }
        let _ = write!(out, "{}", dayu_advisor::report(&self.recommendations));
        out
    }

    /// Writes the full artifact set into `dir`: the JSONL trace, FTG and
    /// SDG in DOT/JSON/HTML, and the recommendation report.
    pub fn write_artifacts(&self, dir: impl AsRef<Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join("trace.jsonl"))?;
        self.run.bundle.write_jsonl(&mut f)?;
        for (graph, name) in [(&self.analysis.ftg, "ftg"), (&self.analysis.sdg, "sdg")] {
            std::fs::write(dir.join(format!("{name}.dot")), export::to_dot(graph))?;
            std::fs::write(dir.join(format!("{name}.json")), export::to_json(graph))?;
            std::fs::write(dir.join(format!("{name}.html")), export::to_html(graph))?;
        }
        let mut f = std::fs::File::create(dir.join("recommendations.txt"))?;
        f.write_all(dayu_advisor::report(&self.recommendations).as_bytes())?;
        Ok(())
    }
}

/// Records a workflow under full instrumentation, analyzes the traces and
/// derives recommendations — the end-to-end DaYu pipeline in one call.
pub fn diagnose(spec: &WorkflowSpec, fs: &MemFs) -> Result<Diagnosis> {
    diagnose_with(spec, fs, &SdgOptions::default())
}

/// [`diagnose`] with explicit SDG options (e.g. address-region nodes).
pub fn diagnose_with(spec: &WorkflowSpec, fs: &MemFs, sdg_opts: &SdgOptions) -> Result<Diagnosis> {
    let run = dayu_workflow::record(spec, fs)?;
    let analysis = Analysis::run_with(
        &run.bundle,
        sdg_opts,
        &dayu_analyzer::DetectorConfig::default(),
    );
    let recommendations = dayu_advisor::advise(&analysis.findings);
    Ok(Diagnosis {
        run,
        analysis,
        recommendations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_workloads::ddmd;

    fn tiny() -> ddmd::DdmdConfig {
        ddmd::DdmdConfig {
            sim_tasks: 2,
            iterations: 1,
            contact_map_dim: 8,
            point_cloud_points: 16,
            scalar_series_len: 8,
            compute_ns: 10,
            ..Default::default()
        }
    }

    #[test]
    fn diagnose_end_to_end() {
        let fs = MemFs::new();
        let d = diagnose(&ddmd::workflow(&tiny()), &fs).unwrap();
        assert!(!d.analysis.findings.is_empty());
        assert_eq!(d.analysis.findings.len(), d.recommendations.len());
        let s = d.summary();
        assert!(s.contains("ddmd"));
        assert!(s.contains("findings"));
        assert!(s.contains("recommendations"));
    }

    #[test]
    fn artifacts_written_to_disk() {
        let fs = MemFs::new();
        let d = diagnose(&ddmd::workflow(&tiny()), &fs).unwrap();
        let dir = std::env::temp_dir().join(format!("dayu-core-test-{}", std::process::id()));
        d.write_artifacts(&dir).unwrap();
        for name in [
            "trace.jsonl",
            "ftg.dot",
            "ftg.json",
            "ftg.html",
            "sdg.dot",
            "sdg.json",
            "sdg.html",
            "recommendations.txt",
        ] {
            let p = dir.join(name);
            assert!(p.exists(), "{name} missing");
            assert!(std::fs::metadata(&p).unwrap().len() > 0, "{name} empty");
        }
        // The trace round-trips.
        let text = std::fs::read(dir.join("trace.jsonl")).unwrap();
        let back = dayu_trace::TraceBundle::read_jsonl(&text[..]).unwrap();
        assert_eq!(back, d.run.bundle);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
