//! Object-level (VOL profiler) records — Table I of the paper.
//!
//! | # | Parameter          | Goal                                        |
//! |---|--------------------|---------------------------------------------|
//! | 1 | Task Name          | Create file–task relationship               |
//! | 2 | File Name          | Create file–task relationship               |
//! | 3 | Object Name        | Map I/O operations to data object           |
//! | 4 | Object Lifetime    | Maintain temporal relationships             |
//! | 5 | Object Description | Enrich data object semantics                |
//! | 6 | Object Access      | Record application memory/object utilization|

use crate::ids::{FileKey, ObjectKey, TaskKey};
use crate::time::{Interval, Timestamp};
use serde::{Deserialize, Serialize};

/// What kind of data object a VOL record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObjectKind {
    /// The file itself (open/close bracket).
    File,
    /// A group (container of other objects).
    Group,
    /// A dataset holding actual data.
    Dataset,
    /// An attribute attached to another object.
    Attribute,
}

/// Storage layout of a dataset, mirroring HDF5's options. Which layout a
/// dataset uses is the pivotal semantic input to the paper's data-format
/// optimization guidelines (Section III-A.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayoutKind {
    /// Data stored inline in the object header; only for tiny datasets.
    Compact,
    /// One contiguous file extent.
    #[default]
    Contiguous,
    /// Fixed-size chunks, each an independent extent located via an index.
    Chunked,
}

/// Element type stored by a dataset. `VarLen` marks variable-length data —
/// the fragmentation-prone case the paper's Challenge 3 highlights.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Fixed-width integer of the given byte width.
    Int {
        /// Bytes per element (1, 2, 4 or 8).
        width: u8,
    },
    /// IEEE float of the given byte width.
    Float {
        /// Bytes per element (4 or 8).
        width: u8,
    },
    /// Fixed-length string / opaque bytes of the given length.
    FixedBytes {
        /// Bytes per element.
        len: u32,
    },
    /// Variable-length element; each element is a (length, global-heap
    /// reference) descriptor pointing at out-of-line bytes.
    VarLen,
}

impl DataType {
    /// In-dataset bytes per element. For `VarLen` this is the size of the
    /// descriptor (length + heap reference), not the payload.
    pub fn element_size(&self) -> u64 {
        match self {
            DataType::Int { width } | DataType::Float { width } => *width as u64,
            DataType::FixedBytes { len } => *len as u64,
            DataType::VarLen => 16,
        }
    }

    /// Whether elements are variable-length.
    pub fn is_varlen(&self) -> bool {
        matches!(self, DataType::VarLen)
    }
}

/// Table I parameter 5: shape, type, size and layout of a data object.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectDescription {
    /// Dataspace dimensions (empty for groups/files).
    pub shape: Vec<u64>,
    /// Element datatype, when the object is a dataset or attribute.
    pub dtype: Option<DataType>,
    /// Logical data size in bytes (product of shape × element size, or the
    /// accumulated variable-length payload size).
    pub logical_size: u64,
    /// Storage layout, when the object is a dataset.
    pub layout: Option<LayoutKind>,
    /// Chunk dimensions when `layout == Chunked`.
    pub chunk_shape: Vec<u64>,
}

impl ObjectDescription {
    /// Number of logical elements (product of the shape; 1 for scalars).
    pub fn element_count(&self) -> u64 {
        if self.shape.is_empty() {
            1
        } else {
            self.shape.iter().product()
        }
    }
}

/// Whether an application-level access read or wrote object data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VolAccessKind {
    /// The task read from the object.
    Read,
    /// The task wrote to the object.
    Write,
}

/// Table I parameter 6: application-level read/write activity on a data
/// object. Repeated accesses with the same kind and selection merge into
/// one entry with `count` incremented, which is what keeps the VOL trace's
/// storage footprint near-constant however often a dataset is re-read
/// (paper Fig. 9d).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VolAccess {
    /// Read or write.
    pub kind: VolAccessKind,
    /// Number of accesses this entry summarizes (≥ 1).
    pub count: u64,
    /// Total logical bytes moved by these accesses.
    pub bytes: u64,
    /// Hyperslab offset per dimension (empty = whole object).
    pub sel_offset: Vec<u64>,
    /// Hyperslab extent per dimension (empty = whole object).
    pub sel_count: Vec<u64>,
    /// When the access happened.
    pub at: Timestamp,
}

impl VolAccess {
    /// Whether `other` is a repeat of this access pattern (same kind and
    /// selection) and can merge into this entry.
    pub fn same_pattern(&self, other: &VolAccess) -> bool {
        self.kind == other.kind
            && self.sel_offset == other.sel_offset
            && self.sel_count == other.sel_count
    }

    /// Folds a repeat access into this entry.
    pub fn fold(&mut self, other: &VolAccess) {
        debug_assert!(self.same_pattern(other));
        self.count += other.count;
        self.bytes += other.bytes;
        self.at = self.at.max(other.at);
    }
}

/// One Table I record: everything the VOL profiler knows about one data
/// object as used by one task within one file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VolRecord {
    /// Table I #1 — the accessing task.
    pub task: TaskKey,
    /// Table I #2 — the containing file.
    pub file: FileKey,
    /// Table I #3 — the object's full path.
    pub object: ObjectKey,
    /// What kind of object this is.
    pub kind: ObjectKind,
    /// Table I #4 — acquisition→release interval. A single logical object
    /// opened and closed repeatedly by the same task yields one lifetime per
    /// open/close pair; see [`VolRecord::merge_same_object`].
    pub lifetimes: Vec<Interval>,
    /// Table I #5 — semantic description.
    pub description: ObjectDescription,
    /// Table I #6 — application-level accesses.
    pub accesses: Vec<VolAccess>,
}

impl VolRecord {
    /// Total bytes read by the application through this object.
    pub fn bytes_read(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.kind == VolAccessKind::Read)
            .map(|a| a.bytes)
            .sum()
    }

    /// Total bytes written by the application through this object.
    pub fn bytes_written(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.kind == VolAccessKind::Write)
            .map(|a| a.bytes)
            .sum()
    }

    /// Number of accesses of the given kind (summing merged entries).
    pub fn access_count(&self, kind: VolAccessKind) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.kind == kind)
            .map(|a| a.count)
            .sum()
    }

    /// Folds `other` (a later open/close of the same `(task, file, object)`)
    /// into this record, concatenating lifetimes and accesses. Panics if the
    /// identity triple differs — merging records of different objects is a
    /// logic error.
    pub fn merge_same_object(&mut self, other: VolRecord) {
        assert_eq!(
            (&self.task, &self.file, &self.object),
            (&other.task, &other.file, &other.object),
            "merge_same_object requires identical (task, file, object)"
        );
        self.lifetimes.extend(other.lifetimes);
        self.accesses.extend(other.accesses);
        // Keep the richer description (a create carries more detail than a
        // bare open).
        if self.description == ObjectDescription::default() {
            self.description = other.description;
        }
    }

    /// First-write/first-read classification used by FTG edge direction:
    /// `(reads_any, writes_any)`.
    pub fn direction(&self) -> (bool, bool) {
        (
            self.accesses.iter().any(|a| a.kind == VolAccessKind::Read),
            self.accesses.iter().any(|a| a.kind == VolAccessKind::Write),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VolRecord {
        VolRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("f.h5"),
            object: ObjectKey::new("/d"),
            kind: ObjectKind::Dataset,
            lifetimes: vec![Interval::new(Timestamp(0), Timestamp(10))],
            description: ObjectDescription {
                shape: vec![4, 8],
                dtype: Some(DataType::Float { width: 8 }),
                logical_size: 256,
                layout: Some(LayoutKind::Contiguous),
                chunk_shape: vec![],
            },
            accesses: vec![
                VolAccess {
                    kind: VolAccessKind::Write,
                    count: 1,
                    bytes: 256,
                    sel_offset: vec![],
                    sel_count: vec![],
                    at: Timestamp(1),
                },
                VolAccess {
                    kind: VolAccessKind::Read,
                    count: 1,
                    bytes: 64,
                    sel_offset: vec![0, 0],
                    sel_count: vec![1, 8],
                    at: Timestamp(2),
                },
            ],
        }
    }

    #[test]
    fn byte_accounting() {
        let r = sample();
        assert_eq!(r.bytes_written(), 256);
        assert_eq!(r.bytes_read(), 64);
        assert_eq!(r.access_count(VolAccessKind::Read), 1);
        assert_eq!(r.direction(), (true, true));
    }

    #[test]
    fn element_sizes() {
        assert_eq!(DataType::Int { width: 4 }.element_size(), 4);
        assert_eq!(DataType::FixedBytes { len: 100 }.element_size(), 100);
        assert_eq!(DataType::VarLen.element_size(), 16);
        assert!(DataType::VarLen.is_varlen());
        assert!(!DataType::Float { width: 8 }.is_varlen());
    }

    #[test]
    fn description_element_count() {
        let d = ObjectDescription {
            shape: vec![4, 8],
            ..Default::default()
        };
        assert_eq!(d.element_count(), 32);
        assert_eq!(ObjectDescription::default().element_count(), 1);
    }

    #[test]
    fn merge_concatenates_lifetimes_and_accesses() {
        let mut a = sample();
        let mut b = sample();
        b.lifetimes = vec![Interval::new(Timestamp(20), Timestamp(30))];
        a.merge_same_object(b);
        assert_eq!(a.lifetimes.len(), 2);
        assert_eq!(a.accesses.len(), 4);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn merge_rejects_different_objects() {
        let mut a = sample();
        let mut b = sample();
        b.object = ObjectKey::new("/other");
        a.merge_same_object(b);
    }

    #[test]
    fn serde_round_trip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: VolRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
