//! Shared binary wire-format primitives.
//!
//! The `.dtb` trace store ([`crate::binary`]) and the `.drb` replay bundle
//! (in `dayu-workflow`) both serialize with the same little machinery:
//! LEB128 varints, length-prefixed byte strings, and bit-exact floats. The
//! trace store predates this module and keeps its private copies; new
//! formats should build on these public helpers so every consumer enforces
//! the same sanity caps and error texts.

use std::io::{self, BufRead, Write};

/// Upper bound accepted for any length field — guards torn or hostile
/// inputs from driving huge allocations before a checksum can catch them.
pub const LEN_CAP: u64 = 1 << 32;

/// An `InvalidData` error with a formatted message.
pub fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes `v` as an LEB128 varint (1–10 bytes).
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        buf[n] = if v == 0 { byte } else { byte | 0x80 };
        n += 1;
        if v == 0 {
            break;
        }
    }
    w.write_all(&buf[..n])
}

/// Reads an LEB128 varint, rejecting encodings that overflow `u64`.
pub fn read_varint<R: BufRead>(r: &mut R) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(bad("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads a varint length field, rejecting values above `cap`.
pub fn read_len<R: BufRead>(r: &mut R, what: &str, cap: u64) -> io::Result<usize> {
    let v = read_varint(r)?;
    if v > cap {
        return Err(bad(format!("{what} length {v} exceeds sanity cap {cap}")));
    }
    Ok(v as usize)
}

/// Writes a single byte.
pub fn write_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

/// Reads a single byte.
pub fn read_u8<R: BufRead>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Writes a length-prefixed byte string.
pub fn write_bytes<W: Write>(w: &mut W, data: &[u8]) -> io::Result<()> {
    write_varint(w, data.len() as u64)?;
    w.write_all(data)
}

/// Reads a length-prefixed byte string (capped at [`LEN_CAP`]).
pub fn read_bytes<R: BufRead>(r: &mut R, what: &str) -> io::Result<Vec<u8>> {
    let len = read_len(r, what, LEN_CAP)?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Writes a length-prefixed UTF-8 string.
pub fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_bytes(w, s.as_bytes())
}

/// Reads a length-prefixed UTF-8 string, rejecting invalid UTF-8.
pub fn read_str<R: BufRead>(r: &mut R, what: &str) -> io::Result<String> {
    let bytes = read_bytes(r, what)?;
    String::from_utf8(bytes).map_err(|_| bad(format!("{what} is not valid UTF-8")))
}

/// Writes an `f64` bit-exactly (IEEE-754 little-endian), so replaying a
/// manifest reconstructs the same probabilities to the last ulp.
pub fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

/// Reads an `f64` written by [`write_f64`].
pub fn read_f64<R: BufRead>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

/// Writes `Some(v)` as `1` + varint, `None` as `0`.
pub fn write_opt_varint<W: Write>(w: &mut W, v: Option<u64>) -> io::Result<()> {
    match v {
        Some(v) => {
            write_u8(w, 1)?;
            write_varint(w, v)
        }
        None => write_u8(w, 0),
    }
}

/// Reads an optional varint written by [`write_opt_varint`].
pub fn read_opt_varint<R: BufRead>(r: &mut R, what: &str) -> io::Result<Option<u64>> {
    match read_u8(r)? {
        0 => Ok(None),
        1 => Ok(Some(read_varint(r)?)),
        other => Err(bad(format!("{what}: bad option tag {other:#04x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_varint(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_varint(&mut buf, v).unwrap();
        read_varint(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(round_trip_varint(v), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 continuation bytes followed by a high terminal byte overflows.
        let buf = [0xFFu8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert!(read_varint(&mut Cursor::new(buf.to_vec())).is_err());
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut buf = Vec::new();
        write_str(&mut buf, "héllo/世界").unwrap();
        write_bytes(&mut buf, &[0, 255, 7]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_str(&mut r, "s").unwrap(), "héllo/世界");
        assert_eq!(read_bytes(&mut r, "b").unwrap(), vec![0, 255, 7]);
    }

    #[test]
    fn invalid_utf8_rejected_with_context() {
        let mut buf = Vec::new();
        write_bytes(&mut buf, &[0xFF, 0xFE]).unwrap();
        let err = read_str(&mut Cursor::new(buf), "workload name").unwrap_err();
        assert!(err.to_string().contains("workload name"));
    }

    #[test]
    fn length_cap_enforced() {
        let mut buf = Vec::new();
        write_varint(&mut buf, LEN_CAP + 1).unwrap();
        let err = read_len(&mut Cursor::new(buf), "section", LEN_CAP).unwrap_err();
        assert!(err.to_string().contains("sanity cap"));
    }

    #[test]
    fn f64_bit_exact() {
        for v in [0.0, -0.0, 0.1, f64::MIN_POSITIVE, f64::NAN, f64::INFINITY] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v).unwrap();
            let back = read_f64(&mut Cursor::new(buf)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn optional_varint_round_trips() {
        for v in [None, Some(0), Some(u64::MAX)] {
            let mut buf = Vec::new();
            write_opt_varint(&mut buf, v).unwrap();
            assert_eq!(read_opt_varint(&mut Cursor::new(buf), "x").unwrap(), v);
        }
        let err = read_opt_varint(&mut Cursor::new(vec![9u8]), "crash_at").unwrap_err();
        assert!(err.to_string().contains("crash_at"));
    }
}
