//! File-level (VFD profiler) records — Table II of the paper.
//!
//! | # | Parameter       | Goal                                         |
//! |---|-----------------|----------------------------------------------|
//! | 1 | Task Name       | Create file–task relationship                |
//! | 2 | File Name       | Create file–task relationship                |
//! | 3 | File Lifetime   | Map I/O operations to the task               |
//! | 4 | File Statistics | Capture access pattern to different regions  |
//! | 5 | I/O Operations  | The low-level (e.g. POSIX) I/O behaviour     |
//! | 6 | Access Type     | Metadata vs data operations                  |
//! | 7 | Data Object     | Map I/O operations to data object            |

use crate::ids::{FileKey, ObjectKey, TaskKey};
use crate::time::{Interval, Timestamp};
use serde::{Deserialize, Serialize};

/// The low-level operation performed (POSIX-equivalent verbs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoKind {
    /// `pread`-equivalent.
    Read,
    /// `pwrite`-equivalent.
    Write,
    /// File open.
    Open,
    /// File close.
    Close,
    /// Flush/fsync.
    Flush,
    /// File truncate/extend to a new end-of-file.
    Truncate,
}

impl IoKind {
    /// Whether the op moves data bytes (read/write) rather than being a
    /// lifecycle operation.
    pub fn moves_data(self) -> bool {
        matches!(self, IoKind::Read | IoKind::Write)
    }
}

/// Table II parameter 6: whether an operation touched format-internal
/// metadata (superblock, object headers, B-trees, heaps, chunk indexes) or
/// raw dataset content. Separating the two is what lets DaYu expose
/// metadata-overhead bottlenecks (e.g. Fig. 5 and Fig. 7 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// Format-internal metadata.
    Metadata,
    /// Dataset payload bytes.
    RawData,
}

/// One low-level I/O operation — Table II parameters 5–7 plus timing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VfdRecord {
    /// Table II #1 — task performing the op (from the shared context).
    pub task: TaskKey,
    /// Table II #2 — file operated on.
    pub file: FileKey,
    /// Table II #5 — operation verb.
    pub kind: IoKind,
    /// Table II #5 — file address (byte offset) of the op; 0 for lifecycle
    /// ops.
    pub offset: u64,
    /// Table II #5 — bytes moved (0 for lifecycle ops; new EOF for
    /// `Truncate`).
    pub len: u64,
    /// Table II #6 — metadata vs raw data.
    pub access: AccessType,
    /// Table II #7 — the semantic data object responsible, as published by
    /// the VOL layer through the shared context ("File-Metadata" when no
    /// object was in scope).
    pub object: ObjectKey,
    /// Op start time.
    pub start: Timestamp,
    /// Op end time.
    pub end: Timestamp,
}

impl VfdRecord {
    /// Duration of the operation in nanoseconds.
    pub fn duration(&self) -> u64 {
        self.end.since(self.start)
    }

    /// The half-open file address range `[offset, offset+len)` the op
    /// touched. Empty for lifecycle ops.
    pub fn address_range(&self) -> std::ops::Range<u64> {
        if self.kind.moves_data() {
            self.offset..self.offset + self.len
        } else {
            self.offset..self.offset
        }
    }

    /// Achieved bandwidth in bytes/second, or `None` for instantaneous or
    /// zero-byte ops.
    pub fn bandwidth(&self) -> Option<f64> {
        let d = self.duration();
        if d == 0 || !self.kind.moves_data() || self.len == 0 {
            None
        } else {
            Some(self.len as f64 / (d as f64 / 1e9))
        }
    }
}

/// Table II parameters 3–4: per-(task, file) lifetime and aggregate
/// statistics, maintained incrementally by the VFD profiler as operations
/// stream through it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FileRecord {
    /// Task that opened the file.
    pub task: TaskKey,
    /// The file.
    pub file: FileKey,
    /// Open→close interval (parameter 3). If the file was opened multiple
    /// times by the task, one interval per open.
    pub lifetimes: Vec<Interval>,
    /// Aggregate statistics (parameter 4).
    pub stats: FileStats,
}

/// Traditional I/O metrics (size, count, sequentiality) per file.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FileStats {
    /// Number of read operations.
    pub read_ops: u64,
    /// Number of write operations.
    pub write_ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Read/write ops whose offset equalled the previous op's end
    /// (sequential access detector).
    pub sequential_ops: u64,
    /// Metadata operations (reads+writes flagged `AccessType::Metadata`).
    pub metadata_ops: u64,
    /// Bytes moved by metadata operations.
    pub metadata_bytes: u64,
    /// Maximum file address touched + 1 (observed extent).
    pub max_address: u64,
    /// Offset immediately after the last data op (internal cursor for the
    /// sequentiality detector). Not serialized and excluded from equality.
    #[serde(skip)]
    last_end: Option<u64>,
}

impl PartialEq for FileStats {
    fn eq(&self, other: &Self) -> bool {
        // `last_end` is a transient cursor, not part of the statistics.
        self.read_ops == other.read_ops
            && self.write_ops == other.write_ops
            && self.bytes_read == other.bytes_read
            && self.bytes_written == other.bytes_written
            && self.sequential_ops == other.sequential_ops
            && self.metadata_ops == other.metadata_ops
            && self.metadata_bytes == other.metadata_bytes
            && self.max_address == other.max_address
    }
}

impl FileStats {
    /// Folds one operation into the running statistics.
    pub fn record(&mut self, kind: IoKind, offset: u64, len: u64, access: AccessType) {
        if !kind.moves_data() {
            return;
        }
        match kind {
            IoKind::Read => {
                self.read_ops += 1;
                self.bytes_read += len;
            }
            IoKind::Write => {
                self.write_ops += 1;
                self.bytes_written += len;
            }
            _ => unreachable!("moves_data() excluded lifecycle ops"),
        }
        if access == AccessType::Metadata {
            self.metadata_ops += 1;
            self.metadata_bytes += len;
        }
        if self.last_end == Some(offset) {
            self.sequential_ops += 1;
        }
        self.last_end = Some(offset + len);
        self.max_address = self.max_address.max(offset + len);
    }

    /// Total data-moving operations.
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of data ops that were sequential, in `[0, 1]`.
    pub fn sequential_fraction(&self) -> f64 {
        let t = self.total_ops();
        if t == 0 {
            0.0
        } else {
            self.sequential_ops as f64 / t as f64
        }
    }

    /// Mean bytes per data op.
    pub fn mean_op_size(&self) -> f64 {
        let t = self.total_ops();
        if t == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: IoKind, offset: u64, len: u64) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("f"),
            kind,
            offset,
            len,
            access: AccessType::RawData,
            object: ObjectKey::new("/d"),
            start: Timestamp(100),
            end: Timestamp(300),
        }
    }

    #[test]
    fn record_duration_and_range() {
        let r = op(IoKind::Write, 4096, 512);
        assert_eq!(r.duration(), 200);
        assert_eq!(r.address_range(), 4096..4608);
        assert_eq!(r.bandwidth(), Some(512.0 / 200e-9));
    }

    #[test]
    fn lifecycle_ops_have_empty_range_and_no_bandwidth() {
        let r = op(IoKind::Open, 0, 0);
        assert!(r.address_range().is_empty());
        assert_eq!(r.bandwidth(), None);
        assert!(!IoKind::Close.moves_data());
        assert!(IoKind::Read.moves_data());
    }

    #[test]
    fn stats_accumulate() {
        let mut s = FileStats::default();
        s.record(IoKind::Write, 0, 100, AccessType::Metadata);
        s.record(IoKind::Write, 100, 400, AccessType::RawData); // sequential
        s.record(IoKind::Read, 0, 100, AccessType::Metadata); // seek back
        s.record(IoKind::Read, 100, 400, AccessType::RawData); // sequential
        assert_eq!(s.read_ops, 2);
        assert_eq!(s.write_ops, 2);
        assert_eq!(s.bytes_read, 500);
        assert_eq!(s.bytes_written, 500);
        assert_eq!(s.metadata_ops, 2);
        assert_eq!(s.metadata_bytes, 200);
        assert_eq!(s.sequential_ops, 2);
        assert_eq!(s.sequential_fraction(), 0.5);
        assert_eq!(s.mean_op_size(), 250.0);
        assert_eq!(s.max_address, 500);
    }

    #[test]
    fn stats_ignore_lifecycle_ops() {
        let mut s = FileStats::default();
        s.record(IoKind::Open, 0, 0, AccessType::Metadata);
        s.record(IoKind::Flush, 0, 0, AccessType::Metadata);
        s.record(IoKind::Truncate, 0, 1 << 20, AccessType::Metadata);
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.sequential_fraction(), 0.0);
        assert_eq!(s.mean_op_size(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let r = op(IoKind::Read, 10, 20);
        let json = serde_json::to_string(&r).unwrap();
        let back: VfdRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
