//! Fallible, offset-reporting decode of `.dtb` sections.
//!
//! The batch readers in [`crate::binary`] already refuse malformed input,
//! but they report a bare `io::Error` with no position — fine when the
//! trace is a trusted local file, useless when sections arrive over a wire
//! from many concurrently-recording tenants and one of them ships a torn
//! or bit-flipped frame. [`decode_section`] decodes a byte blob through a
//! counting reader and, on failure, returns a [`SectionDecodeError`]
//! carrying the exact byte offset the decoder had consumed when it gave
//! up — the ingest service copies both into its quarantine report so an
//! operator can line the offset up against the captured blob.
//!
//! The decode path is allocation-bounded (every length prefix is checked
//! against a sanity cap before any buffer is sized) and never panics on
//! arbitrary bytes: corruption surfaces as `Err`, not as a crash. A flip
//! that happens to decode to *some* valid section is indistinguishable
//! from honest data at this layer — the format carries no per-frame
//! checksum — which is why the wire protocol in `dayu-served` frames every
//! section with a SHA-256 digest ([`crate::sha256`]) checked before the
//! bytes ever reach this decoder.
//!
//! [`TraceBundle::split_per_task`] is the inverse convenience: it cuts a
//! recorded bundle into per-task sections, each carrying the full bundle
//! meta, so that re-merging any subset in any arrival order reconstructs
//! the same metadata — the shape a per-task section flush produces in a
//! live deployment.

use crate::store::TraceBundle;
use std::fmt;
use std::io::{self, BufRead, Read};

/// A `.dtb` section blob failed to decode.
#[derive(Debug)]
pub struct SectionDecodeError {
    /// Bytes the decoder had successfully consumed before the failing
    /// read — the position of (or just before) the corruption.
    pub offset: u64,
    /// The underlying decode error.
    pub cause: io::Error,
}

impl SectionDecodeError {
    /// Whether the section simply ended early (torn write / truncated
    /// frame) as opposed to containing structurally invalid bytes.
    pub fn is_truncation(&self) -> bool {
        self.cause.kind() == io::ErrorKind::UnexpectedEof
    }
}

impl fmt::Display for SectionDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "section decode failed at byte {}: {}",
            self.offset, self.cause
        )
    }
}

impl std::error::Error for SectionDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// Slice reader that remembers how many bytes the decoder consumed, so a
/// decode failure can be pinned to a byte offset.
struct CountingReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Read for CountingReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for CountingReader<'_> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, n: usize) {
        self.pos += n;
    }
}

/// Decodes one or more concatenated `.dtb` sections from `bytes`,
/// merging them with the usual concatenation semantics. Unlike
/// [`TraceBundle::read_binary`], the input must actually *be* binary (an
/// empty or JSONL blob is an error, not an empty bundle) and failures
/// report the byte offset at which decoding stopped.
pub fn decode_section(bytes: &[u8]) -> Result<TraceBundle, SectionDecodeError> {
    if bytes.first() != Some(&crate::binary::MAGIC[0]) {
        return Err(SectionDecodeError {
            offset: 0,
            cause: io::Error::new(
                io::ErrorKind::InvalidData,
                "not a .dtb section (missing magic byte)",
            ),
        });
    }
    let mut r = CountingReader { buf: bytes, pos: 0 };
    match TraceBundle::read_binary(&mut r) {
        Ok(bundle) => Ok(bundle),
        Err(cause) => Err(SectionDecodeError {
            offset: r.pos as u64,
            cause,
        }),
    }
}

impl TraceBundle {
    /// Splits the bundle into one section per task (in [`Self::all_tasks`]
    /// order), each carrying the complete bundle meta and only that task's
    /// records. Merging any subset of the sections, in any order and with
    /// any duplication, reconstructs the same metadata; merging all of
    /// them reconstructs a bundle equal to the original up to record
    /// order grouped by task. A bundle that mentions no task at all
    /// splits into a single meta-only section.
    pub fn split_per_task(&self) -> Vec<TraceBundle> {
        let tasks = self.all_tasks();
        if tasks.is_empty() {
            return vec![self.clone()];
        }
        tasks
            .into_iter()
            .map(|task| TraceBundle {
                meta: self.meta.clone(),
                vol: self
                    .vol
                    .iter()
                    .filter(|r| r.task == task)
                    .cloned()
                    .collect(),
                vfd: self
                    .vfd
                    .iter()
                    .filter(|r| r.task == task)
                    .cloned()
                    .collect(),
                files: self
                    .files
                    .iter()
                    .filter(|r| r.task == task)
                    .cloned()
                    .collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileKey, ObjectKey, TaskKey};
    use crate::time::{Interval, Timestamp};
    use crate::vfd::{AccessType, FileRecord, IoKind, VfdRecord};
    use crate::vol::{ObjectDescription, ObjectKind, VolRecord};

    fn bundle() -> TraceBundle {
        let mut b = TraceBundle::new("wf");
        for t in ["t1", "t2"] {
            b.push_task(TaskKey::new(t));
            b.vol.push(VolRecord {
                task: TaskKey::new(t),
                file: FileKey::new("f.h5"),
                object: ObjectKey::new("/d"),
                kind: ObjectKind::Dataset,
                lifetimes: vec![Interval::new(Timestamp(0), Timestamp(5))],
                description: ObjectDescription::default(),
                accesses: vec![],
            });
            b.vfd.push(VfdRecord {
                task: TaskKey::new(t),
                file: FileKey::new("f.h5"),
                kind: IoKind::Write,
                offset: 0,
                len: 128,
                access: AccessType::RawData,
                object: ObjectKey::new("/d"),
                start: Timestamp(1),
                end: Timestamp(2),
            });
            b.files.push(FileRecord {
                task: TaskKey::new(t),
                file: FileKey::new("f.h5"),
                lifetimes: vec![Interval::new(Timestamp(0), Timestamp(5))],
                stats: Default::default(),
            });
        }
        b
    }

    #[test]
    fn valid_section_decodes() {
        let b = bundle();
        let back = decode_section(&b.to_binary_bytes()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn empty_and_non_binary_blobs_are_errors() {
        let err = decode_section(b"").unwrap_err();
        assert_eq!(err.offset, 0);
        let err = decode_section(b"{\"Meta\":{}}").unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(!err.is_truncation());
        assert!(err.to_string().contains("at byte 0"));
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        // Exhaustive cut sweep: every proper nonempty prefix of a
        // single-section blob must fail (the section ends with an end
        // tag, so no prefix is complete), with a sane offset.
        let bytes = bundle().to_binary_bytes();
        for cut in 1..bytes.len() {
            let err = decode_section(&bytes[..cut])
                .map(|_| panic!("prefix of {cut}/{} bytes decoded", bytes.len()))
                .unwrap_err();
            assert!(
                err.offset <= cut as u64,
                "offset {} past cut {cut}",
                err.offset
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_error_or_valid() {
        // No per-frame checksum: a flip may decode to a *different* valid
        // bundle, but it must never panic, hang, or over-allocate.
        let bytes = bundle().to_binary_bytes();
        let mut detected = 0usize;
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[pos] ^= 1 << bit;
                if let Err(e) = decode_section(&bad) {
                    assert!(e.offset <= bad.len() as u64);
                    detected += 1;
                }
            }
        }
        // The format is dense enough that most flips are structural
        // damage; if almost nothing is detected the decoder is not
        // actually validating.
        assert!(detected > bytes.len(), "only {detected} flips detected");
    }

    #[test]
    fn truncation_classified_as_truncation() {
        let bytes = bundle().to_binary_bytes();
        let err = decode_section(&bytes[..bytes.len() - 1]).unwrap_err();
        assert!(err.is_truncation());
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn oversized_string_length_is_rejected_without_allocating() {
        // Magic, then a 1-entry string table whose string claims to be
        // ~u48 bytes long: must fail the cap check, not try to allocate.
        let mut bytes = crate::binary::MAGIC.to_vec();
        bytes.push(1); // one table entry
        bytes.extend([0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]); // huge varint len
        let err = decode_section(&bytes).unwrap_err();
        assert!(err.cause.to_string().contains("cap"), "{}", err.cause);
    }

    #[test]
    fn split_per_task_sections_remerge_to_the_original() {
        let mut b = bundle();
        b.mark_degraded(TaskKey::new("t2"));
        b.meta.stages = vec![vec![TaskKey::new("t1")], vec![TaskKey::new("t2")]];
        let sections = b.split_per_task();
        assert_eq!(sections.len(), 2);
        // Concatenate the encoded sections in reverse arrival order:
        // full-meta sections make the merge order-insensitive.
        let mut bytes = Vec::new();
        for s in sections.iter().rev() {
            bytes.extend(s.to_binary_bytes());
        }
        let back = decode_section(&bytes).unwrap();
        assert_eq!(back.meta, b.meta);
        assert_eq!(back.vol.len(), b.vol.len());
        assert_eq!(back.vfd.len(), b.vfd.len());
        assert_eq!(back.files.len(), b.files.len());
    }

    #[test]
    fn taskless_bundle_splits_into_one_meta_section() {
        let b = TraceBundle::new("empty");
        let sections = b.split_per_task();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0], b);
    }
}
