//! A minimal, dependency-free SHA-256 (FIPS 180-4).
//!
//! Replay bundles ([`dayu-workflow`]'s `.drb` container) chain a SHA-256
//! digest across their sections so tampering and truncation are detectable
//! without re-executing the workload. The workspace deliberately carries no
//! cryptography dependency, so the compression function lives here, in the
//! root crate, where both the trace store and the bundle writer can reach
//! it. This is an integrity check, not an authentication primitive: there is
//! no secret key anywhere, and none is needed.

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block, `buf_len` bytes valid.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    len: u64,
}

/// A finished 32-byte digest.
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            len: 0,
        }
    }

    /// Absorbs `data` into the running digest.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("exact 64-byte split"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Pads and returns the final digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        // Capture the message bit length before padding inflates `len`.
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        self.update(&bit_len.to_be_bytes());
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot digest of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Lowercase hex rendering of a digest, for error messages and manifests.
pub fn hex(digest: &Digest) -> String {
    let mut s = String::with_capacity(64);
    for b in digest {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_of(data: &[u8]) -> String {
        hex(&sha256(data))
    }

    #[test]
    fn fips_vectors() {
        // FIPS 180-4 / NIST CAVP known-answer vectors.
        assert_eq!(
            hex_of(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex_of(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex_of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn all_lengths_around_block_boundary() {
        // Padding edge cases: every length from 54..=66 hashes without
        // panicking and distinct inputs give distinct digests.
        let mut seen = std::collections::HashSet::new();
        for len in 54..=66 {
            let data = vec![0xA5u8; len];
            assert!(seen.insert(sha256(&data)), "collision at {len}");
        }
    }

    #[test]
    fn hex_renders_64_chars() {
        let d = sha256(b"x");
        assert_eq!(hex(&d).len(), 64);
    }
}
