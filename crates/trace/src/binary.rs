//! The `.dtb` compact binary trace store ("trace store v2").
//!
//! JSONL is the bundle's interchange format; `.dtb` is the fast path. A
//! `.dtb` stream is a sequence of self-contained *sections*, one per
//! [`TraceBundle`] written — concatenating files produced by separately
//! profiled tasks merges on read exactly like concatenated JSONL. Each
//! section is:
//!
//! ```text
//! magic    8 bytes  89 'D' 'T' 'B' 0D 0A 1A <version>
//! table    varint count, then per string: varint length + UTF-8 bytes
//! frames   tag byte + frame body, repeated
//!          01 meta   (workflow id, page_size, task_order, degraded_tasks,
//!                     and from v2 the stage membership lists)
//!          02 vol    (one VolRecord)
//!          03 vfd    (one VfdRecord)
//!          04 file   (one FileRecord)
//!          00 end of section
//! ```
//!
//! Every integer is an LEB128 varint; every name (task, file, object,
//! workflow) is a varint index into the section's string table — the
//! persisted form of the process-wide interner ([`crate::intern`]). The
//! magic's first byte (0x89, non-ASCII, like PNG's) is what
//! [`TraceBundle::load`](crate::store::TraceBundle::load) sniffs to
//! auto-detect the format: JSONL lines always start with `{` or whitespace.
//!
//! Unknown versions and truncated frames are `InvalidData` errors: the
//! format carries no per-frame lengths, so a reader cannot skip content it
//! does not understand. Bump the version byte for any layout change.

use crate::ids::{FileKey, ObjectKey, TaskKey};
use crate::intern::Symbol;
use crate::store::{RecordSink, TraceBundle, TraceMeta, TraceOrigin};
use crate::time::{Interval, Timestamp};
use crate::vfd::{AccessType, FileRecord, FileStats, IoKind, VfdRecord};
use crate::vol::{
    DataType, LayoutKind, ObjectDescription, ObjectKind, VolAccess, VolAccessKind, VolRecord,
};
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// Section magic; the trailing byte is the format version this build
/// *writes*. The reader additionally accepts [`VERSION_V1`] through
/// [`VERSION_V3`] sections, which differ only by the absence of stage lists
/// (v1), recovered-task sets (v1, v2) and trace provenance (v1–v3) in the
/// meta frame.
pub const MAGIC: [u8; 8] = [0x89, b'D', b'T', b'B', 0x0D, 0x0A, 0x1A, 0x04];

/// The pre-stage-membership format version, still readable.
pub const VERSION_V1: u8 = 0x01;

/// The pre-crash-recovery format version, still readable.
pub const VERSION_V2: u8 = 0x02;

/// The pre-provenance format version, still readable.
pub const VERSION_V3: u8 = 0x03;

const TAG_END: u8 = 0x00;
const TAG_META: u8 = 0x01;
const TAG_VOL: u8 = 0x02;
const TAG_VFD: u8 = 0x03;
const TAG_FILE: u8 = 0x04;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------- varints

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    let mut buf = [0u8; 10];
    let mut n = 0;
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        buf[n] = if v == 0 { byte } else { byte | 0x80 };
        n += 1;
        if v == 0 {
            break;
        }
    }
    w.write_all(&buf[..n])
}

fn read_varint<R: BufRead>(r: &mut R) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(bad("varint overflows u64"));
        }
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn write_usize<W: Write>(w: &mut W, v: usize) -> io::Result<()> {
    write_varint(w, v as u64)
}

fn read_len<R: BufRead>(r: &mut R, what: &str, cap: u64) -> io::Result<usize> {
    let v = read_varint(r)?;
    if v > cap {
        return Err(bad(format!("{what} length {v} exceeds sanity cap {cap}")));
    }
    Ok(v as usize)
}

// ---------------------------------------------------------------- writer

/// Maps process-wide symbols to dense per-section string-table ids.
struct TableBuilder {
    ids: HashMap<Symbol, u32>,
    strings: Vec<&'static str>,
}

impl TableBuilder {
    fn new() -> Self {
        Self {
            ids: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn add(&mut self, sym: Symbol) -> u32 {
        if let Some(&id) = self.ids.get(&sym) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(sym.as_str());
        self.ids.insert(sym, id);
        id
    }

    fn id(&self, sym: Symbol) -> u64 {
        u64::from(self.ids[&sym])
    }
}

/// Collects the section string table: every name in the bundle, in first-use
/// order (workflow name first), deduplicated.
fn build_table(bundle: &TraceBundle) -> TableBuilder {
    let mut t = TableBuilder::new();
    t.add(Symbol::intern(&bundle.meta.workflow));
    for k in &bundle.meta.task_order {
        t.add(k.symbol());
    }
    for k in &bundle.meta.degraded_tasks {
        t.add(k.symbol());
    }
    for k in &bundle.meta.recovered_tasks {
        t.add(k.symbol());
    }
    for stage in &bundle.meta.stages {
        for k in stage {
            t.add(k.symbol());
        }
    }
    if let Some(origin) = &bundle.meta.origin {
        t.add(Symbol::intern(&origin.workload));
        t.add(Symbol::intern(&origin.params));
        t.add(Symbol::intern(&origin.tool_version));
    }
    for r in &bundle.vol {
        t.add(r.task.symbol());
        t.add(r.file.symbol());
        t.add(r.object.symbol());
    }
    for r in &bundle.vfd {
        t.add(r.task.symbol());
        t.add(r.file.symbol());
        t.add(r.object.symbol());
    }
    for r in &bundle.files {
        t.add(r.task.symbol());
        t.add(r.file.symbol());
    }
    t
}

fn write_intervals<W: Write>(w: &mut W, ivs: &[Interval]) -> io::Result<()> {
    write_usize(w, ivs.len())?;
    for iv in ivs {
        write_varint(w, iv.start.nanos())?;
        write_varint(w, iv.end.nanos())?;
    }
    Ok(())
}

fn write_dims<W: Write>(w: &mut W, dims: &[u64]) -> io::Result<()> {
    write_usize(w, dims.len())?;
    for d in dims {
        write_varint(w, *d)?;
    }
    Ok(())
}

fn write_vol<W: Write>(w: &mut W, t: &TableBuilder, r: &VolRecord) -> io::Result<()> {
    w.write_all(&[TAG_VOL])?;
    write_varint(w, t.id(r.task.symbol()))?;
    write_varint(w, t.id(r.file.symbol()))?;
    write_varint(w, t.id(r.object.symbol()))?;
    let kind = match r.kind {
        ObjectKind::File => 0u8,
        ObjectKind::Group => 1,
        ObjectKind::Dataset => 2,
        ObjectKind::Attribute => 3,
    };
    w.write_all(&[kind])?;
    write_intervals(w, &r.lifetimes)?;
    // Description.
    write_dims(w, &r.description.shape)?;
    match r.description.dtype {
        None => w.write_all(&[0])?,
        Some(DataType::Int { width }) => {
            w.write_all(&[1])?;
            write_varint(w, u64::from(width))?;
        }
        Some(DataType::Float { width }) => {
            w.write_all(&[2])?;
            write_varint(w, u64::from(width))?;
        }
        Some(DataType::FixedBytes { len }) => {
            w.write_all(&[3])?;
            write_varint(w, u64::from(len))?;
        }
        Some(DataType::VarLen) => w.write_all(&[4])?,
    }
    write_varint(w, r.description.logical_size)?;
    let layout = match r.description.layout {
        None => 0u8,
        Some(LayoutKind::Compact) => 1,
        Some(LayoutKind::Contiguous) => 2,
        Some(LayoutKind::Chunked) => 3,
    };
    w.write_all(&[layout])?;
    write_dims(w, &r.description.chunk_shape)?;
    // Accesses.
    write_usize(w, r.accesses.len())?;
    for a in &r.accesses {
        let kind = match a.kind {
            VolAccessKind::Read => 0u8,
            VolAccessKind::Write => 1,
        };
        w.write_all(&[kind])?;
        write_varint(w, a.count)?;
        write_varint(w, a.bytes)?;
        write_dims(w, &a.sel_offset)?;
        write_dims(w, &a.sel_count)?;
        write_varint(w, a.at.nanos())?;
    }
    Ok(())
}

fn write_vfd<W: Write>(w: &mut W, t: &TableBuilder, r: &VfdRecord) -> io::Result<()> {
    w.write_all(&[TAG_VFD])?;
    write_varint(w, t.id(r.task.symbol()))?;
    write_varint(w, t.id(r.file.symbol()))?;
    write_varint(w, t.id(r.object.symbol()))?;
    let kind = match r.kind {
        IoKind::Read => 0u8,
        IoKind::Write => 1,
        IoKind::Open => 2,
        IoKind::Close => 3,
        IoKind::Flush => 4,
        IoKind::Truncate => 5,
    };
    let access = match r.access {
        AccessType::Metadata => 0u8,
        AccessType::RawData => 1,
    };
    w.write_all(&[kind, access])?;
    write_varint(w, r.offset)?;
    write_varint(w, r.len)?;
    write_varint(w, r.start.nanos())?;
    // Durations are tiny next to absolute timestamps: delta-encode the end.
    write_varint(w, r.end.nanos().saturating_sub(r.start.nanos()))?;
    Ok(())
}

fn write_file<W: Write>(w: &mut W, t: &TableBuilder, r: &FileRecord) -> io::Result<()> {
    w.write_all(&[TAG_FILE])?;
    write_varint(w, t.id(r.task.symbol()))?;
    write_varint(w, t.id(r.file.symbol()))?;
    write_intervals(w, &r.lifetimes)?;
    for v in [
        r.stats.read_ops,
        r.stats.write_ops,
        r.stats.bytes_read,
        r.stats.bytes_written,
        r.stats.sequential_ops,
        r.stats.metadata_ops,
        r.stats.metadata_bytes,
        r.stats.max_address,
    ] {
        write_varint(w, v)?;
    }
    Ok(())
}

/// Writes one complete `.dtb` section for `bundle`.
pub fn write_bundle<W: Write>(bundle: &TraceBundle, w: &mut W) -> io::Result<()> {
    let table = build_table(bundle);
    w.write_all(&MAGIC)?;
    write_usize(w, table.strings.len())?;
    for s in &table.strings {
        write_usize(w, s.len())?;
        w.write_all(s.as_bytes())?;
    }
    // Meta frame.
    w.write_all(&[TAG_META])?;
    write_varint(w, table.id(Symbol::intern(&bundle.meta.workflow)))?;
    write_varint(w, bundle.meta.page_size)?;
    write_usize(w, bundle.meta.task_order.len())?;
    for k in &bundle.meta.task_order {
        write_varint(w, table.id(k.symbol()))?;
    }
    write_usize(w, bundle.meta.degraded_tasks.len())?;
    for k in &bundle.meta.degraded_tasks {
        write_varint(w, table.id(k.symbol()))?;
    }
    write_usize(w, bundle.meta.recovered_tasks.len())?;
    for k in &bundle.meta.recovered_tasks {
        write_varint(w, table.id(k.symbol()))?;
    }
    write_usize(w, bundle.meta.stages.len())?;
    for stage in &bundle.meta.stages {
        write_usize(w, stage.len())?;
        for k in stage {
            write_varint(w, table.id(k.symbol()))?;
        }
    }
    match &bundle.meta.origin {
        None => w.write_all(&[0])?,
        Some(origin) => {
            w.write_all(&[1])?;
            write_varint(w, table.id(Symbol::intern(&origin.workload)))?;
            write_varint(w, table.id(Symbol::intern(&origin.params)))?;
            write_varint(w, table.id(Symbol::intern(&origin.tool_version)))?;
        }
    }
    for r in &bundle.vol {
        write_vol(w, &table, r)?;
    }
    for r in &bundle.vfd {
        write_vfd(w, &table, r)?;
    }
    for r in &bundle.files {
        write_file(w, &table, r)?;
    }
    w.write_all(&[TAG_END])
}

// ---------------------------------------------------------------- reader

/// Per-section string table, re-interned into the process pool on read.
struct Table {
    syms: Vec<Symbol>,
}

impl Table {
    fn sym<R: BufRead>(&self, r: &mut R) -> io::Result<Symbol> {
        let id = read_varint(r)?;
        self.syms
            .get(id as usize)
            .copied()
            .ok_or_else(|| bad(format!("string id {id} out of table range")))
    }
}

/// Sanity cap for length-prefixed collections: a corrupt varint must not
/// drive a multi-gigabyte allocation before the decode fails.
const LEN_CAP: u64 = 1 << 32;

/// Tighter cap for a single string-table entry. Strings are task, file,
/// object and workflow names; unlike the collection caps (which bound loop
/// counts, not buffers), this one bounds a real upfront allocation
/// (`scratch.resize`), so a flipped length varint must not be able to
/// demand gigabytes before the subsequent read fails.
const STRING_CAP: u64 = 1 << 20;

fn read_intervals<R: BufRead>(r: &mut R) -> io::Result<Vec<Interval>> {
    let n = read_len(r, "interval list", LEN_CAP)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let start = Timestamp(read_varint(r)?);
        let end = Timestamp(read_varint(r)?);
        out.push(Interval::new(start, end));
    }
    Ok(out)
}

fn read_dims<R: BufRead>(r: &mut R) -> io::Result<Vec<u64>> {
    let n = read_len(r, "dimension list", LEN_CAP)?;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(read_varint(r)?);
    }
    Ok(out)
}

fn read_u8<R: BufRead>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_vol<R: BufRead>(r: &mut R, t: &Table) -> io::Result<VolRecord> {
    let task = TaskKey::from_symbol(t.sym(r)?);
    let file = FileKey::from_symbol(t.sym(r)?);
    let object = ObjectKey::from_symbol(t.sym(r)?);
    let kind = match read_u8(r)? {
        0 => ObjectKind::File,
        1 => ObjectKind::Group,
        2 => ObjectKind::Dataset,
        3 => ObjectKind::Attribute,
        other => return Err(bad(format!("bad object kind {other}"))),
    };
    let lifetimes = read_intervals(r)?;
    let shape = read_dims(r)?;
    let dtype = match read_u8(r)? {
        0 => None,
        1 => Some(DataType::Int {
            width: read_varint(r)? as u8,
        }),
        2 => Some(DataType::Float {
            width: read_varint(r)? as u8,
        }),
        3 => Some(DataType::FixedBytes {
            len: read_varint(r)? as u32,
        }),
        4 => Some(DataType::VarLen),
        other => return Err(bad(format!("bad dtype tag {other}"))),
    };
    let logical_size = read_varint(r)?;
    let layout = match read_u8(r)? {
        0 => None,
        1 => Some(LayoutKind::Compact),
        2 => Some(LayoutKind::Contiguous),
        3 => Some(LayoutKind::Chunked),
        other => return Err(bad(format!("bad layout tag {other}"))),
    };
    let chunk_shape = read_dims(r)?;
    let n = read_len(r, "access list", LEN_CAP)?;
    let mut accesses = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let kind = match read_u8(r)? {
            0 => VolAccessKind::Read,
            1 => VolAccessKind::Write,
            other => return Err(bad(format!("bad access kind {other}"))),
        };
        accesses.push(VolAccess {
            kind,
            count: read_varint(r)?,
            bytes: read_varint(r)?,
            sel_offset: read_dims(r)?,
            sel_count: read_dims(r)?,
            at: Timestamp(read_varint(r)?),
        });
    }
    Ok(VolRecord {
        task,
        file,
        object,
        kind,
        lifetimes,
        description: ObjectDescription {
            shape,
            dtype,
            logical_size,
            layout,
            chunk_shape,
        },
        accesses,
    })
}

fn read_vfd<R: BufRead>(r: &mut R, t: &Table) -> io::Result<VfdRecord> {
    let task = TaskKey::from_symbol(t.sym(r)?);
    let file = FileKey::from_symbol(t.sym(r)?);
    let object = ObjectKey::from_symbol(t.sym(r)?);
    let kind = match read_u8(r)? {
        0 => IoKind::Read,
        1 => IoKind::Write,
        2 => IoKind::Open,
        3 => IoKind::Close,
        4 => IoKind::Flush,
        5 => IoKind::Truncate,
        other => return Err(bad(format!("bad io kind {other}"))),
    };
    let access = match read_u8(r)? {
        0 => AccessType::Metadata,
        1 => AccessType::RawData,
        other => return Err(bad(format!("bad access type {other}"))),
    };
    let offset = read_varint(r)?;
    let len = read_varint(r)?;
    let start = read_varint(r)?;
    let dur = read_varint(r)?;
    Ok(VfdRecord {
        task,
        file,
        object,
        kind,
        access,
        offset,
        len,
        start: Timestamp(start),
        end: Timestamp(start.saturating_add(dur)),
    })
}

// `FileStats` keeps its sequentiality cursor private, so the decoder fills
// the public statistics into a default value (the cursor legitimately
// resets across persistence, exactly as it does for JSONL's serde(skip)).
#[allow(clippy::field_reassign_with_default)]
fn read_file<R: BufRead>(r: &mut R, t: &Table) -> io::Result<FileRecord> {
    let task = TaskKey::from_symbol(t.sym(r)?);
    let file = FileKey::from_symbol(t.sym(r)?);
    let lifetimes = read_intervals(r)?;
    let mut stats = FileStats::default();
    stats.read_ops = read_varint(r)?;
    stats.write_ops = read_varint(r)?;
    stats.bytes_read = read_varint(r)?;
    stats.bytes_written = read_varint(r)?;
    stats.sequential_ops = read_varint(r)?;
    stats.metadata_ops = read_varint(r)?;
    stats.metadata_bytes = read_varint(r)?;
    stats.max_address = read_varint(r)?;
    Ok(FileRecord {
        task,
        file,
        lifetimes,
        stats,
    })
}

/// Reads a `.dtb` stream into a bundle. Multiple concatenated sections merge
/// with the same semantics as concatenated JSONL: the first section's
/// workflow name and page size win, later task orders, degraded sets and
/// stage lists extend the first, records append.
pub fn read_bundles<R: BufRead>(r: R) -> io::Result<TraceBundle> {
    TraceBundle::read_binary(r)
}

/// Streams a `.dtb` stream into `sink` frame by frame, never holding more
/// than one record in memory. Section meta frames (including v1 sections,
/// which carry no stage lists) are delivered through [`RecordSink::meta`];
/// returns the number of data records delivered.
pub fn stream_bundles<R: BufRead, S: RecordSink>(mut r: R, sink: &mut S) -> io::Result<u64> {
    let mut records = 0u64;
    loop {
        // Section boundary: clean EOF ends the stream. EOF is detected by
        // peeking, not by catching `read_exact`'s UnexpectedEof — that would
        // also swallow a *partial* magic (trailing garbage, or a section cut
        // mid-header), which must be an error.
        if r.fill_buf()?.is_empty() {
            break;
        }
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic[..7] != MAGIC[..7] {
            return Err(bad("not a DaYu binary trace (bad magic)"));
        }
        let version = magic[7];
        if !(VERSION_V1..=MAGIC[7]).contains(&version) {
            return Err(bad(format!(
                "unsupported .dtb version {version} (this build reads {} through {})",
                VERSION_V1, MAGIC[7]
            )));
        }
        let n = read_len(&mut r, "string table", LEN_CAP)?;
        let mut syms = Vec::with_capacity(n.min(65536));
        let mut scratch = Vec::new();
        for _ in 0..n {
            let len = read_len(&mut r, "string", STRING_CAP)?;
            scratch.resize(len, 0);
            r.read_exact(&mut scratch)?;
            let s = std::str::from_utf8(&scratch).map_err(|e| bad(format!("bad utf-8: {e}")))?;
            syms.push(Symbol::intern(s));
        }
        let table = Table { syms };
        loop {
            match read_u8(&mut r)? {
                TAG_END => break,
                TAG_META => {
                    let workflow = table.sym(&mut r)?.as_str().to_owned();
                    let page_size = read_varint(&mut r)?;
                    let n = read_len(&mut r, "task order", LEN_CAP)?;
                    let mut task_order = Vec::with_capacity(n.min(65536));
                    for _ in 0..n {
                        task_order.push(TaskKey::from_symbol(table.sym(&mut r)?));
                    }
                    let n = read_len(&mut r, "degraded set", LEN_CAP)?;
                    let mut degraded_tasks = Vec::with_capacity(n.min(65536));
                    for _ in 0..n {
                        degraded_tasks.push(TaskKey::from_symbol(table.sym(&mut r)?));
                    }
                    let mut recovered_tasks = Vec::new();
                    if version >= 0x03 {
                        let n = read_len(&mut r, "recovered set", LEN_CAP)?;
                        recovered_tasks.reserve(n.min(65536));
                        for _ in 0..n {
                            recovered_tasks.push(TaskKey::from_symbol(table.sym(&mut r)?));
                        }
                    }
                    let mut stages = Vec::new();
                    if version >= 0x02 {
                        let n = read_len(&mut r, "stage list", LEN_CAP)?;
                        stages.reserve(n.min(65536));
                        for _ in 0..n {
                            let m = read_len(&mut r, "stage", LEN_CAP)?;
                            let mut stage = Vec::with_capacity(m.min(65536));
                            for _ in 0..m {
                                stage.push(TaskKey::from_symbol(table.sym(&mut r)?));
                            }
                            stages.push(stage);
                        }
                    }
                    let mut origin = None;
                    if version >= 0x04 {
                        match read_u8(&mut r)? {
                            0 => {}
                            1 => {
                                origin = Some(TraceOrigin {
                                    workload: table.sym(&mut r)?.as_str().to_owned(),
                                    params: table.sym(&mut r)?.as_str().to_owned(),
                                    tool_version: table.sym(&mut r)?.as_str().to_owned(),
                                });
                            }
                            other => return Err(bad(format!("bad origin presence byte {other}"))),
                        }
                    }
                    sink.meta(TraceMeta {
                        workflow,
                        task_order,
                        page_size,
                        degraded_tasks,
                        recovered_tasks,
                        stages,
                        origin,
                    })?;
                }
                TAG_VOL => {
                    records += 1;
                    sink.vol(read_vol(&mut r, &table)?)?;
                }
                TAG_VFD => {
                    records += 1;
                    sink.vfd(read_vfd(&mut r, &table)?)?;
                }
                TAG_FILE => {
                    records += 1;
                    sink.file(read_file(&mut r, &table)?)?;
                }
                other => return Err(bad(format!("unknown frame tag {other:#04x}"))),
            }
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ];
        let mut buf = Vec::new();
        for v in values {
            write_varint(&mut buf, v).unwrap();
        }
        let mut r = &buf[..];
        for v in values {
            assert_eq!(read_varint(&mut r).unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 100).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes can encode more than 64 bits.
        let buf = [0xFFu8; 10];
        let mut r = &buf[..];
        assert!(read_varint(&mut r).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_bundles(&b"{\"Meta\":{}}"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn future_version_rejected() {
        let mut bytes = MAGIC.to_vec();
        bytes[7] = 0x7F;
        bytes.push(0); // empty table
        let err = read_bundles(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn v1_sections_read_without_stages() {
        // A pre-stage-membership section: identical layout minus the stage
        // lists at the end of the meta frame.
        let mut bytes = Vec::new();
        let mut magic = MAGIC;
        magic[7] = VERSION_V1;
        bytes.extend_from_slice(&magic);
        write_usize(&mut bytes, 2).unwrap();
        for s in ["wf", "t1"] {
            write_usize(&mut bytes, s.len()).unwrap();
            bytes.extend_from_slice(s.as_bytes());
        }
        bytes.push(TAG_META);
        write_varint(&mut bytes, 0).unwrap(); // workflow id
        write_varint(&mut bytes, 4096).unwrap(); // page size
        write_usize(&mut bytes, 1).unwrap(); // task order
        write_varint(&mut bytes, 1).unwrap();
        write_usize(&mut bytes, 0).unwrap(); // degraded set
        bytes.push(TAG_END);
        let b = read_bundles(&bytes[..]).unwrap();
        assert_eq!(b.meta.workflow, "wf");
        assert_eq!(b.meta.task_order, vec![TaskKey::new("t1")]);
        assert!(b.meta.stages.is_empty());
    }

    #[test]
    fn v2_sections_read_without_recovered_set() {
        // A pre-crash-recovery section: degraded set, then stage lists,
        // no recovered set in between.
        let mut bytes = Vec::new();
        let mut magic = MAGIC;
        magic[7] = VERSION_V2;
        bytes.extend_from_slice(&magic);
        write_usize(&mut bytes, 2).unwrap();
        for s in ["wf", "t1"] {
            write_usize(&mut bytes, s.len()).unwrap();
            bytes.extend_from_slice(s.as_bytes());
        }
        bytes.push(TAG_META);
        write_varint(&mut bytes, 0).unwrap(); // workflow id
        write_varint(&mut bytes, 4096).unwrap(); // page size
        write_usize(&mut bytes, 1).unwrap(); // task order
        write_varint(&mut bytes, 1).unwrap();
        write_usize(&mut bytes, 1).unwrap(); // degraded set
        write_varint(&mut bytes, 1).unwrap();
        write_usize(&mut bytes, 1).unwrap(); // one stage...
        write_usize(&mut bytes, 1).unwrap(); // ...of one task
        write_varint(&mut bytes, 1).unwrap();
        bytes.push(TAG_END);
        let b = read_bundles(&bytes[..]).unwrap();
        assert!(b.is_degraded(&TaskKey::new("t1")));
        assert!(b.meta.recovered_tasks.is_empty());
        assert_eq!(b.meta.stages, vec![vec![TaskKey::new("t1")]]);
    }

    #[test]
    fn recovered_set_round_trips() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("a"));
        b.push_task(TaskKey::new("b"));
        b.mark_recovered(TaskKey::new("a"));
        let bytes = b.to_binary_bytes();
        assert_eq!(bytes[7], MAGIC[7]);
        let back = read_bundles(&bytes[..]).unwrap();
        assert!(back.is_recovered(&TaskKey::new("a")));
        assert!(!back.is_recovered(&TaskKey::new("b")));
        assert_eq!(back, b);
    }

    #[test]
    fn v3_sections_read_without_origin() {
        // A pre-provenance section: recovered set and stage lists, no
        // origin presence byte at the end of the meta frame.
        let mut bytes = Vec::new();
        let mut magic = MAGIC;
        magic[7] = VERSION_V3;
        bytes.extend_from_slice(&magic);
        write_usize(&mut bytes, 2).unwrap();
        for s in ["wf", "t1"] {
            write_usize(&mut bytes, s.len()).unwrap();
            bytes.extend_from_slice(s.as_bytes());
        }
        bytes.push(TAG_META);
        write_varint(&mut bytes, 0).unwrap(); // workflow id
        write_varint(&mut bytes, 4096).unwrap(); // page size
        write_usize(&mut bytes, 1).unwrap(); // task order
        write_varint(&mut bytes, 1).unwrap();
        write_usize(&mut bytes, 0).unwrap(); // degraded set
        write_usize(&mut bytes, 1).unwrap(); // recovered set
        write_varint(&mut bytes, 1).unwrap();
        write_usize(&mut bytes, 0).unwrap(); // stage lists
        bytes.push(TAG_END);
        let b = read_bundles(&bytes[..]).unwrap();
        assert!(b.is_recovered(&TaskKey::new("t1")));
        assert!(b.meta.origin.is_none());
    }

    #[test]
    fn origin_round_trips() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t1"));
        b.meta.origin = Some(TraceOrigin {
            workload: "ddmd".into(),
            params: "default".into(),
            tool_version: "0.1.0".into(),
        });
        let bytes = b.to_binary_bytes();
        let back = read_bundles(&bytes[..]).unwrap();
        assert_eq!(back.meta.origin, b.meta.origin);
        assert_eq!(back, b);
    }

    #[test]
    fn stages_round_trip() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("a"));
        b.push_task(TaskKey::new("b"));
        b.meta.stages = vec![
            vec![TaskKey::new("a")],
            vec![TaskKey::new("b"), TaskKey::new("c")],
        ];
        let bytes = b.to_binary_bytes();
        assert_eq!(bytes[7], MAGIC[7]);
        let back = read_bundles(&bytes[..]).unwrap();
        assert_eq!(back.meta.stages, b.meta.stages);
        assert_eq!(back.meta.stage_of(&TaskKey::new("c")), Some(1));
        assert_eq!(back.meta.stage_of(&TaskKey::new("zz")), None);
    }

    #[test]
    fn truncated_section_is_an_error() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        let bytes = b.to_binary_bytes();
        let cut = &bytes[..bytes.len() - 2];
        assert!(read_bundles(cut).is_err());
    }

    #[test]
    fn trailing_garbage_after_a_section_is_an_error() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        let mut bytes = b.to_binary_bytes();
        // Shorter than a magic header: must not be mistaken for clean EOF.
        bytes.extend([0xFF; 4]);
        assert!(read_bundles(&bytes[..]).is_err());
    }
}
