//! The VOL → VFD communication channel.
//!
//! HDF5's abstraction layers make direct communication between a VOL plugin
//! and a VFD plugin "inherently difficult"; the paper bridges them with a
//! region of shared memory through which the VOL layer publishes the *current
//! task*, *current data object* and *current access type* so the VFD profiler
//! can attribute every low-level operation to its semantic cause.
//!
//! [`SharedContext`] is the in-process analogue: a cheaply clonable handle to
//! shared state written by the high-level layer (object open/read/write) and
//! read by the low-level profiler on every I/O operation. A mutex (rather
//! than a lock-free scheme) is deliberate — the critical sections are a few
//! stores, contention is between one writer and one reader per task, and
//! `parking_lot::Mutex` is uncontended-fast; see the ablation discussion in
//! DESIGN.md.

use crate::ids::{ObjectKey, TaskKey};
use crate::vfd::AccessType;
use parking_lot::Mutex;
use std::sync::Arc;

/// A snapshot of what the high-level layer is currently doing, as visible to
/// the low-level profiler.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ContextSnapshot {
    /// The task the workflow launcher announced, if any.
    pub task: Option<TaskKey>,
    /// The data object whose operation is in progress, if any.
    pub object: Option<ObjectKey>,
    /// Whether the in-progress operation is a metadata or raw-data access.
    /// `None` when no object operation is in flight (the profiler then
    /// classifies the I/O as metadata, matching HDF5 where unattributed
    /// I/O is structural).
    pub access: Option<AccessType>,
}

#[derive(Debug, Default)]
struct Inner {
    snap: ContextSnapshot,
    /// Depth of nested `enter_object` scopes, so nested VOL operations
    /// (e.g. reading a chunk index while writing a dataset) restore the
    /// outer object on exit.
    stack: Vec<(Option<ObjectKey>, Option<AccessType>)>,
}

/// Shared state through which the VOL layer labels VFD operations.
///
/// Clones share the same state. One `SharedContext` per *task* (thread of
/// application activity) is the intended granularity, matching the paper
/// where statistics are "collected as entries in a hash table in the
/// duration of the task".
#[derive(Clone, Debug, Default)]
pub struct SharedContext {
    inner: Arc<Mutex<Inner>>,
}

impl SharedContext {
    /// A fresh, empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Announces the current task. The workflow launcher or the application
    /// must call this before the task performs I/O (paper: "The workflow
    /// launcher or application must inform DaYu of the current task").
    pub fn set_task(&self, task: impl Into<TaskKey>) {
        self.inner.lock().snap.task = Some(task.into());
    }

    /// Clears the current task (end of task).
    pub fn clear_task(&self) {
        self.inner.lock().snap.task = None;
    }

    /// The currently announced task, if any.
    pub fn task(&self) -> Option<TaskKey> {
        self.inner.lock().snap.task.clone()
    }

    /// Pushes an object scope: all VFD operations until the matching
    /// [`SharedContext::exit_object`] are attributed to `object` with the
    /// given access type. Scopes nest; the outer attribution is restored on
    /// exit.
    pub fn enter_object(&self, object: impl Into<ObjectKey>, access: AccessType) {
        let mut inner = self.inner.lock();
        let prev = (inner.snap.object.take(), inner.snap.access.take());
        inner.stack.push(prev);
        inner.snap.object = Some(object.into());
        inner.snap.access = Some(access);
    }

    /// Pops the innermost object scope.
    pub fn exit_object(&self) {
        let mut inner = self.inner.lock();
        if let Some((obj, acc)) = inner.stack.pop() {
            inner.snap.object = obj;
            inner.snap.access = acc;
        } else {
            inner.snap.object = None;
            inner.snap.access = None;
        }
    }

    /// Snapshot of the current attribution, taken by the VFD profiler when
    /// recording an operation.
    pub fn snapshot(&self) -> ContextSnapshot {
        self.inner.lock().snap.clone()
    }

    /// Runs `f` inside an object scope; exception-safe convenience over
    /// `enter_object`/`exit_object`.
    pub fn with_object<R>(
        &self,
        object: impl Into<ObjectKey>,
        access: AccessType,
        f: impl FnOnce() -> R,
    ) -> R {
        self.enter_object(object, access);
        let guard = ScopeGuard { ctx: self };
        let r = f();
        drop(guard);
        r
    }
}

struct ScopeGuard<'a> {
    ctx: &'a SharedContext,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        self.ctx.exit_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_context_snapshot() {
        let ctx = SharedContext::new();
        let s = ctx.snapshot();
        assert_eq!(s.task, None);
        assert_eq!(s.object, None);
        assert_eq!(s.access, None);
    }

    #[test]
    fn task_set_and_clear() {
        let ctx = SharedContext::new();
        ctx.set_task("openmm_0");
        assert_eq!(ctx.task(), Some(TaskKey::new("openmm_0")));
        ctx.clear_task();
        assert_eq!(ctx.task(), None);
    }

    #[test]
    fn object_scopes_nest_and_restore() {
        let ctx = SharedContext::new();
        ctx.enter_object("/outer", AccessType::RawData);
        ctx.enter_object("/inner", AccessType::Metadata);
        let s = ctx.snapshot();
        assert_eq!(s.object, Some(ObjectKey::new("/inner")));
        assert_eq!(s.access, Some(AccessType::Metadata));
        ctx.exit_object();
        let s = ctx.snapshot();
        assert_eq!(s.object, Some(ObjectKey::new("/outer")));
        assert_eq!(s.access, Some(AccessType::RawData));
        ctx.exit_object();
        assert_eq!(ctx.snapshot().object, None);
    }

    #[test]
    fn unbalanced_exit_is_harmless() {
        let ctx = SharedContext::new();
        ctx.exit_object();
        ctx.exit_object();
        assert_eq!(ctx.snapshot().object, None);
    }

    #[test]
    fn with_object_restores_on_return() {
        let ctx = SharedContext::new();
        let out = ctx.with_object("/d", AccessType::RawData, || {
            assert_eq!(ctx.snapshot().object, Some(ObjectKey::new("/d")));
            7
        });
        assert_eq!(out, 7);
        assert_eq!(ctx.snapshot().object, None);
    }

    #[test]
    fn clones_share_state() {
        let a = SharedContext::new();
        let b = a.clone();
        a.set_task("t");
        assert_eq!(b.task(), Some(TaskKey::new("t")));
        b.enter_object("/x", AccessType::Metadata);
        assert_eq!(a.snapshot().object, Some(ObjectKey::new("/x")));
    }

    #[test]
    fn snapshot_is_consistent_under_concurrency() {
        // The writer always sets (object, access) pairs together; a reader
        // must never observe an object from one scope with the access type
        // of another.
        let ctx = SharedContext::new();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..2000 {
                    if i % 2 == 0 {
                        ctx.enter_object("/meta", AccessType::Metadata);
                    } else {
                        ctx.enter_object("/raw", AccessType::RawData);
                    }
                    ctx.exit_object();
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            s.spawn(|| {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = ctx.snapshot();
                    match (&s.object, s.access) {
                        (Some(o), Some(AccessType::Metadata)) => {
                            assert_eq!(o.as_str(), "/meta")
                        }
                        (Some(o), Some(AccessType::RawData)) => assert_eq!(o.as_str(), "/raw"),
                        (None, None) => {}
                        other => panic!("torn snapshot: {other:?}"),
                    }
                }
            });
        });
    }
}
