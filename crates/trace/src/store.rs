//! Trace container and JSONL persistence.
//!
//! The Data Semantic Mapper accumulates statistics "as entries in a hash
//! table in the duration of the task" and flushes them when files close. The
//! flushed records from every task of a workflow are collected into a
//! [`TraceBundle`], the interchange format consumed by the Workflow Analyzer.
//!
//! Bundles serialize in either of two formats with identical semantics:
//!
//! * **JSON Lines** — one header line, then one line per record; the
//!   human-greppable interchange format.
//! * **`.dtb` binary** ([`crate::binary`], "trace store v2") — varint-framed
//!   records over a per-file string table; several times smaller and faster.
//!
//! Both stream without buffering the whole trace, and bundles from
//! separately-profiled tasks concatenate by appending files in either
//! format. [`TraceBundle::load`] sniffs the leading byte and dispatches.

use crate::ids::TaskKey;
use crate::vfd::{FileRecord, VfdRecord};
use crate::vol::VolRecord;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io::{self, BufRead, Write};

/// On-disk encoding of a [`TraceBundle`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (`trace.jsonl`).
    #[default]
    Jsonl,
    /// Compact varint-framed binary (`trace.dtb`, see [`crate::binary`]).
    Binary,
}

impl TraceFormat {
    /// Detects the format from the first byte of a stream: `.dtb` sections
    /// open with a 0x89 magic byte, which can never start a JSONL stream
    /// (lines begin with `{` or whitespace).
    pub fn detect(first_byte: u8) -> TraceFormat {
        if first_byte == crate::binary::MAGIC[0] {
            TraceFormat::Binary
        } else {
            TraceFormat::Jsonl
        }
    }

    /// Conventional file extension (without the dot).
    pub fn extension(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "dtb",
        }
    }
}

impl std::str::FromStr for TraceFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" | "json" => Ok(TraceFormat::Jsonl),
            "binary" | "dtb" => Ok(TraceFormat::Binary),
            other => Err(format!(
                "unknown trace format {other:?} (expected jsonl or binary)"
            )),
        }
    }
}

/// Bundle-level metadata.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable workflow name.
    pub workflow: String,
    /// Execution order of tasks. The paper notes FTG construction "requires
    /// manual input for task ordering" (future versions integrate with
    /// workflow managers); the workflow engine in this repo supplies it
    /// automatically.
    pub task_order: Vec<TaskKey>,
    /// Page size (bytes) used when bucketing file addresses into regions for
    /// SDG address nodes.
    pub page_size: u64,
    /// Tasks whose trace is truncated: the task died (or exhausted its
    /// retries) mid-session and its records were salvaged at that point.
    /// Graphs built from such a bundle are lower bounds, not the full
    /// dataflow. Absent in pre-salvage traces, hence the serde default.
    #[serde(default)]
    pub degraded_tasks: Vec<TaskKey>,
    /// Tasks that resumed from crash recovery: a retry attempt reopened a
    /// journaled file an earlier attempt left unclean and rolled it to its
    /// last committed state before continuing. Their records describe the
    /// *successful* attempt over recovered state, so graphs are complete —
    /// unlike [`TraceMeta::degraded_tasks`] — but timing includes the
    /// recovery pause. Absent in pre-recovery traces, hence the default.
    #[serde(default)]
    pub recovered_tasks: Vec<TaskKey>,
    /// Stage membership as recorded by the workflow engine: `stages[i]` lists
    /// the tasks launched in barrier-synchronized stage `i`. This is the
    /// ground truth the lint happens-before engine orders cross-task ops
    /// with; traces written before stages were recorded (serde default:
    /// empty) carry no cross-task ordering and analyzers must fall back to
    /// wall-clock heuristics.
    #[serde(default)]
    pub stages: Vec<Vec<TaskKey>>,
    /// Provenance: which workload (and parameterization) the recording tool
    /// ran, and which tool version produced the trace. Until replay bundles
    /// existed only the CLI knew this; a trace that outlives its invocation
    /// needs it to be reproducible. Traces written before provenance existed
    /// (serde default: `None`) normalize to an absent origin on read in both
    /// JSONL and `.dtb`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub origin: Option<TraceOrigin>,
}

/// Provenance of a trace: what produced it and from which inputs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOrigin {
    /// Workload identifier the recorder executed (e.g. `ddmd`).
    pub workload: String,
    /// Human-readable parameterization of the workload (`default` for the
    /// bundled configurations, otherwise a `key=value` list).
    pub params: String,
    /// Version of the tool that wrote the trace (Cargo package version).
    pub tool_version: String,
}

impl TraceMeta {
    /// Stage index of `task` per the recorded stage membership, or `None`
    /// when stages were not recorded or the task is unknown (e.g. appeared
    /// only in a concatenated fragment).
    pub fn stage_of(&self, task: &TaskKey) -> Option<usize> {
        self.stages.iter().position(|stage| stage.contains(task))
    }
}

/// Streaming consumer of trace records, fed by [`TraceBundle::stream`] in
/// on-disk order without materializing the whole bundle. Meta headers arrive
/// before the records of their section; concatenated streams deliver one
/// `meta` call per section, and the sink owns the merge policy.
pub trait RecordSink {
    /// One section header.
    fn meta(&mut self, meta: TraceMeta) -> io::Result<()>;
    /// One object-level (VOL) record.
    fn vol(&mut self, rec: VolRecord) -> io::Result<()>;
    /// One I/O-level (VFD) record.
    fn vfd(&mut self, rec: VfdRecord) -> io::Result<()>;
    /// One per-(task, file) summary record.
    fn file(&mut self, rec: FileRecord) -> io::Result<()>;
}

/// Sink that rebuilds an in-memory [`TraceBundle`], applying the
/// concatenation merge rules (first section's workflow name and page size
/// win; later task orders, degraded sets and stages extend the first).
#[derive(Default)]
struct Collector {
    out: TraceBundle,
    saw_meta: bool,
}

impl RecordSink for Collector {
    fn meta(&mut self, mut m: TraceMeta) -> io::Result<()> {
        // Re-mark rather than splice the degraded set: traces written by
        // older builds (or hand-edited) may carry it unsorted, and every
        // read path must restore the sorted invariant mark_degraded
        // relies on.
        let degraded = std::mem::take(&mut m.degraded_tasks);
        let recovered = std::mem::take(&mut m.recovered_tasks);
        if self.saw_meta {
            for t in m.task_order {
                if !self.out.meta.task_order.contains(&t) {
                    self.out.meta.task_order.push(t);
                }
            }
            if self.out.meta.stages.is_empty() {
                self.out.meta.stages = m.stages;
            }
            if self.out.meta.origin.is_none() {
                self.out.meta.origin = m.origin;
            }
        } else {
            self.out.meta = m;
            self.saw_meta = true;
        }
        for t in degraded {
            self.out.mark_degraded(t);
        }
        for t in recovered {
            self.out.mark_recovered(t);
        }
        Ok(())
    }

    fn vol(&mut self, rec: VolRecord) -> io::Result<()> {
        self.out.vol.push(rec);
        Ok(())
    }

    fn vfd(&mut self, rec: VfdRecord) -> io::Result<()> {
        self.out.vfd.push(rec);
        Ok(())
    }

    fn file(&mut self, rec: FileRecord) -> io::Result<()> {
        self.out.files.push(rec);
        Ok(())
    }
}

/// All records collected from one workflow execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    /// Bundle metadata.
    pub meta: TraceMeta,
    /// Object-level (Table I) records.
    pub vol: Vec<VolRecord>,
    /// Low-level I/O (Table II #5–7) records.
    pub vfd: Vec<VfdRecord>,
    /// Per-(task, file) lifetimes and statistics (Table II #3–4).
    pub files: Vec<FileRecord>,
}

/// One line of the JSONL stream.
#[derive(Serialize, Deserialize)]
enum Line {
    Meta(TraceMeta),
    Vol(VolRecord),
    Vfd(VfdRecord),
    File(FileRecord),
}

impl TraceBundle {
    /// An empty bundle for the named workflow.
    pub fn new(workflow: impl Into<String>) -> Self {
        Self {
            meta: TraceMeta {
                workflow: workflow.into(),
                task_order: Vec::new(),
                page_size: 4096,
                degraded_tasks: Vec::new(),
                recovered_tasks: Vec::new(),
                stages: Vec::new(),
                origin: None,
            },
            ..Default::default()
        }
    }

    /// Marks `task` as degraded: its records are a salvaged, truncated
    /// fragment of the task's real I/O. The set is kept sorted and deduped,
    /// so marking (and [`Self::is_degraded`]) is a binary search rather than
    /// the linear `contains` scan it used to be.
    pub fn mark_degraded(&mut self, task: TaskKey) {
        if let Err(at) = self.meta.degraded_tasks.binary_search(&task) {
            self.meta.degraded_tasks.insert(at, task);
        }
    }

    /// Whether `task` was marked degraded.
    pub fn is_degraded(&self, task: &TaskKey) -> bool {
        self.meta.degraded_tasks.binary_search(task).is_ok()
    }

    /// Whether any task in the bundle is degraded.
    pub fn has_degraded_tasks(&self) -> bool {
        !self.meta.degraded_tasks.is_empty()
    }

    /// Marks `task` as resumed-from-recovery: one of its attempts reopened
    /// a crashed journaled file and continued from its committed state.
    /// Sorted and deduped like the degraded set.
    pub fn mark_recovered(&mut self, task: TaskKey) {
        if let Err(at) = self.meta.recovered_tasks.binary_search(&task) {
            self.meta.recovered_tasks.insert(at, task);
        }
    }

    /// Whether `task` was marked as resumed-from-recovery.
    pub fn is_recovered(&self, task: &TaskKey) -> bool {
        self.meta.recovered_tasks.binary_search(task).is_ok()
    }

    /// Whether any task in the bundle resumed from crash recovery.
    pub fn has_recovered_tasks(&self) -> bool {
        !self.meta.recovered_tasks.is_empty()
    }

    /// Appends all records of `other` to this bundle, extending the task
    /// order with tasks not yet present. Used to join per-task traces into a
    /// workflow-wide trace.
    pub fn merge(&mut self, other: TraceBundle) {
        for t in other.meta.task_order {
            if !self.meta.task_order.contains(&t) {
                self.meta.task_order.push(t);
            }
        }
        for t in other.meta.degraded_tasks {
            self.mark_degraded(t);
        }
        for t in other.meta.recovered_tasks {
            self.mark_recovered(t);
        }
        if self.meta.stages.is_empty() {
            self.meta.stages = other.meta.stages;
        }
        if self.meta.origin.is_none() {
            self.meta.origin = other.meta.origin;
        }
        self.vol.extend(other.vol);
        self.vfd.extend(other.vfd);
        self.files.extend(other.files);
    }

    /// Registers `task` at the end of the execution order if new.
    pub fn push_task(&mut self, task: TaskKey) {
        if !self.meta.task_order.contains(&task) {
            self.meta.task_order.push(task);
        }
    }

    /// Total bytes of application data moved (VFD raw view), used as the
    /// denominator of the storage-overhead figures (Fig. 9d).
    pub fn application_bytes(&self) -> u64 {
        self.vfd
            .iter()
            .filter(|r| r.kind.moves_data())
            .map(|r| r.len)
            .sum()
    }

    /// Serialized size of only the VOL records, in bytes.
    pub fn vol_storage_bytes(&self) -> u64 {
        self.vol
            .iter()
            .map(|r| {
                serde_json::to_string(r)
                    .map(|s| s.len() as u64 + 1)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Serialized size of only the VFD records, in bytes. Grows linearly
    /// with I/O operation count (the paper's Fig. 9d), unless I/O tracing is
    /// disabled in the mapper config.
    pub fn vfd_storage_bytes(&self) -> u64 {
        self.vfd
            .iter()
            .map(|r| {
                serde_json::to_string(r)
                    .map(|s| s.len() as u64 + 1)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Writes the bundle as JSON Lines.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        let mut emit = |line: &Line| -> io::Result<()> {
            let s = serde_json::to_string(line).map_err(io::Error::other)?;
            w.write_all(s.as_bytes())?;
            w.write_all(b"\n")
        };
        emit(&Line::Meta(self.meta.clone()))?;
        for r in &self.vol {
            emit(&Line::Vol(r.clone()))?;
        }
        for r in &self.vfd {
            emit(&Line::Vfd(r.clone()))?;
        }
        for r in &self.files {
            emit(&Line::File(r.clone()))?;
        }
        Ok(())
    }

    /// Reads a bundle from JSON Lines. Multiple concatenated bundles merge:
    /// later `Meta` lines extend the task order (first workflow
    /// name/page-size win).
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Self> {
        let mut sink = Collector::default();
        Self::stream_jsonl(r, &mut sink)?;
        Ok(sink.out)
    }

    /// Streams a JSONL trace into `sink` one record at a time; returns the
    /// number of data records (vol + vfd + file) delivered.
    pub fn stream_jsonl<R: BufRead, S: RecordSink>(r: R, sink: &mut S) -> io::Result<u64> {
        let mut records = 0u64;
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let parsed: Line = serde_json::from_str(&line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            match parsed {
                Line::Meta(m) => sink.meta(m)?,
                Line::Vol(v) => {
                    records += 1;
                    sink.vol(v)?;
                }
                Line::Vfd(v) => {
                    records += 1;
                    sink.vfd(v)?;
                }
                Line::File(f) => {
                    records += 1;
                    sink.file(f)?;
                }
            }
        }
        Ok(records)
    }

    /// Streams a trace in either format (auto-detected from the first byte)
    /// into `sink`, without ever materializing a full [`TraceBundle`] —
    /// the path the lint detector takes over million-record `.dtb` traces.
    /// Returns the number of data records delivered.
    pub fn stream<R: BufRead, S: RecordSink>(mut r: R, sink: &mut S) -> io::Result<u64> {
        let head = r.fill_buf()?;
        match head.first() {
            None => Ok(0),
            Some(&b) => match TraceFormat::detect(b) {
                TraceFormat::Binary => crate::binary::stream_bundles(r, sink),
                TraceFormat::Jsonl => Self::stream_jsonl(r, sink),
            },
        }
    }

    /// Round-trips through the JSONL encoding into a byte buffer (useful for
    /// storage accounting and tests).
    pub fn to_jsonl_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_jsonl(&mut buf)
            .expect("Vec<u8> writes are infallible");
        buf
    }

    /// Writes the bundle in the compact `.dtb` binary format
    /// (see [`crate::binary`]). Wrap file writers in a `BufWriter`: the
    /// encoder emits many small frames.
    pub fn write_binary<W: Write>(&self, mut w: W) -> io::Result<()> {
        crate::binary::write_bundle(self, &mut w)
    }

    /// Reads a bundle from the `.dtb` binary format. Concatenated sections
    /// merge with the same semantics as concatenated JSONL.
    pub fn read_binary<R: BufRead>(r: R) -> io::Result<Self> {
        let mut sink = Collector::default();
        crate::binary::stream_bundles(r, &mut sink)?;
        Ok(sink.out)
    }

    /// Round-trips through the binary encoding into a byte buffer.
    pub fn to_binary_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_binary(&mut buf)
            .expect("Vec<u8> writes are infallible");
        buf
    }

    /// Writes the bundle in the requested format.
    pub fn save<W: Write>(&self, w: W, format: TraceFormat) -> io::Result<()> {
        match format {
            TraceFormat::Jsonl => self.write_jsonl(w),
            TraceFormat::Binary => self.write_binary(w),
        }
    }

    /// Reads a bundle in either format, auto-detected from the first byte
    /// ([`TraceFormat::detect`]). An empty stream is an empty bundle, as it
    /// is for JSONL.
    pub fn load<R: BufRead>(r: R) -> io::Result<Self> {
        let mut sink = Collector::default();
        Self::stream(r, &mut sink)?;
        Ok(sink.out)
    }

    /// All distinct tasks mentioned anywhere in the bundle, in task-order
    /// first, then any stragglers in record order. Dedup is a symbol-keyed
    /// hash probe, so the scan stays linear in the record count.
    pub fn all_tasks(&self) -> Vec<TaskKey> {
        let mut tasks = self.meta.task_order.clone();
        let mut seen: HashSet<TaskKey> = tasks.iter().cloned().collect();
        let mut push = |t: &TaskKey| {
            if seen.insert(t.clone()) {
                tasks.push(t.clone());
            }
        };
        for r in &self.vol {
            push(&r.task);
        }
        for r in &self.vfd {
            push(&r.task);
        }
        for r in &self.files {
            push(&r.task);
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{FileKey, ObjectKey};
    use crate::time::{Interval, Timestamp};
    use crate::vfd::{AccessType, IoKind};
    use crate::vol::{ObjectDescription, ObjectKind};

    fn bundle() -> TraceBundle {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t1"));
        b.vol.push(VolRecord {
            task: TaskKey::new("t1"),
            file: FileKey::new("f.h5"),
            object: ObjectKey::new("/d"),
            kind: ObjectKind::Dataset,
            lifetimes: vec![Interval::new(Timestamp(0), Timestamp(5))],
            description: ObjectDescription::default(),
            accesses: vec![],
        });
        b.vfd.push(VfdRecord {
            task: TaskKey::new("t1"),
            file: FileKey::new("f.h5"),
            kind: IoKind::Write,
            offset: 0,
            len: 128,
            access: AccessType::RawData,
            object: ObjectKey::new("/d"),
            start: Timestamp(1),
            end: Timestamp(2),
        });
        b.files.push(FileRecord {
            task: TaskKey::new("t1"),
            file: FileKey::new("f.h5"),
            lifetimes: vec![Interval::new(Timestamp(0), Timestamp(5))],
            stats: Default::default(),
        });
        b
    }

    #[test]
    fn jsonl_round_trip() {
        let b = bundle();
        let bytes = b.to_jsonl_bytes();
        let back = TraceBundle::read_jsonl(&bytes[..]).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn concatenated_bundles_merge_on_read() {
        let mut b1 = bundle();
        b1.meta.workflow = "wf".into();
        let mut b2 = bundle();
        b2.meta.task_order = vec![TaskKey::new("t2")];
        let mut bytes = b1.to_jsonl_bytes();
        bytes.extend(b2.to_jsonl_bytes());
        let back = TraceBundle::read_jsonl(&bytes[..]).unwrap();
        assert_eq!(back.meta.workflow, "wf");
        assert_eq!(
            back.meta.task_order,
            vec![TaskKey::new("t1"), TaskKey::new("t2")]
        );
        assert_eq!(back.vol.len(), 2);
        assert_eq!(back.vfd.len(), 2);
    }

    #[test]
    fn merge_deduplicates_task_order() {
        let mut a = bundle();
        let b = bundle();
        a.merge(b);
        assert_eq!(a.meta.task_order.len(), 1);
        assert_eq!(a.vol.len(), 2);
    }

    #[test]
    fn storage_accounting_positive_and_linear_in_records() {
        let b = bundle();
        let one = b.vfd_storage_bytes();
        assert!(one > 0);
        let mut b2 = b.clone();
        b2.vfd.push(b.vfd[0].clone());
        assert!(b2.vfd_storage_bytes() > one);
        assert!(b.vol_storage_bytes() > 0);
        assert_eq!(b.application_bytes(), 128);
    }

    #[test]
    fn all_tasks_includes_stragglers() {
        let mut b = bundle();
        b.vfd.push(VfdRecord {
            task: TaskKey::new("ghost"),
            ..b.vfd[0].clone()
        });
        let tasks = b.all_tasks();
        assert_eq!(tasks, vec![TaskKey::new("t1"), TaskKey::new("ghost")]);
    }

    #[test]
    fn degraded_marks_survive_round_trip_and_merge() {
        let mut a = bundle();
        a.mark_degraded(TaskKey::new("t1"));
        a.mark_degraded(TaskKey::new("t1")); // idempotent
        assert!(a.is_degraded(&TaskKey::new("t1")));
        assert!(a.has_degraded_tasks());
        let back = TraceBundle::read_jsonl(&a.to_jsonl_bytes()[..]).unwrap();
        assert_eq!(back.meta.degraded_tasks, vec![TaskKey::new("t1")]);

        // Merge unions degraded sets without duplicates.
        let mut b = bundle();
        b.meta.task_order = vec![TaskKey::new("t2")];
        b.mark_degraded(TaskKey::new("t2"));
        a.merge(b.clone());
        assert_eq!(
            a.meta.degraded_tasks,
            vec![TaskKey::new("t1"), TaskKey::new("t2")]
        );

        // Concatenated JSONL streams union degraded sets too.
        let mut first = bundle();
        first.mark_degraded(TaskKey::new("t1"));
        let mut bytes = first.to_jsonl_bytes();
        bytes.extend(b.to_jsonl_bytes());
        let merged = TraceBundle::read_jsonl(&bytes[..]).unwrap();
        assert_eq!(
            merged.meta.degraded_tasks,
            vec![TaskKey::new("t1"), TaskKey::new("t2")]
        );
    }

    #[test]
    fn recovered_marks_survive_round_trip_and_merge() {
        let mut a = bundle();
        a.mark_recovered(TaskKey::new("t1"));
        a.mark_recovered(TaskKey::new("t1")); // idempotent
        assert!(a.is_recovered(&TaskKey::new("t1")));
        assert!(a.has_recovered_tasks());
        let back = TraceBundle::read_jsonl(&a.to_jsonl_bytes()[..]).unwrap();
        assert_eq!(back.meta.recovered_tasks, vec![TaskKey::new("t1")]);

        // Merge unions recovered sets without duplicates.
        let mut b = bundle();
        b.meta.task_order = vec![TaskKey::new("t2")];
        b.mark_recovered(TaskKey::new("t2"));
        a.merge(b.clone());
        assert_eq!(
            a.meta.recovered_tasks,
            vec![TaskKey::new("t1"), TaskKey::new("t2")]
        );

        // Concatenated JSONL streams union recovered sets too, and a Meta
        // line written before recovered_tasks existed decodes to an empty
        // set without affecting the union.
        let mut bytes = b.to_jsonl_bytes();
        bytes.extend(br#"{"Meta":{"workflow":"old","task_order":[],"page_size":4096}}"#.as_slice());
        bytes.push(b'\n');
        let merged = TraceBundle::read_jsonl(&bytes[..]).unwrap();
        assert_eq!(merged.meta.recovered_tasks, vec![TaskKey::new("t2")]);
        assert!(!merged.is_recovered(&TaskKey::new("t1")));
    }

    #[test]
    fn pre_salvage_meta_line_still_parses() {
        // A Meta line written before degraded_tasks existed must decode
        // (serde default) to an empty set.
        let line = r#"{"Meta":{"workflow":"old","task_order":[],"page_size":4096}}"#;
        let back = TraceBundle::read_jsonl(line.as_bytes()).unwrap();
        assert!(back.meta.degraded_tasks.is_empty());
        assert_eq!(back.meta.workflow, "old");
    }

    #[test]
    fn origin_survives_jsonl_and_legacy_lines_default_to_none() {
        let mut b = bundle();
        b.meta.origin = Some(TraceOrigin {
            workload: "ddmd".into(),
            params: "default".into(),
            tool_version: "0.1.0".into(),
        });
        let back = TraceBundle::read_jsonl(&b.to_jsonl_bytes()[..]).unwrap();
        assert_eq!(back.meta.origin, b.meta.origin);

        // A Meta line written before provenance existed decodes to None.
        let line = r#"{"Meta":{"workflow":"old","task_order":[],"page_size":4096}}"#;
        let old = TraceBundle::read_jsonl(line.as_bytes()).unwrap();
        assert!(old.meta.origin.is_none());

        // Concatenation: the first origin wins; a later origin fills a gap.
        let mut bytes = line.as_bytes().to_vec();
        bytes.push(b'\n');
        bytes.extend(b.to_jsonl_bytes());
        let merged = TraceBundle::read_jsonl(&bytes[..]).unwrap();
        assert_eq!(merged.meta.origin, b.meta.origin);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let b = bundle();
        let mut bytes = b"\n\n".to_vec();
        bytes.extend(b.to_jsonl_bytes());
        bytes.extend(b"\n");
        let back = TraceBundle::read_jsonl(&bytes[..]).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn invalid_line_is_an_error() {
        let err = TraceBundle::read_jsonl(&b"not json\n"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unsorted_degraded_set_is_normalized_on_read() {
        let line = r#"{"Meta":{"workflow":"wf","task_order":[],"page_size":4096,"degraded_tasks":["zz","aa","zz"]}}"#;
        let back = TraceBundle::read_jsonl(line.as_bytes()).unwrap();
        assert_eq!(
            back.meta.degraded_tasks,
            vec![TaskKey::new("aa"), TaskKey::new("zz")]
        );
        assert!(back.is_degraded(&TaskKey::new("aa")));
        assert!(!back.is_degraded(&TaskKey::new("mm")));
    }

    #[test]
    fn stages_survive_jsonl_and_merge() {
        let mut a = bundle();
        a.meta.stages = vec![vec![TaskKey::new("t1")], vec![TaskKey::new("t2")]];
        let back = TraceBundle::read_jsonl(&a.to_jsonl_bytes()[..]).unwrap();
        assert_eq!(back.meta.stages, a.meta.stages);
        assert_eq!(back.meta.stage_of(&TaskKey::new("t2")), Some(1));

        // Merging a stage-less fragment into a staged bundle keeps the
        // stages; merging the other way adopts them.
        let mut plain = bundle();
        plain.merge(a.clone());
        assert_eq!(plain.meta.stages, a.meta.stages);
        a.merge(bundle());
        assert_eq!(a.meta.stages.len(), 2);
    }

    #[test]
    fn stream_counts_records_in_both_formats() {
        struct Counter(u64);
        impl RecordSink for Counter {
            fn meta(&mut self, _: TraceMeta) -> io::Result<()> {
                Ok(())
            }
            fn vol(&mut self, _: VolRecord) -> io::Result<()> {
                self.0 += 1;
                Ok(())
            }
            fn vfd(&mut self, _: VfdRecord) -> io::Result<()> {
                self.0 += 1;
                Ok(())
            }
            fn file(&mut self, _: FileRecord) -> io::Result<()> {
                self.0 += 1;
                Ok(())
            }
        }
        let b = bundle();
        for bytes in [b.to_jsonl_bytes(), b.to_binary_bytes()] {
            let mut sink = Counter(0);
            let n = TraceBundle::stream(&bytes[..], &mut sink).unwrap();
            assert_eq!(n, 3);
            assert_eq!(sink.0, 3);
        }
    }

    #[test]
    fn binary_round_trip() {
        let mut b = bundle();
        b.mark_degraded(TaskKey::new("t1"));
        let bytes = b.to_binary_bytes();
        let back = TraceBundle::read_binary(&bytes[..]).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let b = bundle();
        assert!(b.to_binary_bytes().len() < b.to_jsonl_bytes().len());
    }

    #[test]
    fn concatenated_binary_sections_merge_on_read() {
        let b1 = bundle();
        let mut b2 = bundle();
        b2.meta.task_order = vec![TaskKey::new("t2")];
        b2.mark_degraded(TaskKey::new("t2"));
        let mut bytes = b1.to_binary_bytes();
        bytes.extend(b2.to_binary_bytes());
        let back = TraceBundle::read_binary(&bytes[..]).unwrap();
        assert_eq!(back.meta.workflow, "wf");
        assert_eq!(
            back.meta.task_order,
            vec![TaskKey::new("t1"), TaskKey::new("t2")]
        );
        assert_eq!(back.meta.degraded_tasks, vec![TaskKey::new("t2")]);
        assert_eq!(back.vol.len(), 2);
        assert_eq!(back.vfd.len(), 2);
        assert_eq!(back.files.len(), 2);
    }

    #[test]
    fn load_auto_detects_both_formats() {
        let b = bundle();
        let from_jsonl = TraceBundle::load(&b.to_jsonl_bytes()[..]).unwrap();
        let from_binary = TraceBundle::load(&b.to_binary_bytes()[..]).unwrap();
        assert_eq!(from_jsonl, b);
        assert_eq!(from_binary, b);
        // Empty stream is an empty bundle in both readings.
        assert_eq!(TraceBundle::load(&b""[..]).unwrap(), TraceBundle::default());
    }

    #[test]
    fn format_parsing_and_detection() {
        use std::str::FromStr;
        assert_eq!(TraceFormat::from_str("jsonl"), Ok(TraceFormat::Jsonl));
        assert_eq!(TraceFormat::from_str("binary"), Ok(TraceFormat::Binary));
        assert_eq!(TraceFormat::from_str("dtb"), Ok(TraceFormat::Binary));
        assert!(TraceFormat::from_str("csv").is_err());
        assert_eq!(TraceFormat::detect(b'{'), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::detect(0x89), TraceFormat::Binary);
        assert_eq!(TraceFormat::Binary.extension(), "dtb");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ids::{FileKey, ObjectKey};
    use crate::time::{Interval, Timestamp};
    use crate::vfd::{AccessType, IoKind};
    use crate::vol::{
        DataType, LayoutKind, ObjectDescription, ObjectKind, VolAccess, VolAccessKind,
    };
    use proptest::prelude::*;

    fn arb_vfd() -> impl Strategy<Value = VfdRecord> {
        (
            "[a-z]{1,8}",
            "[a-z]{1,8}\\.h5",
            0u64..1 << 30,
            0u64..1 << 20,
            prop::bool::ANY,
            prop::bool::ANY,
            0u64..1 << 40,
        )
            .prop_map(|(task, file, offset, len, write, meta, t)| VfdRecord {
                task: TaskKey::new(task),
                file: FileKey::new(file),
                kind: if write { IoKind::Write } else { IoKind::Read },
                offset,
                len,
                access: if meta {
                    AccessType::Metadata
                } else {
                    AccessType::RawData
                },
                object: ObjectKey::new("/d"),
                start: Timestamp(t),
                end: Timestamp(t + 10),
            })
    }

    fn arb_vol() -> impl Strategy<Value = VolRecord> {
        (
            "[a-z]{1,8}",
            "[a-z]{1,8}\\.h5",
            "/[a-z]{1,12}",
            prop::collection::vec(1u64..1000, 0..4),
            prop::collection::vec((prop::bool::ANY, 1u64..1 << 20, 0u64..1 << 30), 0..6),
        )
            .prop_map(|(task, file, object, shape, accs)| VolRecord {
                task: TaskKey::new(task),
                file: FileKey::new(file),
                object: ObjectKey::new(object),
                kind: ObjectKind::Dataset,
                lifetimes: vec![Interval::new(Timestamp(1), Timestamp(2))],
                description: ObjectDescription {
                    logical_size: shape.iter().product::<u64>(),
                    shape,
                    dtype: Some(DataType::Float { width: 8 }),
                    layout: Some(LayoutKind::Chunked),
                    chunk_shape: vec![],
                },
                accesses: accs
                    .into_iter()
                    .map(|(read, bytes, t)| VolAccess {
                        kind: if read {
                            VolAccessKind::Read
                        } else {
                            VolAccessKind::Write
                        },
                        count: 1,
                        bytes,
                        sel_offset: vec![],
                        sel_count: vec![],
                        at: Timestamp(t),
                    })
                    .collect(),
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any bundle survives the JSONL encoding byte-exactly.
        #[test]
        fn jsonl_round_trip_arbitrary(
            vfd in prop::collection::vec(arb_vfd(), 0..30),
            vol in prop::collection::vec(arb_vol(), 0..15),
            tasks in prop::collection::vec("[a-z]{1,8}", 0..6),
        ) {
            let mut b = TraceBundle::new("prop");
            for t in tasks {
                b.push_task(TaskKey::new(t));
            }
            b.vfd = vfd;
            b.vol = vol;
            let bytes = b.to_jsonl_bytes();
            let back = TraceBundle::read_jsonl(&bytes[..]).unwrap();
            prop_assert_eq!(back, b);
        }

        /// JSONL and binary encodings of an arbitrary bundle — including
        /// degraded (chaos-salvaged) task sets — decode to identical
        /// bundles, via both the explicit readers and format-sniffing
        /// `load`. The binary form is also never larger.
        #[test]
        fn jsonl_and_binary_are_equivalent(
            vfd in prop::collection::vec(arb_vfd(), 0..30),
            vol in prop::collection::vec(arb_vol(), 0..15),
            tasks in prop::collection::vec("[a-z]{1,8}", 0..6),
            degraded_mask in prop::collection::vec(prop::bool::ANY, 6),
        ) {
            let mut b = TraceBundle::new("prop-eq");
            for (i, t) in tasks.iter().enumerate() {
                b.push_task(TaskKey::new(t));
                if degraded_mask[i] {
                    b.mark_degraded(TaskKey::new(t));
                }
            }
            b.vfd = vfd;
            b.vol = vol;
            let jsonl = b.to_jsonl_bytes();
            let binary = b.to_binary_bytes();
            let via_jsonl = TraceBundle::read_jsonl(&jsonl[..]).unwrap();
            let via_binary = TraceBundle::read_binary(&binary[..]).unwrap();
            prop_assert_eq!(&via_jsonl, &b);
            prop_assert_eq!(&via_binary, &b);
            prop_assert_eq!(TraceBundle::load(&jsonl[..]).unwrap(), b.clone());
            prop_assert_eq!(TraceBundle::load(&binary[..]).unwrap(), b);
            prop_assert!(binary.len() <= jsonl.len());
        }
    }
}
