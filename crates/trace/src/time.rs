//! Time-ordering support for DaYu's "time-sensitive" traces.
//!
//! The paper stresses that DaYu's data is *time-ordered*: FTG/SDG layouts are
//! arranged by event start/end times and the overhead evaluation reports the
//! cost of keeping traces time-sensitive. All records therefore carry
//! [`Timestamp`]s in nanoseconds.
//!
//! Two clock sources implement [`Clock`]:
//!
//! * [`RealClock`] — monotonic wall time, used when measuring the profiler's
//!   actual overhead (Figures 9 and 10).
//! * [`ManualClock`] — an explicitly advanced virtual clock, used by the
//!   discrete-event replay in `dayu-sim` and by deterministic tests.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A point in time, in nanoseconds from an arbitrary per-trace origin.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The trace origin.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Nanoseconds since the trace origin.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the trace origin, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier` in nanoseconds.
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// This timestamp advanced by `nanos`.
    pub fn plus(self, nanos: u64) -> Timestamp {
        Timestamp(self.0 + nanos)
    }
}

/// A monotonic time source for stamping trace records.
///
/// Implementations must be cheap and thread-safe: the VFD profiler calls
/// [`Clock::now`] twice per I/O operation on the application's critical path.
pub trait Clock: Send + Sync {
    /// Current time relative to the clock's origin.
    fn now(&self) -> Timestamp;
}

/// Monotonic wall-clock time relative to construction.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.origin.elapsed().as_nanos() as u64)
    }
}

/// An explicitly advanced virtual clock.
///
/// Cloning shares the underlying counter, so a workload driver and the
/// profiler it feeds observe the same virtual time.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock starting at the origin.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        let c = Self::new();
        c.nanos.store(t.0, Ordering::Relaxed);
        c
    }

    /// Advances the clock by `nanos` and returns the new time.
    pub fn advance(&self, nanos: u64) -> Timestamp {
        Timestamp(self.nanos.fetch_add(nanos, Ordering::Relaxed) + nanos)
    }

    /// Jumps the clock forward to `t`. Times never move backwards: if `t` is
    /// in the past the clock is left unchanged.
    pub fn advance_to(&self, t: Timestamp) {
        self.nanos.fetch_max(t.0, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.nanos.load(Ordering::Relaxed))
    }
}

/// An interval `[start, end]` stamped on lifetimes (object lifetimes in
/// Table I, file lifetimes in Table II).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// When the resource was acquired/opened.
    pub start: Timestamp,
    /// When the resource was released/closed.
    pub end: Timestamp,
}

impl Interval {
    /// An interval covering `[start, end]`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        Self { start, end }
    }

    /// Duration in nanoseconds (saturating).
    pub fn duration(&self) -> u64 {
        self.end.since(self.start)
    }

    /// Whether `t` falls within the closed interval.
    pub fn contains(&self, t: Timestamp) -> bool {
        self.start <= t && t <= self.end
    }

    /// Whether two intervals overlap (closed-interval semantics).
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        assert_eq!(c.advance(5), Timestamp(5));
        assert_eq!(c.now(), Timestamp(5));
        c.advance_to(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        // Never goes backwards.
        c.advance_to(Timestamp(10));
        assert_eq!(c.now(), Timestamp(100));
    }

    #[test]
    fn manual_clock_clones_share_state() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), Timestamp(42));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        assert_eq!(t.since(Timestamp(500_000_000)), 1_000_000_000);
        assert_eq!(Timestamp(5).since(Timestamp(10)), 0, "saturates");
        assert_eq!(t.plus(1).nanos(), 1_500_000_001);
    }

    #[test]
    fn interval_relations() {
        let a = Interval::new(Timestamp(10), Timestamp(20));
        let b = Interval::new(Timestamp(20), Timestamp(30));
        let c = Interval::new(Timestamp(21), Timestamp(25));
        assert_eq!(a.duration(), 10);
        assert!(a.contains(Timestamp(10)));
        assert!(a.contains(Timestamp(20)));
        assert!(!a.contains(Timestamp(21)));
        assert!(a.overlaps(&b), "closed intervals share an endpoint");
        assert!(!a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn manual_clock_is_thread_safe() {
        let c = ManualClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.advance(1);
                    }
                });
            }
        });
        assert_eq!(c.now(), Timestamp(4000));
    }
}
