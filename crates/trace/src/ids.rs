//! Lightweight string keys identifying tasks, files and data objects.
//!
//! DaYu correlates records from two independent profiling layers (VOL and
//! VFD) and across many tasks of a workflow. Correlation happens by *name*:
//! the task name supplied by the workflow launcher, the file name, and the
//! full object path inside the file (e.g. `/group/dataset`). These newtypes
//! keep the three name spaces from being mixed up.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! string_key {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub String);

        impl $name {
            /// Creates a key from anything string-like.
            pub fn new(s: impl Into<String>) -> Self {
                Self(s.into())
            }

            /// The underlying name.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

string_key!(
    /// The name of a workflow task, as announced to DaYu by the workflow
    /// launcher or the application itself (the paper notes "the workflow
    /// launcher or application must inform DaYu of the current task").
    TaskKey
);

string_key!(
    /// The name of a file a task interacts with.
    FileKey
);

string_key!(
    /// The full path of a data object (group, dataset or attribute) within a
    /// file, e.g. `/simulation/contact_map`.
    ObjectKey
);

impl ObjectKey {
    /// Object key used for I/O that cannot be attributed to any data object
    /// (e.g. superblock reads before any object is open). Grouped under the
    /// pseudo-object the paper's SDGs label "File-Metadata".
    pub fn file_metadata() -> Self {
        Self("File-Metadata".to_owned())
    }

    /// Returns the last path component (the object's leaf name).
    pub fn leaf(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or(&self.0)
    }

    /// Returns the parent path, or `None` when the key has no `/` separator
    /// or is the root.
    pub fn parent(&self) -> Option<&str> {
        let idx = self.0.rfind('/')?;
        if idx == 0 {
            if self.0.len() > 1 {
                Some("/")
            } else {
                None
            }
        } else {
            Some(&self.0[..idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let t = TaskKey::new("run_gettracks");
        assert_eq!(t.to_string(), "run_gettracks");
        assert_eq!(t.as_str(), "run_gettracks");
    }

    #[test]
    fn object_leaf_and_parent() {
        let o = ObjectKey::new("/group/inner/dataset");
        assert_eq!(o.leaf(), "dataset");
        assert_eq!(o.parent(), Some("/group/inner"));

        let top = ObjectKey::new("/dataset");
        assert_eq!(top.leaf(), "dataset");
        assert_eq!(top.parent(), Some("/"));

        let root = ObjectKey::new("/");
        assert_eq!(root.parent(), None);

        let bare = ObjectKey::new("dataset");
        assert_eq!(bare.leaf(), "dataset");
        assert_eq!(bare.parent(), None);
    }

    #[test]
    fn keys_are_distinct_types() {
        // Compile-time property; runtime sanity that conversions work.
        let f: FileKey = "a.h5".into();
        let o: ObjectKey = String::from("/d").into();
        assert_eq!(f.as_ref(), "a.h5");
        assert_eq!(o.as_ref(), "/d");
    }

    #[test]
    fn serde_is_transparent() {
        let f = FileKey::new("file.h5");
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(json, "\"file.h5\"");
        let back: FileKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn file_metadata_pseudo_object() {
        assert_eq!(ObjectKey::file_metadata().as_str(), "File-Metadata");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = TaskKey::new("a");
        let b = TaskKey::new("b");
        assert!(a < b);
    }
}
