//! Lightweight interned keys identifying tasks, files and data objects.
//!
//! DaYu correlates records from two independent profiling layers (VOL and
//! VFD) and across many tasks of a workflow. Correlation happens by *name*:
//! the task name supplied by the workflow launcher, the file name, and the
//! full object path inside the file (e.g. `/group/dataset`). These newtypes
//! keep the three name spaces from being mixed up.
//!
//! Since the overhead overhaul, each key holds a [`Symbol`] — an index into
//! the process-wide interner — instead of an owned `String`. Cloning a key
//! (which the VFD profiler does three times per recorded operation) is a
//! `u32` copy, equality and hashing are integer operations, and `as_str`
//! resolves through the interner without allocating. The public API is
//! unchanged: keys still construct from anything string-like, display as
//! their name, order lexicographically, and serialize as transparent JSON
//! strings.

use crate::intern::Symbol;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::borrow::Cow;
use std::fmt;

macro_rules! string_key {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        pub struct $name(Symbol);

        impl $name {
            /// Creates a key from anything string-like, interning the name.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Symbol::intern(s.as_ref()))
            }

            /// The underlying name.
            pub fn as_str(&self) -> &'static str {
                self.0.as_str()
            }

            /// The interned symbol behind this key (integer identity within
            /// this process; used by borrow-keyed indexes and the binary
            /// trace store).
            pub fn symbol(&self) -> Symbol {
                self.0
            }

            /// Wraps an already-interned symbol.
            pub fn from_symbol(sym: Symbol) -> Self {
                Self(sym)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self(Symbol::intern(""))
            }
        }

        impl PartialOrd for $name {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        impl Ord for $name {
            /// Lexicographic by name (symbols themselves order by interning
            /// time, which would be nondeterministic across runs).
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                if self.0 == other.0 {
                    std::cmp::Ordering::Equal
                } else {
                    self.as_str().cmp(other.as_str())
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self::new(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }

        impl Serialize for $name {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_str(self.as_str())
            }
        }

        impl<'de> Deserialize<'de> for $name {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                // Cow borrows from the input where the format allows
                // (JSONL lines without escapes), so loading a trace interns
                // straight from the parse buffer without a transient String.
                let s: Cow<'de, str> = Deserialize::deserialize(deserializer)?;
                Ok(Self::new(s))
            }
        }
    };
}

string_key!(
    /// The name of a workflow task, as announced to DaYu by the workflow
    /// launcher or the application itself (the paper notes "the workflow
    /// launcher or application must inform DaYu of the current task").
    TaskKey
);

string_key!(
    /// The name of a file a task interacts with.
    FileKey
);

string_key!(
    /// The full path of a data object (group, dataset or attribute) within a
    /// file, e.g. `/simulation/contact_map`.
    ObjectKey
);

impl ObjectKey {
    /// Object key used for I/O that cannot be attributed to any data object
    /// (e.g. superblock reads before any object is open). Grouped under the
    /// pseudo-object the paper's SDGs label "File-Metadata". The symbol is
    /// cached: this sits on the per-operation record path.
    pub fn file_metadata() -> Self {
        use std::sync::OnceLock;
        static FM: OnceLock<Symbol> = OnceLock::new();
        Self(*FM.get_or_init(|| Symbol::intern("File-Metadata")))
    }

    /// Returns the last path component (the object's leaf name).
    pub fn leaf(&self) -> &str {
        let s = self.as_str();
        s.rsplit('/').next().unwrap_or(s)
    }

    /// Returns the parent path, or `None` when the key has no `/` separator
    /// or is the root.
    pub fn parent(&self) -> Option<&str> {
        let s = self.as_str();
        let idx = s.rfind('/')?;
        if idx == 0 {
            if s.len() > 1 {
                Some("/")
            } else {
                None
            }
        } else {
            Some(&s[..idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let t = TaskKey::new("run_gettracks");
        assert_eq!(t.to_string(), "run_gettracks");
        assert_eq!(t.as_str(), "run_gettracks");
    }

    #[test]
    fn object_leaf_and_parent() {
        let o = ObjectKey::new("/group/inner/dataset");
        assert_eq!(o.leaf(), "dataset");
        assert_eq!(o.parent(), Some("/group/inner"));

        let top = ObjectKey::new("/dataset");
        assert_eq!(top.leaf(), "dataset");
        assert_eq!(top.parent(), Some("/"));

        let root = ObjectKey::new("/");
        assert_eq!(root.parent(), None);

        let bare = ObjectKey::new("dataset");
        assert_eq!(bare.leaf(), "dataset");
        assert_eq!(bare.parent(), None);
    }

    #[test]
    fn keys_are_distinct_types() {
        // Compile-time property; runtime sanity that conversions work.
        let f: FileKey = "a.h5".into();
        let o: ObjectKey = String::from("/d").into();
        assert_eq!(f.as_ref(), "a.h5");
        assert_eq!(o.as_ref(), "/d");
    }

    #[test]
    fn serde_is_transparent() {
        let f = FileKey::new("file.h5");
        let json = serde_json::to_string(&f).unwrap();
        assert_eq!(json, "\"file.h5\"");
        let back: FileKey = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn file_metadata_pseudo_object() {
        assert_eq!(ObjectKey::file_metadata().as_str(), "File-Metadata");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse order so symbol indices disagree with
        // lexicographic order — Ord must still compare by name.
        let b = TaskKey::new("lexico-b");
        let a = TaskKey::new("lexico-a");
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn clones_share_the_symbol() {
        let t = TaskKey::new("shared");
        let c = t.clone();
        assert_eq!(t.symbol(), c.symbol());
        assert_eq!(TaskKey::from_symbol(t.symbol()), t);
    }

    #[test]
    fn serde_with_escapes_still_interns() {
        // Escaped JSON forces serde to hand us an owned Cow — both paths
        // must intern identically.
        let k: ObjectKey = serde_json::from_str(r#""/abc""#).unwrap();
        assert_eq!(k, ObjectKey::new("/abc"));
    }
}
