//! # dayu-trace
//!
//! Trace data model for the DaYu framework.
//!
//! This crate defines the two record families the paper's Data Semantic
//! Mapper collects:
//!
//! * **VOL records** ([`vol::VolRecord`]) — object-level semantics captured by
//!   the high-level (Virtual Object Layer) profiler, covering the six
//!   parameters of Table I of the paper: task name, file name, object name,
//!   object lifetime, object description, and object accesses.
//! * **VFD records** ([`vfd::VfdRecord`]) — file-level I/O semantics captured
//!   by the low-level (Virtual File Driver) profiler, covering the seven
//!   parameters of Table II: task name, file name, file lifetime, file
//!   statistics, I/O operations (with file address regions), access type
//!   (metadata vs raw data), and the data object responsible.
//!
//! It also provides the [`context::SharedContext`] — the analogue of the
//! shared-memory channel the paper uses to communicate the *current data
//! object* from the VOL layer down to the VFD layer so that each low-level
//! operation can be attributed to the semantic object that caused it — and
//! the [`store::TraceBundle`] container with JSONL persistence used by the
//! Workflow Analyzer.

pub mod binary;
pub mod context;
pub mod ids;
pub mod intern;
pub mod section;
pub mod sha256;
pub mod store;
pub mod time;
pub mod vfd;
pub mod vol;
pub mod wire;

pub use context::SharedContext;
pub use ids::{FileKey, ObjectKey, TaskKey};
pub use intern::Symbol;
pub use section::{decode_section, SectionDecodeError};
pub use sha256::{sha256, Sha256};
pub use store::{RecordSink, TraceBundle, TraceFormat, TraceMeta, TraceOrigin};
pub use time::{Clock, ManualClock, RealClock, Timestamp};
pub use vfd::{AccessType, FileRecord, IoKind, VfdRecord};
pub use vol::{ObjectDescription, ObjectKind, VolAccess, VolAccessKind, VolRecord};
