//! Process-wide string interner backing the trace key types.
//!
//! DaYu's hot path — the VFD profiler constructing a [`crate::vfd::VfdRecord`]
//! per low-level operation, the shared context publishing the current task
//! and object, the analyzer deduplicating graph nodes — is dominated by
//! string traffic over a *tiny* set of distinct names (task names, file
//! names, object paths). Interning collapses every such name to a
//! [`Symbol`]: a `u32` index into an append-only process-wide table.
//! Cloning, hashing and equality become integer operations and the record
//! hot path stops allocating entirely.
//!
//! Interned strings are leaked (`Box::leak`) so `as_str` can hand out
//! `&'static str` without a lock guard. The table only grows with the number
//! of *distinct* strings ever interned — bounded by workload vocabulary, not
//! by operation count — which is the standard trade-off interners like
//! `ustr` or rustc's symbol table make.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::OnceLock;

/// A handle to an interned string: 4 bytes, `Copy`, integer compare/hash.
///
/// Symbols are only meaningful within the current process. Persisting them
/// requires writing the string table alongside (see the `.dtb` binary trace
/// store, which embeds a per-file table and re-interns on load). The derived
/// ordering is *interning order*, not lexicographic — the key newtypes in
/// [`crate::ids`] provide lexicographic `Ord` by comparing resolved strings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Pool {
    map: HashMap<&'static str, u32>,
    table: Vec<&'static str>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(Pool {
            map: HashMap::new(),
            table: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning the same symbol for equal strings forever
    /// after. Read-lock fast path; the write lock is only taken the first
    /// time a distinct string is seen.
    pub fn intern(s: &str) -> Symbol {
        let p = pool();
        if let Some(&id) = p.read().map.get(s) {
            return Symbol(id);
        }
        let mut w = p.write();
        // Double-check: another thread may have interned between locks.
        if let Some(&id) = w.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(w.table.len()).expect("interner table overflow");
        w.table.push(leaked);
        w.map.insert(leaked, id);
        Symbol(id)
    }

    /// Looks up the symbol for `s` without interning: `None` when `s` was
    /// never interned. Allocation-free probe for read-only lookups
    /// (e.g. `Graph::find`).
    pub fn lookup(s: &str) -> Option<Symbol> {
        pool().read().map.get(s).copied().map(Symbol)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        pool().read().table[self.0 as usize]
    }

    /// The raw table index (diagnostics; stable within this process only).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Number of distinct strings interned so far (diagnostics / tests).
    pub fn interned_count() -> usize {
        pool().read().table.len()
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_string_same_symbol() {
        let a = Symbol::intern("alpha-test-string");
        let b = Symbol::intern("alpha-test-string");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "alpha-test-string");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("distinct-a");
        let b = Symbol::intern("distinct-b");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(Symbol::lookup("never-interned-i-promise-xyz"), None);
        let s = Symbol::intern("looked-up-after-intern");
        assert_eq!(Symbol::lookup("looked-up-after-intern"), Some(s));
    }

    #[test]
    fn symbols_are_stable_under_interleaved_interning() {
        let a = Symbol::intern("stability-a");
        for i in 0..100 {
            Symbol::intern(&format!("stability-filler-{i}"));
        }
        let a2 = Symbol::intern("stability-a");
        assert_eq!(a, a2, "later interning never remaps a symbol");
        assert_eq!(a2.as_str(), "stability-a");
    }

    #[test]
    fn no_collision_across_similar_strings() {
        // Strings that a weak hash could conflate must stay distinct.
        let pairs = [
            ("/group/dataset", "/group/dataset "),
            ("a.h5", "a.h5\0"),
            ("task_1", "task_10"),
            ("", " "),
        ];
        for (x, y) in pairs {
            assert_ne!(Symbol::intern(x), Symbol::intern(y), "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| (i, Symbol::intern(&format!("concurrent-{}", i % 50))))
                        .map(|(i, s)| {
                            assert_eq!(s.as_str(), format!("concurrent-{}", i % 50));
                            let _ = t;
                            s
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "every thread resolved identical symbols");
        }
    }

    #[test]
    fn empty_string_interns() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
        assert_eq!(Symbol::intern(""), e);
    }
}
