//! Many-thread stress test for `SharedContext` — the paper's shared-memory
//! VOL→VFD channel must never expose a torn (object, access) pair, and
//! nested scopes must restore exactly, no matter how many writer and
//! reader threads hammer one shared handle.

use dayu_trace::vfd::AccessType;
use dayu_trace::SharedContext;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

const WRITERS: usize = 4;
const READERS: usize = 4;
const ITERS: usize = 5_000;

/// Every writer publishes only pairs from this table, so any snapshot a
/// reader takes must match one row exactly — a mixed row is a torn read.
const PAIRS: [(&str, AccessType); 4] = [
    ("/w0/meta", AccessType::Metadata),
    ("/w0/raw", AccessType::RawData),
    ("/w1/meta", AccessType::Metadata),
    ("/w1/raw", AccessType::RawData),
];

#[test]
fn snapshots_are_never_torn_under_many_threads() {
    let ctx = SharedContext::new();
    ctx.set_task("stress");
    let stop = AtomicBool::new(false);
    let observed = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let ctx = ctx.clone();
            s.spawn(move || {
                for i in 0..ITERS {
                    let (object, access) = PAIRS[(w + i) % PAIRS.len()];
                    // Alternate flat and nested scopes to exercise the
                    // save/restore stack as well as the fast path.
                    if i % 3 == 0 {
                        let (inner, inner_access) = PAIRS[(w + i + 1) % PAIRS.len()];
                        ctx.enter_object(object, access);
                        ctx.enter_object(inner, inner_access);
                        ctx.exit_object();
                        ctx.exit_object();
                    } else {
                        ctx.with_object(object, access, || {});
                    }
                }
            });
        }
        let stop = &stop;
        let observed = &observed;
        for _ in 0..READERS {
            let ctx = ctx.clone();
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let snap = ctx.snapshot();
                    assert_eq!(snap.task.as_ref().map(|t| t.as_str()), Some("stress"));
                    match (&snap.object, snap.access) {
                        (None, None) => {}
                        (Some(o), Some(a)) => {
                            assert!(
                                PAIRS.iter().any(|&(po, pa)| po == o.as_str() && pa == a),
                                "torn pair: ({}, {a:?})",
                                o.as_str()
                            );
                            observed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("half-populated snapshot: {other:?}"),
                    }
                }
            });
        }
        // Writers are the first WRITERS spawned handles; once the scope's
        // writer threads are done, release the readers. Joining happens
        // implicitly at scope end, so flag completion from a monitor thread.
        let ctx_done = ctx.clone();
        s.spawn(move || {
            // The monitor just waits for quiescence: after every writer
            // exits all its scopes the object must be None; poll until the
            // snapshot stays empty, then stop the readers.
            loop {
                std::thread::yield_now();
                if ctx_done.snapshot().object.is_none() {
                    // Writers may still be mid-loop; give them a moment and
                    // re-check a few times before declaring quiescence.
                    if (0..100).all(|_| {
                        std::thread::yield_now();
                        ctx_done.snapshot().object.is_none()
                    }) {
                        stop.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            }
        });
    });

    // After all scopes unwound, the context is back to just the task.
    let end = ctx.snapshot();
    assert_eq!(end.task.as_ref().map(|t| t.as_str()), Some("stress"));
    assert_eq!(end.object, None);
    assert_eq!(end.access, None);
}

#[test]
fn nested_scopes_restore_exactly_while_contended() {
    // One thread runs a deterministic nest; others churn their own clones
    // of a *different* context to verify instances do not interfere.
    let shared = SharedContext::new();
    let noise = SharedContext::new();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let noise = noise.clone();
            s.spawn(move || {
                for _ in 0..ITERS {
                    noise.with_object("/noise", AccessType::Metadata, || {});
                }
            });
        }
        let shared = &shared;
        s.spawn(move || {
            for _ in 0..ITERS {
                shared.enter_object("/a", AccessType::RawData);
                shared.enter_object("/b", AccessType::Metadata);
                let snap = shared.snapshot();
                assert_eq!(snap.object.as_ref().map(|o| o.as_str()), Some("/b"));
                shared.exit_object();
                let snap = shared.snapshot();
                assert_eq!(snap.object.as_ref().map(|o| o.as_str()), Some("/a"));
                assert_eq!(snap.access, Some(AccessType::RawData));
                shared.exit_object();
                assert_eq!(shared.snapshot().object, None);
            }
        });
    });
    assert_eq!(noise.snapshot().object, None);
}
