//! Corruption sweep over the `.dtb` section decoder, mirroring the `.drb`
//! bundle_prop tests in `dayu-workflow`: arbitrary bundles round-trip, every
//! truncation point fails with a structured offset-bearing error, and every
//! single-byte flip either fails the same way or decodes to *some* valid
//! bundle — never a panic, hang, or unbounded allocation.

use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::{Interval, Timestamp};
use dayu_trace::vfd::{AccessType, FileRecord, IoKind, VfdRecord};
use dayu_trace::vol::{ObjectDescription, ObjectKind, VolRecord};
use dayu_trace::{decode_section, TraceBundle};
use proptest::prelude::*;

fn arb_vfd() -> impl Strategy<Value = VfdRecord> {
    (
        "[a-z]{1,6}",
        "[a-z]{1,6}\\.h5",
        0u64..1 << 30,
        0u64..1 << 20,
        prop::bool::ANY,
        prop::bool::ANY,
        0u64..1 << 40,
    )
        .prop_map(|(task, file, offset, len, write, meta, t)| VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            kind: if write { IoKind::Write } else { IoKind::Read },
            offset,
            len,
            access: if meta {
                AccessType::Metadata
            } else {
                AccessType::RawData
            },
            object: ObjectKey::new("/d"),
            start: Timestamp(t),
            end: Timestamp(t + 10),
        })
}

fn arb_vol() -> impl Strategy<Value = VolRecord> {
    ("[a-z]{1,6}", "[a-z]{1,6}\\.h5", "/[a-z]{1,10}").prop_map(|(task, file, object)| VolRecord {
        task: TaskKey::new(task),
        file: FileKey::new(file),
        object: ObjectKey::new(object),
        kind: ObjectKind::Dataset,
        lifetimes: vec![Interval::new(Timestamp(1), Timestamp(2))],
        description: ObjectDescription::default(),
        accesses: vec![],
    })
}

fn arb_file() -> impl Strategy<Value = FileRecord> {
    ("[a-z]{1,6}", "[a-z]{1,6}\\.h5").prop_map(|(task, file)| FileRecord {
        task: TaskKey::new(task),
        file: FileKey::new(file),
        lifetimes: vec![Interval::new(Timestamp(0), Timestamp(9))],
        stats: Default::default(),
    })
}

fn arb_bundle() -> impl Strategy<Value = TraceBundle> {
    (
        prop::collection::vec("[a-z]{1,6}", 0..5),
        prop::collection::vec(arb_vfd(), 0..20),
        prop::collection::vec(arb_vol(), 0..10),
        prop::collection::vec(arb_file(), 0..6),
    )
        .prop_map(|(tasks, vfd, vol, files)| {
            let mut b = TraceBundle::new("prop-section");
            for t in tasks {
                b.push_task(TaskKey::new(t));
            }
            b.vfd = vfd;
            b.vol = vol;
            b.files = files;
            b
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The decoder is a fixpoint of the encoder.
    #[test]
    fn round_trip_fixpoint(b in arb_bundle()) {
        let bytes = b.to_binary_bytes();
        let back = decode_section(&bytes).unwrap();
        prop_assert_eq!(back, b);
    }

    /// Cutting the section at any interior point yields a structured
    /// error whose offset never exceeds the surviving byte count.
    #[test]
    fn every_cut_point_is_detected(b in arb_bundle(), cut_seed in 0usize..usize::MAX) {
        let bytes = b.to_binary_bytes();
        let cut = 1 + cut_seed % (bytes.len() - 1);
        match decode_section(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "prefix of {}/{} bytes decoded", cut, bytes.len()),
            Err(e) => prop_assert!(e.offset <= cut as u64),
        }
    }

    /// Flipping any single bit never panics: the decode returns an error
    /// (with an in-range offset) or some other valid bundle.
    #[test]
    fn every_bit_flip_is_err_or_valid(b in arb_bundle(), flip_seed in 0usize..usize::MAX, bit in 0u8..8) {
        let mut bytes = b.to_binary_bytes();
        let pos = flip_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Err(e) = decode_section(&bytes) {
            prop_assert!(e.offset <= bytes.len() as u64);
        }
    }

    /// Splitting per task and re-merging the encoded sections in any
    /// rotation reconstructs the original metadata and record counts.
    #[test]
    fn split_sections_remerge_in_any_rotation(b in arb_bundle(), rot in 0usize..8) {
        let sections = b.split_per_task();
        let n = sections.len();
        let mut bytes = Vec::new();
        for i in 0..n {
            bytes.extend(sections[(i + rot % n) % n].to_binary_bytes());
        }
        let back = decode_section(&bytes).unwrap();
        prop_assert_eq!(&back.meta, &b.meta);
        prop_assert_eq!(back.vol.len(), b.vol.len());
        prop_assert_eq!(back.vfd.len(), b.vfd.len());
        prop_assert_eq!(back.files.len(), b.files.len());
    }
}
