//! The decorated dataflow graph model shared by FTGs and SDGs.
//!
//! Nodes are tasks, files, datasets or file-address regions; edges carry
//! the access statistics the paper's interactive graphs expose in pop-ups
//! (Fig. 7): access count and volume, HDF5 data vs metadata splits, the
//! operation direction, and bandwidth. Node positions encode time — the
//! Workflow Analyzer arranges nodes "vertically by event start time and
//! horizontally by event end time" (Fig. 3).

use dayu_trace::time::Timestamp;
use dayu_trace::Symbol;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a node represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A workflow task.
    Task,
    /// A file.
    File,
    /// A data object (dataset) within a file.
    Dataset,
    /// A file-address region (page range) within a file.
    AddrRegion,
}

/// Graph node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Node index within the graph.
    pub id: usize,
    /// Node kind.
    pub kind: NodeKind,
    /// Display label (task name, file name, dataset path, address range).
    pub label: String,
    /// Earliest event involving this node.
    pub start: Timestamp,
    /// Latest event involving this node.
    pub end: Timestamp,
    /// Data volume associated with the node (bytes) — drives node width in
    /// the visualization.
    pub volume: u64,
}

/// Direction/summary of an edge's accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Only reads flowed along this edge.
    ReadOnly,
    /// Only writes.
    WriteOnly,
    /// Both.
    ReadWrite,
    /// Structural edge (e.g. dataset→file containment).
    Structural,
}

/// Per-edge access statistics — the pop-up fields of the paper's Fig. 7.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Total bytes moved.
    pub access_volume: u64,
    /// Total access count.
    pub access_count: u64,
    /// Low-level raw-data access count.
    pub data_access_count: u64,
    /// Low-level raw-data bytes.
    pub data_access_volume: u64,
    /// Low-level metadata access count.
    pub metadata_access_count: u64,
    /// Low-level metadata bytes.
    pub metadata_access_volume: u64,
    /// Nanoseconds spent in the edge's operations (for bandwidth).
    pub busy_ns: u64,
    /// First access time.
    pub first: Timestamp,
    /// Last access time.
    pub last: Timestamp,
}

impl EdgeStats {
    /// Mean bytes per access.
    pub fn average_access_size(&self) -> f64 {
        if self.access_count == 0 {
            0.0
        } else {
            self.access_volume as f64 / self.access_count as f64
        }
    }

    /// Mean bytes per raw-data access.
    pub fn average_data_access_size(&self) -> f64 {
        if self.data_access_count == 0 {
            0.0
        } else {
            self.data_access_volume as f64 / self.data_access_count as f64
        }
    }

    /// Mean bytes per metadata access.
    pub fn average_metadata_access_size(&self) -> f64 {
        if self.metadata_access_count == 0 {
            0.0
        } else {
            self.metadata_access_volume as f64 / self.metadata_access_count as f64
        }
    }

    /// Achieved bandwidth in bytes/second (`None` when timing is absent).
    pub fn bandwidth(&self) -> Option<f64> {
        if self.busy_ns == 0 || self.access_volume == 0 {
            None
        } else {
            Some(self.access_volume as f64 / (self.busy_ns as f64 / 1e9))
        }
    }

    /// Folds another stats block into this one.
    pub fn merge(&mut self, other: &EdgeStats) {
        if self.access_count == 0 {
            self.first = other.first;
        } else if other.access_count > 0 {
            self.first = self.first.min(other.first);
        }
        self.last = self.last.max(other.last);
        self.access_volume += other.access_volume;
        self.access_count += other.access_count;
        self.data_access_count += other.data_access_count;
        self.data_access_volume += other.data_access_volume;
        self.metadata_access_count += other.metadata_access_count;
        self.metadata_access_volume += other.metadata_access_volume;
        self.busy_ns += other.busy_ns;
    }
}

/// Graph edge.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Source node id.
    pub from: usize,
    /// Destination node id.
    pub to: usize,
    /// Direction summary.
    pub op: Operation,
    /// Access statistics.
    pub stats: EdgeStats,
}

/// FTG vs SDG marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphKind {
    /// File-Task Graph.
    Ftg,
    /// Semantic Dataflow Graph.
    Sdg,
}

/// A decorated dataflow graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    /// FTG or SDG.
    pub kind: GraphKind,
    /// Workflow the graph describes.
    pub workflow: String,
    /// Nodes, indexed by id.
    pub nodes: Vec<Node>,
    /// Edges.
    pub edges: Vec<Edge>,
    /// Node lookup keyed by `(kind, interned label)`: lookups hash a
    /// `(u8, u32)` pair instead of cloning the label string.
    #[serde(skip)]
    index: HashMap<(NodeKind, Symbol), usize>,
    /// Edge lookup keyed by `(from, to, op)`, replacing the linear scan
    /// [`Graph::edge`] used to do per insertion.
    #[serde(skip)]
    edge_index: HashMap<(usize, usize, Operation), usize>,
}

impl Graph {
    /// An empty graph.
    pub fn new(kind: GraphKind, workflow: impl Into<String>) -> Self {
        Self {
            kind,
            workflow: workflow.into(),
            nodes: Vec::new(),
            edges: Vec::new(),
            index: HashMap::new(),
            edge_index: HashMap::new(),
        }
    }

    /// Gets or creates the node of `kind` labelled `label`.
    pub fn node(&mut self, kind: NodeKind, label: &str) -> usize {
        self.node_sym(kind, Symbol::intern(label))
    }

    /// [`Graph::node`] for an already-interned label — the allocation-free
    /// hot path the graph builders use (trace keys carry their symbol).
    pub fn node_sym(&mut self, kind: NodeKind, label: Symbol) -> usize {
        if let Some(&id) = self.index.get(&(kind, label)) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            kind,
            label: label.as_str().to_owned(),
            start: Timestamp(u64::MAX),
            end: Timestamp::ZERO,
            volume: 0,
        });
        self.index.insert((kind, label), id);
        id
    }

    /// Looks up an existing node without allocating: a label that was never
    /// interned anywhere in the process cannot name a node.
    pub fn find(&self, kind: NodeKind, label: &str) -> Option<&Node> {
        let sym = Symbol::lookup(label)?;
        self.index.get(&(kind, sym)).map(|&id| &self.nodes[id])
    }

    /// Expands a node's time span to include `[start, end]` and adds volume.
    pub fn touch_node(&mut self, id: usize, start: Timestamp, end: Timestamp, volume: u64) {
        let n = &mut self.nodes[id];
        n.start = n.start.min(start);
        n.end = n.end.max(end);
        n.volume += volume;
    }

    /// Adds (or merges into) the edge `from → to` with the given direction.
    pub fn edge(&mut self, from: usize, to: usize, op: Operation, stats: EdgeStats) {
        if let Some(&i) = self.edge_index.get(&(from, to, op)) {
            self.edges[i].stats.merge(&stats);
            return;
        }
        self.edge_index.insert((from, to, op), self.edges.len());
        self.edges.push(Edge {
            from,
            to,
            op,
            stats,
        });
    }

    /// All edges out of `id`.
    pub fn out_edges(&self, id: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.from == id)
    }

    /// All edges into `id`.
    pub fn in_edges(&self, id: usize) -> impl Iterator<Item = &Edge> {
        self.edges.iter().filter(move |e| e.to == id)
    }

    /// Nodes of a kind.
    pub fn nodes_of(&self, kind: NodeKind) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(move |n| n.kind == kind)
    }

    /// Rebuilds the node and edge indexes (needed after deserialization).
    /// Labels are interned, not cloned.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .nodes
            .iter()
            .map(|n| ((n.kind, Symbol::intern(&n.label)), n.id))
            .collect();
        self.edge_index = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.from, e.to, e.op), i))
            .collect();
    }

    /// Fixes up nodes that never got touched (start still at the sentinel).
    pub fn normalize_times(&mut self) {
        for n in &mut self.nodes {
            if n.start > n.end {
                n.start = n.end;
            }
        }
    }

    /// Node ids in a stable topological order: Kahn's algorithm with a
    /// min-id frontier, so equal-rank nodes always come out in id order and
    /// two structurally identical graphs yield the same sequence. Every node
    /// appears exactly once; if the graph has a cycle (recorded SDGs can —
    /// a task that reads a dataset back after writing it produces edges in
    /// both directions), the smallest-id node still waiting is released,
    /// which breaks the cycle deterministically instead of dropping nodes.
    pub fn topo_order(&self) -> Vec<usize> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut out = vec![Vec::new(); n];
        for e in &self.edges {
            if e.from == e.to {
                continue; // self-loops never gate release
            }
            indegree[e.to] += 1;
            out[e.from].push(e.to);
        }
        let mut ready: BinaryHeap<Reverse<usize>> = (0..n)
            .filter(|&id| indegree[id] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut done = vec![false; n];
        while order.len() < n {
            let id = match ready.pop() {
                Some(Reverse(id)) if !done[id] => id,
                Some(_) => continue,
                // Cycle: release the smallest-id node not yet emitted.
                None => (0..n).find(|&id| !done[id]).expect("node remains"),
            };
            done[id] = true;
            order.push(id);
            for &to in &out[id] {
                if !done[to] {
                    indegree[to] = indegree[to].saturating_sub(1);
                    if indegree[to] == 0 {
                        ready.push(Reverse(to));
                    }
                }
            }
        }
        order
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.workflow == other.workflow
            && self.nodes == other.nodes
            && self.edges == other.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_dedup_by_kind_and_label() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let a = g.node(NodeKind::Task, "t1");
        let b = g.node(NodeKind::Task, "t1");
        let c = g.node(NodeKind::File, "t1");
        assert_eq!(a, b);
        assert_ne!(a, c, "same label, different kind");
        assert_eq!(g.nodes.len(), 2);
        assert!(g.find(NodeKind::Task, "t1").is_some());
        assert!(g.find(NodeKind::Dataset, "t1").is_none());
    }

    #[test]
    fn edges_merge_same_direction() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let t = g.node(NodeKind::Task, "t");
        let f = g.node(NodeKind::File, "f");
        g.edge(
            t,
            f,
            Operation::WriteOnly,
            EdgeStats {
                access_volume: 100,
                access_count: 1,
                first: Timestamp(5),
                last: Timestamp(5),
                ..Default::default()
            },
        );
        g.edge(
            t,
            f,
            Operation::WriteOnly,
            EdgeStats {
                access_volume: 50,
                access_count: 2,
                first: Timestamp(1),
                last: Timestamp(9),
                ..Default::default()
            },
        );
        // Opposite direction is a separate edge.
        g.edge(f, t, Operation::ReadOnly, EdgeStats::default());
        assert_eq!(g.edges.len(), 2);
        let e = &g.edges[0];
        assert_eq!(e.stats.access_volume, 150);
        assert_eq!(e.stats.access_count, 3);
        assert_eq!(e.stats.first, Timestamp(1));
        assert_eq!(e.stats.last, Timestamp(9));
    }

    #[test]
    fn stats_averages_and_bandwidth() {
        let s = EdgeStats {
            access_volume: 1000,
            access_count: 4,
            data_access_count: 2,
            data_access_volume: 900,
            metadata_access_count: 2,
            metadata_access_volume: 100,
            busy_ns: 1_000_000_000,
            ..Default::default()
        };
        assert_eq!(s.average_access_size(), 250.0);
        assert_eq!(s.average_data_access_size(), 450.0);
        assert_eq!(s.average_metadata_access_size(), 50.0);
        assert_eq!(s.bandwidth(), Some(1000.0));
        assert_eq!(EdgeStats::default().bandwidth(), None);
        assert_eq!(EdgeStats::default().average_access_size(), 0.0);
    }

    #[test]
    fn touch_node_expands_span() {
        let mut g = Graph::new(GraphKind::Sdg, "wf");
        let n = g.node(NodeKind::Dataset, "/d");
        g.touch_node(n, Timestamp(10), Timestamp(20), 64);
        g.touch_node(n, Timestamp(5), Timestamp(15), 36);
        let node = &g.nodes[n];
        assert_eq!(node.start, Timestamp(5));
        assert_eq!(node.end, Timestamp(20));
        assert_eq!(node.volume, 100);
    }

    #[test]
    fn normalize_untouched_nodes() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        g.node(NodeKind::Task, "never_touched");
        g.normalize_times();
        assert_eq!(g.nodes[0].start, Timestamp::ZERO);
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let t = g.node(NodeKind::Task, "t");
        let f = g.node(NodeKind::File, "f");
        g.edge(t, f, Operation::WriteOnly, EdgeStats::default());
        let json = serde_json::to_string(&g).unwrap();
        let mut back: Graph = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back, g);
        assert_eq!(
            back.node(NodeKind::Task, "t"),
            t,
            "index works after rebuild"
        );
    }

    #[test]
    fn node_sym_and_node_agree() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let a = g.node(NodeKind::Task, "sym-agree");
        let b = g.node_sym(NodeKind::Task, Symbol::intern("sym-agree"));
        assert_eq!(a, b);
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn find_never_interned_label_is_none() {
        let g = Graph::new(GraphKind::Ftg, "wf");
        assert!(g
            .find(NodeKind::Task, "graph-label-never-interned-zz")
            .is_none());
        assert_eq!(
            Symbol::lookup("graph-label-never-interned-zz"),
            None,
            "find must not intern probe labels"
        );
    }

    #[test]
    fn edges_merge_after_index_rebuild() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let t = g.node(NodeKind::Task, "t");
        let f = g.node(NodeKind::File, "f");
        g.edge(
            t,
            f,
            Operation::WriteOnly,
            EdgeStats {
                access_count: 1,
                ..Default::default()
            },
        );
        let json = serde_json::to_string(&g).unwrap();
        let mut back: Graph = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        back.edge(
            t,
            f,
            Operation::WriteOnly,
            EdgeStats {
                access_count: 2,
                ..Default::default()
            },
        );
        assert_eq!(back.edges.len(), 1, "edge index survives rebuild");
        assert_eq!(back.edges[0].stats.access_count, 3);
    }

    #[test]
    fn topo_order_is_stable_and_complete() {
        let mut g = Graph::new(GraphKind::Sdg, "wf");
        let a = g.node(NodeKind::Task, "a");
        let d = g.node(NodeKind::Dataset, "f:/d");
        let b = g.node(NodeKind::Task, "b");
        let c = g.node(NodeKind::Task, "c");
        g.edge(a, d, Operation::WriteOnly, EdgeStats::default());
        g.edge(d, b, Operation::ReadOnly, EdgeStats::default());
        g.edge(d, c, Operation::ReadOnly, EdgeStats::default());
        let order = g.topo_order();
        assert_eq!(order.len(), g.nodes.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &id) in order.iter().enumerate() {
                p[id] = i;
            }
            p
        };
        assert!(pos[a] < pos[d] && pos[d] < pos[b] && pos[d] < pos[c]);
        // b and c are peers: the min-id tie-break puts b first.
        assert!(pos[b] < pos[c]);
        assert_eq!(order, g.topo_order(), "deterministic across calls");
    }

    #[test]
    fn topo_order_survives_cycles() {
        let mut g = Graph::new(GraphKind::Sdg, "wf");
        let t = g.node(NodeKind::Task, "t");
        let d = g.node(NodeKind::Dataset, "f:/d");
        // Write-then-read-back: edges both ways form a 2-cycle.
        g.edge(t, d, Operation::WriteOnly, EdgeStats::default());
        g.edge(d, t, Operation::ReadOnly, EdgeStats::default());
        g.edge(t, t, Operation::ReadWrite, EdgeStats::default());
        let order = g.topo_order();
        assert_eq!(order.len(), 2, "every node emitted exactly once");
        assert_eq!(order, vec![t, d], "min-id node breaks the cycle");
    }

    #[test]
    fn edge_iteration() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let a = g.node(NodeKind::Task, "a");
        let f = g.node(NodeKind::File, "f");
        let b = g.node(NodeKind::Task, "b");
        g.edge(a, f, Operation::WriteOnly, EdgeStats::default());
        g.edge(f, b, Operation::ReadOnly, EdgeStats::default());
        assert_eq!(g.out_edges(f).count(), 1);
        assert_eq!(g.in_edges(f).count(), 1);
        assert_eq!(g.nodes_of(NodeKind::Task).count(), 2);
    }
}
