//! Graph exporters: DOT, JSON, and self-contained interactive HTML.
//!
//! The HTML exporter renders the time-ordered layout of the paper's
//! Fig. 3: nodes positioned horizontally by event end time and vertically
//! by event start time, colored by kind (tasks red, files blue, datasets
//! yellow, address regions light blue), with edge width encoding data
//! volume and edge darkness encoding bandwidth. Hovering a node or edge
//! reveals the detailed access statistics pop-up of Fig. 7.

use crate::graph::{Graph, NodeKind, Operation};
use std::fmt::Write as _;

fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

fn human_bandwidth(bps: f64) -> String {
    const UNITS: [&str; 4] = ["B/s", "KB/s", "MB/s", "GB/s"];
    let mut v = bps;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

fn node_color(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Task => "#c0392b",
        NodeKind::File => "#1a5276",
        NodeKind::Dataset => "#d4ac0d",
        NodeKind::AddrRegion => "#7fb3d5",
    }
}

fn dot_escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

/// The Fig.-7-style statistics pop-up for an edge.
pub fn edge_popup(g: &Graph, edge_idx: usize) -> String {
    let e = &g.edges[edge_idx];
    let s = &e.stats;
    let op = match e.op {
        Operation::ReadOnly => "read_only",
        Operation::WriteOnly => "write_only",
        Operation::ReadWrite => "read_write",
        Operation::Structural => "structural",
    };
    let mut out = String::new();
    let _ = writeln!(out, "source: {}", g.nodes[e.from].label);
    let _ = writeln!(out, "target: {}", g.nodes[e.to].label);
    let _ = writeln!(out, "Access Volume : {}", human_bytes(s.access_volume));
    let _ = writeln!(out, "Access Count : {}", s.access_count);
    let _ = writeln!(
        out,
        "Average Access Size : {}",
        human_bytes(s.average_access_size() as u64)
    );
    let _ = writeln!(out, "HDF5 Data Access Count : {}", s.data_access_count);
    let _ = writeln!(
        out,
        "Average HDF5 Data Access Size : {}",
        human_bytes(s.average_data_access_size() as u64)
    );
    let _ = writeln!(
        out,
        "HDF5 Metadata Access Count : {}",
        s.metadata_access_count
    );
    let _ = writeln!(
        out,
        "Average HDF5 Metadata Access Size : {}",
        human_bytes(s.average_metadata_access_size() as u64)
    );
    let _ = writeln!(out, "Operation : {op}");
    let _ = writeln!(
        out,
        "Bandwidth : {}",
        s.bandwidth()
            .map(human_bandwidth)
            .unwrap_or_else(|| "n/a".into())
    );
    out
}

/// Exports the graph in Graphviz DOT format.
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dot_escape(&g.workflow));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [style=filled, fontcolor=white];");
    for n in &g.nodes {
        let shape = match n.kind {
            NodeKind::Task => "box",
            NodeKind::File => "folder",
            NodeKind::Dataset => "ellipse",
            NodeKind::AddrRegion => "note",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={}, fillcolor=\"{}\"];",
            n.id,
            dot_escape(&n.label),
            shape,
            node_color(n.kind)
        );
    }
    for (i, e) in g.edges.iter().enumerate() {
        let penwidth = 1.0 + (e.stats.access_volume as f64 + 1.0).log10().max(0.0) / 2.0;
        let style = if e.op == Operation::Structural {
            ", style=dashed"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [penwidth={:.2}, tooltip=\"{}\"{}];",
            e.from,
            e.to,
            penwidth,
            dot_escape(&edge_popup(g, i).replace('\n', "&#10;")),
            style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Exports the graph as pretty JSON.
pub fn to_json(g: &Graph) -> String {
    serde_json::to_string_pretty(g).expect("graph serialization is infallible")
}

/// Exports the graph as a self-contained HTML page with the time-ordered
/// SVG layout and hover pop-ups.
pub fn to_html(g: &Graph) -> String {
    const W: f64 = 1400.0;
    const H: f64 = 900.0;
    const MARGIN: f64 = 60.0;

    let t_min = g.nodes.iter().map(|n| n.start.nanos()).min().unwrap_or(0) as f64;
    let t_max = g
        .nodes
        .iter()
        .map(|n| n.end.nanos())
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let span = (t_max - t_min).max(1.0);
    // Horizontal: end time. Vertical: start time. Jitter overlapping nodes
    // by id so simultaneous events stay distinguishable.
    let pos = |id: usize| -> (f64, f64) {
        let n = &g.nodes[id];
        let x = MARGIN + (n.end.nanos() as f64 - t_min) / span * (W - 2.0 * MARGIN);
        let y = MARGIN + (n.start.nanos() as f64 - t_min) / span * (H - 2.0 * MARGIN);
        let jitter = (id as f64 * 37.0) % 90.0 - 45.0;
        (x + jitter * 0.4, y + jitter)
    };

    let max_vol = g
        .edges
        .iter()
        .map(|e| e.stats.access_volume)
        .max()
        .unwrap_or(1)
        .max(1) as f64;
    let max_bw = g
        .edges
        .iter()
        .filter_map(|e| e.stats.bandwidth())
        .fold(1.0_f64, f64::max);

    let mut svg = String::new();
    for (i, e) in g.edges.iter().enumerate() {
        let (x1, y1) = pos(e.from);
        let (x2, y2) = pos(e.to);
        let width = 1.0 + 5.0 * (e.stats.access_volume as f64 / max_vol).sqrt();
        // Darker = higher bandwidth.
        let shade = e
            .stats
            .bandwidth()
            .map(|b| 0.25 + 0.75 * (b / max_bw).sqrt())
            .unwrap_or(0.25);
        let grey = (180.0 * (1.0 - shade)) as u8;
        let dash = if e.op == Operation::Structural {
            " stroke-dasharray=\"4 3\""
        } else {
            ""
        };
        let _ = writeln!(
            svg,
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"rgb({grey},{grey},{grey})\" stroke-width=\"{width:.2}\"{dash}>\
             <title>{}</title></line>",
            html_escape(&edge_popup(g, i))
        );
    }
    for n in &g.nodes {
        let (x, y) = pos(n.id);
        let r = 6.0 + 6.0 * ((n.volume as f64 + 1.0).log10() / 10.0).min(1.0);
        let _ = writeln!(
            svg,
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{r:.1}\" fill=\"{}\">\
             <title>{} ({:?})&#10;start: {} ns&#10;end: {} ns&#10;volume: {}</title></circle>",
            node_color(n.kind),
            html_escape(&n.label),
            n.kind,
            n.start.nanos(),
            n.end.nanos(),
            human_bytes(n.volume)
        );
        let _ = writeln!(
            svg,
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#333\">{}</text>",
            x + r + 2.0,
            y + 3.0,
            html_escape(&n.label)
        );
    }

    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>DaYu {:?} — {}</title></head>\n\
         <body style=\"font-family:sans-serif\">\n\
         <h2>DaYu {:?}: {}</h2>\n\
         <p>{} nodes, {} edges. Layout: x = event end time, y = event start \
         time. Hover nodes/edges for access statistics.</p>\n\
         <svg width=\"{W}\" height=\"{H}\" viewBox=\"0 0 {W} {H}\" \
         style=\"border:1px solid #ccc\">\n{svg}</svg>\n\
         <script type=\"application/json\" id=\"dayu-graph\">{}</script>\n\
         </body></html>\n",
        g.kind,
        html_escape(&g.workflow),
        g.kind,
        html_escape(&g.workflow),
        g.nodes.len(),
        g.edges.len(),
        to_json(g).replace("</", "<\\/")
    )
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeStats, GraphKind};
    use dayu_trace::time::Timestamp;

    fn sample() -> Graph {
        let mut g = Graph::new(GraphKind::Sdg, "demo");
        let t = g.node(NodeKind::Task, "task");
        let d = g.node(NodeKind::Dataset, "f.h5:/dset");
        let f = g.node(NodeKind::File, "f.h5");
        g.touch_node(t, Timestamp(0), Timestamp(100), 512);
        g.touch_node(d, Timestamp(10), Timestamp(90), 512);
        g.touch_node(f, Timestamp(10), Timestamp(100), 512);
        g.edge(
            t,
            d,
            Operation::WriteOnly,
            EdgeStats {
                access_volume: 512,
                access_count: 1,
                data_access_count: 1,
                data_access_volume: 512,
                busy_ns: 1000,
                first: Timestamp(10),
                last: Timestamp(11),
                ..Default::default()
            },
        );
        g.edge(d, f, Operation::Structural, EdgeStats::default());
        g
    }

    #[test]
    fn popup_contains_fig7_fields() {
        let g = sample();
        let p = edge_popup(&g, 0);
        for field in [
            "source: task",
            "target: f.h5:/dset",
            "Access Volume : 512 B",
            "Access Count : 1",
            "HDF5 Data Access Count : 1",
            "HDF5 Metadata Access Count : 0",
            "Operation : write_only",
            "Bandwidth :",
        ] {
            assert!(p.contains(field), "missing {field:?} in:\n{p}");
        }
    }

    #[test]
    fn dot_has_nodes_edges_and_styles() {
        let g = sample();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 [label=\"task\""));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"), "structural edges dashed");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn json_round_trips() {
        let g = sample();
        let json = to_json(&g);
        let mut back: Graph = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back, g);
    }

    #[test]
    fn html_is_self_contained() {
        let g = sample();
        let html = to_html(&g);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<circle"));
        assert!(html.contains("<line"));
        assert!(html.contains("Access Volume"), "popups embedded");
        assert!(html.contains("dayu-graph"), "JSON payload embedded");
        assert!(html.contains("f.h5:/dset"));
    }

    #[test]
    fn html_escapes_labels() {
        let mut g = Graph::new(GraphKind::Ftg, "a<b>&c");
        g.node(NodeKind::Task, "t<&>");
        let html = to_html(&g);
        assert!(html.contains("a&lt;b&gt;&amp;c"));
        // SVG text/titles are escaped (the raw label legitimately appears
        // inside the embedded JSON payload).
        assert!(html.contains("t&lt;&amp;&gt;"));
    }

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 << 20), "3.00 MB");
        assert_eq!(human_bandwidth(61460.0), "60.02 KB/s");
    }

    #[test]
    fn empty_graph_exports() {
        let g = Graph::new(GraphKind::Ftg, "empty");
        assert!(to_dot(&g).contains("digraph"));
        assert!(to_html(&g).contains("<svg"));
        assert!(to_json(&g).contains("\"nodes\": []"));
    }
}
