//! Incremental FTG/SDG construction from independently-arriving sections.
//!
//! The batch builders ([`crate::build`]) assume a complete bundle. A
//! long-running ingest service sees the opposite: trace sections trickle in
//! per task flush, out of order, sometimes duplicated by a retrying client.
//! [`PartialGraph`] absorbs sections one at a time, retains records grouped
//! by task, and snapshots a full graph on demand by rebuilding only the
//! per-task partials whose inputs changed — reusing the *same*
//! partition/partial/merge machinery as the batch path, so a snapshot is
//! not merely equivalent to `build_ftg`/`build_sdg` over the union of the
//! absorbed sections: it is the identical graph, node ids and all.
//!
//! Two bundle-wide properties gate what a per-task partial looks like and
//! therefore version the caches:
//!
//! * whether the bundle has any VFD records at all (`vfd_empty` selects the
//!   FileRecord/VOL fallbacks), and
//! * in region mode, each file's observed extent (region geometry).
//!
//! Absorbing a section that flips either invalidates every cached partial;
//! absorbing one that only appends records to task *t* invalidates only
//! *t*'s. Sections are deduplicated by content digest
//! ([`PartialGraph::absorb_unique`]) so a client retrying over a flaky
//! connection cannot double-count records.
//!
//! ## Equivalence contract
//!
//! A snapshot equals the one-shot batch build of the merged bundle whenever
//! every record-bearing task appears in the merged `task_order` (true for
//! per-task section flushes carrying full meta, the shape
//! [`TraceBundle::split_per_task`](dayu_trace::TraceBundle::split_per_task)
//! produces). Stragglers — tasks that appear only in records — are ordered
//! by first arrival, which matches the batch build exactly when sections
//! arrive in recorded order and is a deterministic (but arrival-dependent)
//! order otherwise.

use crate::build::{self, Partition, SdgOptions, PARALLEL_RECORD_THRESHOLD};
use crate::graph::{Graph, GraphKind, NodeKind};
use dayu_trace::sha256::Digest;
use dayu_trace::store::{TraceBundle, TraceMeta};
use dayu_trace::vfd::{FileRecord, VfdRecord};
use dayu_trace::vol::VolRecord;
use dayu_trace::{Symbol, TaskKey};
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};

/// Records retained for one task, in arrival (= within-task record) order.
#[derive(Default)]
struct TaskState {
    vfd: Vec<VfdRecord>,
    vol: Vec<VolRecord>,
    files: Vec<FileRecord>,
    /// Bumped on every append; cached partials remember the value they
    /// were built from.
    rev: u64,
}

impl TaskState {
    fn records(&self) -> usize {
        self.vfd.len() + self.vol.len() + self.files.len()
    }
}

/// A cached per-task partial graph and the input versions it reflects.
struct CacheEntry {
    task_rev: u64,
    geometry_rev: u64,
    graph: Graph,
}

/// Mergeable, incrementally-buildable graph state for one workflow.
#[derive(Default)]
pub struct PartialGraph {
    meta: TraceMeta,
    saw_meta: bool,
    tasks: HashMap<TaskKey, TaskState>,
    /// Record-bearing tasks in first-arrival order (straggler ordering).
    arrival: Vec<TaskKey>,
    vfd_total: usize,
    record_total: usize,
    /// Observed per-file extents (region geometry for SDG region mode).
    file_extent: HashMap<Symbol, u64>,
    /// Bumped when `vfd_empty` flips or any file extent grows.
    geometry_rev: u64,
    /// Digests of sections already absorbed via [`Self::absorb_unique`].
    digests: HashSet<Digest>,
    ftg_cache: HashMap<TaskKey, CacheEntry>,
    /// SDG cache plus the options fingerprint it was built under; a
    /// snapshot with different options drops the whole cache.
    sdg_cache: HashMap<TaskKey, CacheEntry>,
    sdg_opts: Option<(bool, u64)>,
}

impl PartialGraph {
    /// An empty partial graph; the first absorbed section names the
    /// workflow.
    pub fn new() -> Self {
        Self::default()
    }

    /// Workflow name from the first absorbed section (empty before any).
    pub fn workflow(&self) -> &str {
        &self.meta.workflow
    }

    /// Total data records retained.
    pub fn records(&self) -> usize {
        self.record_total
    }

    /// Approximate heap footprint of the retained records, for budget
    /// enforcement. Counts struct sizes plus the variable-length tails
    /// (intervals, accesses, selection vectors); interned names are
    /// process-global and not attributed.
    pub fn retained_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for s in self.tasks.values() {
            bytes += s.vfd.len() * std::mem::size_of::<VfdRecord>();
            bytes += s.files.len() * std::mem::size_of::<FileRecord>();
            bytes += s.vol.len() * std::mem::size_of::<VolRecord>();
            for r in &s.files {
                bytes += r.lifetimes.len() * 16;
            }
            for r in &s.vol {
                bytes += r.lifetimes.len() * 16;
                bytes += r.description.shape.len() * 8;
                bytes += r.description.chunk_shape.len() * 8;
                for a in &r.accesses {
                    bytes += std::mem::size_of_val(a);
                    bytes += (a.sel_offset.len() + a.sel_count.len()) * 8;
                }
            }
        }
        bytes
    }

    /// Absorbs one decoded section, merging its meta with the same rules
    /// as concatenated-trace reads (first workflow/page size win, task
    /// orders extend, degraded/recovered sets union, stages and origin
    /// first-non-empty win) and appending its records per task.
    pub fn absorb(&mut self, section: &TraceBundle) {
        self.absorb_meta(&section.meta);
        for r in &section.vfd {
            if r.kind.moves_data() {
                let e = self.file_extent.entry(r.file.symbol()).or_default();
                let end = r.offset.saturating_add(r.len);
                if end > *e {
                    *e = end;
                    self.geometry_rev += 1;
                }
            }
            if self.vfd_total == 0 {
                // vfd_empty flips: every fallback-derived partial is stale.
                self.geometry_rev += 1;
            }
            self.vfd_total += 1;
            self.record_total += 1;
            self.task_state(r.task.clone()).vfd.push(r.clone());
        }
        for r in &section.vol {
            self.record_total += 1;
            self.task_state(r.task.clone()).vol.push(r.clone());
        }
        for r in &section.files {
            self.record_total += 1;
            self.task_state(r.task.clone()).files.push(r.clone());
        }
    }

    /// Absorbs the section unless an identical one (by content digest) was
    /// absorbed before; returns whether it was new. The digest is the
    /// wire-level SHA-256 of the encoded section, computed by the caller
    /// (the ingest service checks it against the frame header anyway).
    pub fn absorb_unique(&mut self, digest: Digest, section: &TraceBundle) -> bool {
        if !self.digests.insert(digest) {
            return false;
        }
        self.absorb(section);
        true
    }

    /// Merges another partial graph into this one, exactly as if `other`'s
    /// sections had been absorbed here in their original arrival order.
    pub fn merge(&mut self, other: PartialGraph) {
        self.absorb_meta(&other.meta);
        for task in other.arrival {
            let state = &other.tasks[&task];
            for r in &state.vfd {
                if r.kind.moves_data() {
                    let e = self.file_extent.entry(r.file.symbol()).or_default();
                    let end = r.offset.saturating_add(r.len);
                    if end > *e {
                        *e = end;
                        self.geometry_rev += 1;
                    }
                }
                if self.vfd_total == 0 {
                    self.geometry_rev += 1;
                }
                self.vfd_total += 1;
            }
            self.record_total += state.records();
            let into = self.task_state(task);
            into.vfd.extend(state.vfd.iter().cloned());
            into.vol.extend(state.vol.iter().cloned());
            into.files.extend(state.files.iter().cloned());
        }
        self.digests.extend(other.digests);
    }

    /// Reconstructs the merged bundle: full meta, records grouped by task
    /// in snapshot order. This is the bundle a snapshot is equivalent to
    /// batch-building.
    pub fn to_bundle(&self) -> TraceBundle {
        let mut b = TraceBundle {
            meta: self.meta.clone(),
            ..Default::default()
        };
        for task in self.ordering() {
            if let Some(s) = self.tasks.get(&task) {
                b.vfd.extend(s.vfd.iter().cloned());
                b.vol.extend(s.vol.iter().cloned());
                b.files.extend(s.files.iter().cloned());
            }
        }
        b
    }

    /// Snapshots the File-Task Graph over everything absorbed so far,
    /// rebuilding only the per-task partials invalidated since the last
    /// snapshot.
    pub fn snapshot_ftg(&mut self) -> Graph {
        let vfd_empty = self.vfd_total == 0;
        let ordering = self.ordering();
        let geometry_rev = self.geometry_rev;
        refresh_cache(
            &mut self.ftg_cache,
            &self.tasks,
            &ordering,
            geometry_rev,
            |part| build::ftg_partial(part, vfd_empty),
        );
        let mut g = Graph::new(GraphKind::Ftg, self.meta.workflow.clone());
        assemble(&mut g, &ordering, &self.ftg_cache);
        g
    }

    /// Snapshots the Semantic Dataflow Graph. Changing `opts` between
    /// snapshots is allowed and rebuilds everything once.
    pub fn snapshot_sdg(&mut self, opts: &SdgOptions) -> Graph {
        let fingerprint = (opts.include_regions, opts.region_count);
        if self.sdg_opts != Some(fingerprint) {
            self.sdg_cache.clear();
            self.sdg_opts = Some(fingerprint);
        }
        let vfd_empty = self.vfd_total == 0;
        let page = self.meta.page_size.max(1);
        let ordering = self.ordering();
        let geometry_rev = self.geometry_rev;
        let file_extent = &self.file_extent;
        refresh_cache(
            &mut self.sdg_cache,
            &self.tasks,
            &ordering,
            geometry_rev,
            |part| build::sdg_partial(part, opts, file_extent, page, vfd_empty),
        );
        let mut g = Graph::new(GraphKind::Sdg, self.meta.workflow.clone());
        assemble(&mut g, &ordering, &self.sdg_cache);
        g
    }

    /// Snapshot task ordering: execution order first, record-bearing
    /// stragglers after in first-arrival order — the incremental analogue
    /// of [`TraceBundle::all_tasks`].
    fn ordering(&self) -> Vec<TaskKey> {
        let mut tasks = self.meta.task_order.clone();
        let mut seen: HashSet<TaskKey> = tasks.iter().cloned().collect();
        for t in &self.arrival {
            if seen.insert(t.clone()) {
                tasks.push(t.clone());
            }
        }
        tasks
    }

    fn task_state(&mut self, task: TaskKey) -> &mut TaskState {
        if !self.tasks.contains_key(&task) {
            self.arrival.push(task.clone());
            self.tasks.insert(task.clone(), TaskState::default());
        }
        let state = self
            .tasks
            .get_mut(&task)
            .expect("inserted on miss just above");
        state.rev += 1;
        state
    }

    fn absorb_meta(&mut self, m: &TraceMeta) {
        if self.saw_meta {
            for t in &m.task_order {
                if !self.meta.task_order.contains(t) {
                    self.meta.task_order.push(t.clone());
                }
            }
            if self.meta.stages.is_empty() {
                self.meta.stages = m.stages.clone();
            }
            if self.meta.origin.is_none() {
                self.meta.origin = m.origin.clone();
            }
        } else {
            self.meta = TraceMeta {
                degraded_tasks: Vec::new(),
                recovered_tasks: Vec::new(),
                ..m.clone()
            };
            self.saw_meta = true;
        }
        // Re-mark sorted+deduped, as every trace read path does.
        for t in &m.degraded_tasks {
            if let Err(at) = self.meta.degraded_tasks.binary_search(t) {
                self.meta.degraded_tasks.insert(at, t.clone());
            }
        }
        for t in &m.recovered_tasks {
            if let Err(at) = self.meta.recovered_tasks.binary_search(t) {
                self.meta.recovered_tasks.insert(at, t.clone());
            }
        }
    }
}

/// Rebuilds the cache entries that are stale for the current input
/// versions, in parallel when the stale tasks hold enough records.
fn refresh_cache<F>(
    cache: &mut HashMap<TaskKey, CacheEntry>,
    tasks: &HashMap<TaskKey, TaskState>,
    ordering: &[TaskKey],
    geometry_rev: u64,
    build: F,
) where
    F: Fn(&Partition<'_>) -> Graph + Sync,
{
    static EMPTY: TaskState = TaskState {
        vfd: Vec::new(),
        vol: Vec::new(),
        files: Vec::new(),
        rev: 0,
    };
    let stale: Vec<(&TaskKey, &TaskState)> = ordering
        .iter()
        .map(|t| (t, tasks.get(t).unwrap_or(&EMPTY)))
        .filter(|(t, s)| {
            cache
                .get(*t)
                .map(|c| c.task_rev != s.rev || c.geometry_rev != geometry_rev)
                .unwrap_or(true)
        })
        .collect();
    let stale_records: usize = stale.iter().map(|(_, s)| s.records()).sum();
    let rebuild = |(t, s): &(&TaskKey, &TaskState)| {
        let part = Partition::from_slices((*t).clone(), &s.vfd, &s.vol, &s.files);
        ((*t).clone(), s.rev, build(&part))
    };
    let built: Vec<(TaskKey, u64, Graph)> = if stale_records >= PARALLEL_RECORD_THRESHOLD {
        stale.par_iter().map(rebuild).collect()
    } else {
        stale.iter().map(rebuild).collect()
    };
    for (task, task_rev, graph) in built {
        cache.insert(
            task,
            CacheEntry {
                task_rev,
                geometry_rev,
                graph,
            },
        );
    }
}

/// Seeds task nodes then folds the cached partials, in snapshot order —
/// the same two-phase merge as the batch `build_partitioned`.
fn assemble(g: &mut Graph, ordering: &[TaskKey], cache: &HashMap<TaskKey, CacheEntry>) {
    for t in ordering {
        g.node_sym(NodeKind::Task, t.symbol());
    }
    for t in ordering {
        if let Some(entry) = cache.get(t) {
            build::merge_partial(g, &entry.graph);
        }
    }
    g.normalize_times();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_ftg_with, build_sdg_with};
    use dayu_trace::ids::{FileKey, ObjectKey};
    use dayu_trace::time::{Interval, Timestamp};
    use dayu_trace::vfd::{AccessType, FileStats, IoKind};
    use dayu_trace::vol::{ObjectDescription, ObjectKind, VolAccess, VolAccessKind};

    /// Id-exact graph equality: node and edge vectors compared verbatim
    /// (ids are vector positions), not just the index-insensitive
    /// `PartialEq`.
    fn assert_identical(a: &Graph, b: &Graph) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.workflow, b.workflow);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
    }

    fn vfd(task: &str, file: &str, object: &str, kind: IoKind, offset: u64, at: u64) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            object: ObjectKey::new(object),
            kind,
            offset,
            len: 100,
            access: AccessType::RawData,
            start: Timestamp(at),
            end: Timestamp(at + 5),
        }
    }

    fn sample_bundle() -> TraceBundle {
        let mut b = TraceBundle::new("wf");
        for t in ["producer", "mid", "consumer"] {
            b.push_task(TaskKey::new(t));
        }
        b.meta.stages = vec![
            vec![TaskKey::new("producer")],
            vec![TaskKey::new("mid"), TaskKey::new("consumer")],
        ];
        b.vfd = vec![
            vfd("producer", "a.h5", "/d1", IoKind::Write, 0, 0),
            vfd("producer", "a.h5", "/d1", IoKind::Write, 4096, 10),
            vfd("mid", "a.h5", "/d1", IoKind::Read, 4096, 50),
            vfd("mid", "b.h5", "/d2", IoKind::Write, 0, 60),
            vfd("consumer", "b.h5", "/d2", IoKind::Read, 0, 90),
        ];
        b.vol.push(VolRecord {
            task: TaskKey::new("producer"),
            file: FileKey::new("a.h5"),
            object: ObjectKey::new("/d1"),
            kind: ObjectKind::Dataset,
            lifetimes: vec![Interval::new(Timestamp(0), Timestamp(20))],
            description: ObjectDescription::default(),
            accesses: vec![VolAccess {
                kind: VolAccessKind::Write,
                count: 1,
                bytes: 200,
                sel_offset: vec![],
                sel_count: vec![],
                at: Timestamp(5),
            }],
        });
        b.files.push(FileRecord {
            task: TaskKey::new("consumer"),
            file: FileKey::new("b.h5"),
            lifetimes: vec![Interval::new(Timestamp(85), Timestamp(95))],
            stats: FileStats::default(),
        });
        b
    }

    fn region_opts() -> SdgOptions {
        SdgOptions {
            include_regions: true,
            region_count: 4,
        }
    }

    #[test]
    fn absorbing_sections_in_reverse_matches_batch_build() {
        let b = sample_bundle();
        let mut pg = PartialGraph::new();
        for s in b.split_per_task().iter().rev() {
            pg.absorb(s);
        }
        assert_identical(&pg.snapshot_ftg(), &build_ftg_with(&b, false));
        for opts in [SdgOptions::default(), region_opts()] {
            assert_identical(&pg.snapshot_sdg(&opts), &build_sdg_with(&b, &opts, false));
        }
        assert_eq!(pg.to_bundle().meta, b.meta);
        assert_eq!(pg.records(), b.vfd.len() + b.vol.len() + b.files.len());
        assert!(pg.retained_bytes() > 0);
        assert_eq!(pg.workflow(), "wf");
    }

    #[test]
    fn interleaved_snapshots_match_fresh_batch_builds() {
        // Snapshot between every absorb: the caches must refresh exactly
        // the partials whose inputs changed, including the vfd_empty flip
        // when the first VFD-bearing section lands after a FileRecord-only
        // one.
        let b = sample_bundle();
        let sections = b.split_per_task();
        let mut pg = PartialGraph::new();
        let mut acc = TraceBundle::default();
        let mut first = true;
        // consumer first: its section carries the FileRecord fallback.
        for s in sections.iter().rev() {
            pg.absorb(s);
            if first {
                acc = s.clone();
                first = false;
            } else {
                // Batch reference accumulates with stream-merge semantics.
                let mut bytes = acc.to_binary_bytes();
                bytes.extend(s.to_binary_bytes());
                acc = TraceBundle::read_binary(&bytes[..]).unwrap();
            }
            assert_identical(&pg.snapshot_ftg(), &build_ftg_with(&acc, false));
            assert_identical(
                &pg.snapshot_sdg(&region_opts()),
                &build_sdg_with(&acc, &region_opts(), false),
            );
        }
    }

    #[test]
    fn duplicate_sections_are_dropped_by_digest() {
        let b = sample_bundle();
        let mut pg = PartialGraph::new();
        for s in b.split_per_task() {
            let digest = dayu_trace::sha256(&s.to_binary_bytes());
            assert!(pg.absorb_unique(digest, &s));
            assert!(!pg.absorb_unique(digest, &s), "duplicate must be dropped");
        }
        assert_identical(&pg.snapshot_ftg(), &build_ftg_with(&b, false));
    }

    #[test]
    fn merge_of_split_states_matches_sequential_absorb() {
        let b = sample_bundle();
        let sections = b.split_per_task();
        let mut left = PartialGraph::new();
        let mut right = PartialGraph::new();
        for (i, s) in sections.iter().enumerate() {
            if i % 2 == 0 { &mut left } else { &mut right }.absorb(s);
        }
        left.merge(right);
        let mut seq = PartialGraph::new();
        for s in &sections {
            seq.absorb(s);
        }
        // Orders differ (left absorbed 0,2 then 1), but every task is in
        // task_order so the snapshots are identical.
        assert_identical(&left.snapshot_ftg(), &seq.snapshot_ftg());
        assert_identical(&left.snapshot_ftg(), &build_ftg_with(&b, false));
    }

    #[test]
    fn extent_growth_invalidates_region_geometry() {
        // First section writes low offsets; snapshot; second section
        // extends the file 100x — region boundaries move for *already
        // absorbed* records, so stale cached partials would be wrong.
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t1"));
        b.push_task(TaskKey::new("t2"));
        b.vfd = vec![
            vfd("t1", "a.h5", "/d", IoKind::Write, 0, 0),
            vfd("t2", "a.h5", "/d", IoKind::Write, 100_000, 10),
        ];
        let sections = b.split_per_task();
        let mut pg = PartialGraph::new();
        pg.absorb(&sections[0]);
        let _ = pg.snapshot_sdg(&region_opts());
        pg.absorb(&sections[1]);
        assert_identical(
            &pg.snapshot_sdg(&region_opts()),
            &build_sdg_with(&b, &region_opts(), false),
        );
    }

    #[test]
    fn degraded_and_recovered_marks_union_across_sections() {
        let mut b = sample_bundle();
        b.mark_degraded(TaskKey::new("mid"));
        b.mark_recovered(TaskKey::new("producer"));
        let mut pg = PartialGraph::new();
        for s in b.split_per_task().iter().rev() {
            pg.absorb(s);
        }
        let back = pg.to_bundle();
        assert_eq!(back.meta.degraded_tasks, b.meta.degraded_tasks);
        assert_eq!(back.meta.recovered_tasks, b.meta.recovered_tasks);
        assert_eq!(back.meta.stages, b.meta.stages);
    }

    #[test]
    fn empty_partial_graph_snapshots_empty_graphs() {
        let mut pg = PartialGraph::new();
        assert_eq!(pg.snapshot_ftg().nodes.len(), 0);
        assert_eq!(pg.snapshot_sdg(&SdgOptions::default()).nodes.len(), 0);
        assert_eq!(pg.records(), 0);
        assert_eq!(pg.retained_bytes(), 0);
    }
}
