//! FTG and SDG construction from trace bundles (Section V of the paper).
//!
//! * [`build_ftg`] — the complete-overview graph: files and tasks as nodes,
//!   directed read/write edges decorated with access statistics.
//! * [`build_sdg`] — the deeper semantic graph: a dataset layer between
//!   tasks and files, optionally enriched with file-address region nodes
//!   showing where each dataset's content lands in the file (Fig. 3/8).
//!
//! Edges are primarily derived from the VFD trace (low-level truth,
//! including the metadata/raw split and the current-object attribution from
//! the Characteristic Mapper); object-level (VOL) accesses supply logical
//! volumes and cover runs where time-sensitive I/O tracing was disabled.
//!
//! ## Parallel construction
//!
//! Both builders partition the bundle's records by task, build one partial
//! graph per task, and fold the partials into the final graph sequentially
//! in task order. Record attribution makes the partials independent (every
//! record names exactly one task), so the per-task stage parallelizes with
//! rayon for large traces ([`build_ftg_with`] / [`build_sdg_with`] choose
//! explicitly; the plain entry points switch at
//! [`PARALLEL_RECORD_THRESHOLD`]). Because the merge step is sequential and
//! keyed purely on the deterministic task order — task nodes first, then
//! each task's partial in within-task record order — the output is
//! *identical* to the sequential build regardless of thread count.

use crate::graph::{EdgeStats, Graph, GraphKind, NodeKind, Operation};
use dayu_trace::store::TraceBundle;
use dayu_trace::vfd::{AccessType, FileRecord, IoKind, VfdRecord};
use dayu_trace::vol::{VolAccessKind, VolRecord};
use dayu_trace::{Symbol, TaskKey};
use rayon::prelude::*;
use std::collections::HashMap;

/// Record count at which [`build_ftg`]/[`build_sdg`] switch to the rayon
/// path. Below it, partition + thread hand-off costs more than it saves.
pub const PARALLEL_RECORD_THRESHOLD: usize = 8192;

/// Options for SDG construction.
#[derive(Clone, Debug)]
pub struct SdgOptions {
    /// Whether to add file-address region nodes.
    pub include_regions: bool,
    /// How many address regions to divide each file into.
    pub region_count: u64,
}

impl Default for SdgOptions {
    fn default() -> Self {
        Self {
            include_regions: false,
            region_count: 4,
        }
    }
}

fn vfd_stats(rec: &dayu_trace::vfd::VfdRecord) -> EdgeStats {
    let meta = rec.access == AccessType::Metadata;
    EdgeStats {
        access_volume: rec.len,
        access_count: 1,
        data_access_count: u64::from(!meta),
        data_access_volume: if meta { 0 } else { rec.len },
        metadata_access_count: u64::from(meta),
        metadata_access_volume: if meta { rec.len } else { 0 },
        busy_ns: rec.duration(),
        first: rec.start,
        last: rec.end,
    }
}

/// One task's slice of a bundle, in within-task record order. Shared with
/// the incremental builder ([`crate::partial`]), which assembles partitions
/// from its retained per-task record stores instead of a whole bundle.
pub(crate) struct Partition<'a> {
    pub(crate) task: TaskKey,
    pub(crate) vfd: Vec<&'a VfdRecord>,
    pub(crate) vol: Vec<&'a VolRecord>,
    pub(crate) files: Vec<&'a FileRecord>,
}

impl<'a> Partition<'a> {
    /// A partition over records already grouped by task (the incremental
    /// builder's retained state). Slices must be in within-task record
    /// order for the build to match the batch path.
    pub(crate) fn from_slices(
        task: TaskKey,
        vfd: &'a [VfdRecord],
        vol: &'a [VolRecord],
        files: &'a [FileRecord],
    ) -> Self {
        Self {
            task,
            vfd: vfd.iter().collect(),
            vol: vol.iter().collect(),
            files: files.iter().collect(),
        }
    }
}

/// Splits the bundle's records by task, in `all_tasks` order (execution
/// order first, stragglers after). Every record lands in exactly one
/// partition — `all_tasks` includes every task any record names.
fn partition(bundle: &TraceBundle) -> Vec<Partition<'_>> {
    let tasks = bundle.all_tasks();
    let index: HashMap<Symbol, usize> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.symbol(), i))
        .collect();
    let mut parts: Vec<Partition<'_>> = tasks
        .into_iter()
        .map(|task| Partition {
            task,
            vfd: Vec::new(),
            vol: Vec::new(),
            files: Vec::new(),
        })
        .collect();
    for r in &bundle.vfd {
        parts[index[&r.task.symbol()]].vfd.push(r);
    }
    for r in &bundle.vol {
        parts[index[&r.task.symbol()]].vol.push(r);
    }
    for r in &bundle.files {
        parts[index[&r.task.symbol()]].files.push(r);
    }
    parts
}

/// Folds a per-task partial graph into the final graph: nodes dedup by
/// `(kind, label)` with spans/volumes merged, edges dedup by
/// `(from, to, op)` with statistics merged. All the merge operations are
/// commutative-and-associative min/max/sum, but the fold itself runs
/// sequentially in task order so node and edge ids come out deterministic.
pub(crate) fn merge_partial(g: &mut Graph, part: &Graph) {
    let mut map = Vec::with_capacity(part.nodes.len());
    for n in &part.nodes {
        let id = g.node_sym(n.kind, Symbol::intern(&n.label));
        // Untouched nodes carry the (start=MAX, end=0) sentinel, which is
        // the identity of the (min, max) fold — merging it is a no-op.
        g.touch_node(id, n.start, n.end, n.volume);
        map.push(id);
    }
    for e in &part.edges {
        g.edge(map[e.from], map[e.to], e.op, e.stats.clone());
    }
}

/// Runs `build` over every partition — in parallel when asked — and merges
/// the partials in task order onto `g` (whose task nodes are pre-seeded so
/// node ids follow the workflow's execution order).
fn build_partitioned<F>(mut g: Graph, parts: &[Partition<'_>], parallel: bool, build: F) -> Graph
where
    F: Fn(&Partition<'_>) -> Graph + Sync,
{
    for part in parts {
        g.node_sym(NodeKind::Task, part.task.symbol());
    }
    let partials: Vec<Graph> = if parallel {
        parts.par_iter().map(&build).collect()
    } else {
        parts.iter().map(&build).collect()
    };
    for partial in &partials {
        merge_partial(&mut g, partial);
    }
    g.normalize_times();
    g
}

pub(crate) fn ftg_partial(part: &Partition<'_>, vfd_empty: bool) -> Graph {
    let mut g = Graph::new(GraphKind::Ftg, "");
    let t = g.node_sym(NodeKind::Task, part.task.symbol());

    for rec in &part.vfd {
        if !rec.kind.moves_data() {
            continue;
        }
        let f = g.node_sym(NodeKind::File, rec.file.symbol());
        g.touch_node(t, rec.start, rec.end, rec.len);
        g.touch_node(f, rec.start, rec.end, rec.len);
        let stats = vfd_stats(rec);
        match rec.kind {
            IoKind::Read => g.edge(f, t, Operation::ReadOnly, stats),
            IoKind::Write => g.edge(t, f, Operation::WriteOnly, stats),
            _ => unreachable!(),
        }
    }

    // Fallback/supplement: per-file statistics cover runs without I/O
    // tracing (constant-storage mode). Gated on the *bundle-wide* VFD
    // count, not this task's, to match the single-pass semantics.
    if vfd_empty {
        for fr in &part.files {
            let f = g.node_sym(NodeKind::File, fr.file.symbol());
            let (start, end) = fr
                .lifetimes
                .first()
                .map(|l| (l.start, l.end))
                .unwrap_or_default();
            g.touch_node(t, start, end, fr.stats.total_bytes());
            g.touch_node(f, start, end, fr.stats.total_bytes());
            if fr.stats.read_ops > 0 {
                g.edge(
                    f,
                    t,
                    Operation::ReadOnly,
                    EdgeStats {
                        access_volume: fr.stats.bytes_read,
                        access_count: fr.stats.read_ops,
                        first: start,
                        last: end,
                        ..Default::default()
                    },
                );
            }
            if fr.stats.write_ops > 0 {
                g.edge(
                    t,
                    f,
                    Operation::WriteOnly,
                    EdgeStats {
                        access_volume: fr.stats.bytes_written,
                        access_count: fr.stats.write_ops,
                        first: start,
                        last: end,
                        ..Default::default()
                    },
                );
            }
        }
    }

    g
}

/// Builds the File-Task Graph, choosing serial vs parallel by record count.
pub fn build_ftg(bundle: &TraceBundle) -> Graph {
    build_ftg_with(
        bundle,
        bundle.vfd.len() + bundle.files.len() >= PARALLEL_RECORD_THRESHOLD,
    )
}

/// Builds the File-Task Graph with an explicit serial/parallel choice. The
/// output is identical either way (see the module docs).
pub fn build_ftg_with(bundle: &TraceBundle, parallel: bool) -> Graph {
    let parts = partition(bundle);
    let vfd_empty = bundle.vfd.is_empty();
    let g = Graph::new(GraphKind::Ftg, bundle.meta.workflow.clone());
    build_partitioned(g, &parts, parallel, |p| ftg_partial(p, vfd_empty))
}

/// Label of a dataset node: `file:object` (objects are per-file).
pub fn dataset_label(file: &str, object: &str) -> String {
    format!("{file}:{object}")
}

/// Label of an address-region node: `file:[lo-hi)p` in pages.
pub fn region_label(file: &str, lo_page: u64, hi_page: u64) -> String {
    format!("{file}:[{lo_page}-{hi_page})p")
}

/// Interning caches for the SDG's composite labels (`file:object` dataset
/// labels, `file:[lo-hi)p` region labels), so the per-record hot loop only
/// formats a label string the first time a distinct one appears.
#[derive(Default)]
struct LabelCache {
    dataset: HashMap<(Symbol, Symbol), Symbol>,
    region: HashMap<(Symbol, u64, u64), Symbol>,
}

impl LabelCache {
    fn dataset(&mut self, file: Symbol, object: Symbol) -> Symbol {
        *self
            .dataset
            .entry((file, object))
            .or_insert_with(|| Symbol::intern(&dataset_label(file.as_str(), object.as_str())))
    }

    fn region(&mut self, file: Symbol, lo: u64, hi: u64) -> Symbol {
        *self
            .region
            .entry((file, lo, hi))
            .or_insert_with(|| Symbol::intern(&region_label(file.as_str(), lo, hi)))
    }
}

pub(crate) fn sdg_partial(
    part: &Partition<'_>,
    opts: &SdgOptions,
    file_extent: &HashMap<Symbol, u64>,
    page: u64,
    vfd_empty: bool,
) -> Graph {
    let region_of = |file: Symbol, offset: u64| -> (u64, u64) {
        let extent = file_extent.get(&file).copied().unwrap_or(0).max(1);
        let total_pages = extent.div_ceil(page);
        let per_region = total_pages.div_ceil(opts.region_count.max(1)).max(1);
        let page_idx = offset / page;
        let region = (page_idx / per_region).min(opts.region_count - 1);
        let lo = region * per_region;
        let hi = ((region + 1) * per_region).min(total_pages.max(1));
        (lo, hi)
    };

    let mut g = Graph::new(GraphKind::Sdg, "");
    let mut labels = LabelCache::default();
    let t = g.node_sym(NodeKind::Task, part.task.symbol());

    // Low-level truth: edges from attributed VFD records.
    for rec in &part.vfd {
        if !rec.kind.moves_data() {
            continue;
        }
        let f = g.node_sym(NodeKind::File, rec.file.symbol());
        let d = g.node_sym(
            NodeKind::Dataset,
            labels.dataset(rec.file.symbol(), rec.object.symbol()),
        );
        g.touch_node(t, rec.start, rec.end, rec.len);
        g.touch_node(f, rec.start, rec.end, rec.len);
        g.touch_node(d, rec.start, rec.end, rec.len);
        let stats = vfd_stats(rec);
        match rec.kind {
            IoKind::Read => g.edge(d, t, Operation::ReadOnly, stats.clone()),
            IoKind::Write => g.edge(t, d, Operation::WriteOnly, stats.clone()),
            _ => unreachable!(),
        }
        if opts.include_regions {
            let (lo, hi) = region_of(rec.file.symbol(), rec.offset);
            let r = g.node_sym(
                NodeKind::AddrRegion,
                labels.region(rec.file.symbol(), lo, hi),
            );
            g.touch_node(r, rec.start, rec.end, rec.len);
            g.edge(d, r, Operation::Structural, stats);
            g.edge(r, f, Operation::Structural, EdgeStats::default());
        } else {
            g.edge(d, f, Operation::Structural, EdgeStats::default());
        }
    }

    // Semantic layer: object-level accesses (logical volumes, and coverage
    // when I/O tracing was off). Only the logical volume and count are
    // added; low-level splits came from the VFD records above.
    for rec in &part.vol {
        if rec.accesses.is_empty() {
            continue;
        }
        let d = g.node_sym(
            NodeKind::Dataset,
            labels.dataset(rec.file.symbol(), rec.object.symbol()),
        );
        let f = g.node_sym(NodeKind::File, rec.file.symbol());
        if vfd_empty {
            // No low-level records: this is the only source of edges.
            for a in &rec.accesses {
                let stats = EdgeStats {
                    access_volume: a.bytes,
                    access_count: a.count,
                    first: a.at,
                    last: a.at,
                    ..Default::default()
                };
                g.touch_node(t, a.at, a.at, a.bytes);
                g.touch_node(d, a.at, a.at, a.bytes);
                match a.kind {
                    VolAccessKind::Read => g.edge(d, t, Operation::ReadOnly, stats),
                    VolAccessKind::Write => g.edge(t, d, Operation::WriteOnly, stats),
                }
            }
            g.edge(d, f, Operation::Structural, EdgeStats::default());
        }
        let (start, end) = rec
            .lifetimes
            .first()
            .map(|l| (l.start, l.end))
            .unwrap_or_default();
        g.touch_node(d, start, end, 0);
    }

    g
}

/// Builds the Semantic Dataflow Graph, choosing serial vs parallel by
/// record count.
pub fn build_sdg(bundle: &TraceBundle, opts: &SdgOptions) -> Graph {
    build_sdg_with(
        bundle,
        opts,
        bundle.vfd.len() + bundle.vol.len() >= PARALLEL_RECORD_THRESHOLD,
    )
}

/// Builds the Semantic Dataflow Graph with an explicit serial/parallel
/// choice. The output is identical either way (see the module docs).
pub fn build_sdg_with(bundle: &TraceBundle, opts: &SdgOptions, parallel: bool) -> Graph {
    // Region geometry per file — observed extent split into region_count
    // page-aligned pieces — is a bundle-wide property, computed up front
    // and shared read-only by every partial build.
    let page = bundle.meta.page_size.max(1);
    let mut file_extent: HashMap<Symbol, u64> = HashMap::new();
    if opts.include_regions {
        for rec in &bundle.vfd {
            if rec.kind.moves_data() {
                let e = file_extent.entry(rec.file.symbol()).or_default();
                *e = (*e).max(rec.offset + rec.len);
            }
        }
    }

    let parts = partition(bundle);
    let vfd_empty = bundle.vfd.is_empty();
    let g = Graph::new(GraphKind::Sdg, bundle.meta.workflow.clone());
    build_partitioned(g, &parts, parallel, |p| {
        sdg_partial(p, opts, &file_extent, page, vfd_empty)
    })
}

#[cfg(test)]
#[allow(clippy::too_many_arguments)] // the test factory mirrors VfdRecord's fields
mod tests {
    use super::*;
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::time::Timestamp;
    use dayu_trace::vfd::VfdRecord;

    fn rec(
        task: &str,
        file: &str,
        object: &str,
        kind: IoKind,
        offset: u64,
        len: u64,
        access: AccessType,
        at: u64,
    ) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            kind,
            offset,
            len,
            access,
            object: ObjectKey::new(object),
            start: Timestamp(at),
            end: Timestamp(at + 10),
        }
    }

    fn sample_bundle() -> TraceBundle {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("producer"));
        b.push_task(TaskKey::new("consumer"));
        b.vfd = vec![
            rec(
                "producer",
                "a.h5",
                "/d1",
                IoKind::Write,
                0,
                64,
                AccessType::Metadata,
                0,
            ),
            rec(
                "producer",
                "a.h5",
                "/d1",
                IoKind::Write,
                4096,
                1000,
                AccessType::RawData,
                10,
            ),
            rec(
                "consumer",
                "a.h5",
                "/d1",
                IoKind::Read,
                4096,
                1000,
                AccessType::RawData,
                100,
            ),
            rec(
                "consumer",
                "b.h5",
                "/d2",
                IoKind::Write,
                0,
                500,
                AccessType::RawData,
                200,
            ),
        ];
        b
    }

    #[test]
    fn ftg_structure() {
        let g = build_ftg(&sample_bundle());
        assert_eq!(g.kind, GraphKind::Ftg);
        assert_eq!(g.nodes_of(NodeKind::Task).count(), 2);
        assert_eq!(g.nodes_of(NodeKind::File).count(), 2);
        assert_eq!(
            g.nodes_of(NodeKind::Dataset).count(),
            0,
            "FTG has no dataset layer"
        );

        // producer → a.h5 (writes, merged), a.h5 → consumer (read),
        // consumer → b.h5 (write).
        assert_eq!(g.edges.len(), 3);
        let prod = g.find(NodeKind::Task, "producer").unwrap().id;
        let a = g.find(NodeKind::File, "a.h5").unwrap().id;
        let w = g
            .edges
            .iter()
            .find(|e| e.from == prod && e.to == a)
            .unwrap();
        assert_eq!(w.stats.access_count, 2);
        assert_eq!(w.stats.access_volume, 1064);
        assert_eq!(w.stats.metadata_access_count, 1);
        assert_eq!(w.stats.data_access_volume, 1000);
        assert_eq!(w.stats.first, Timestamp(0));
        assert_eq!(w.stats.last, Timestamp(20));
        assert!(w.stats.bandwidth().unwrap() > 0.0);
    }

    #[test]
    fn ftg_falls_back_to_file_records() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        b.files.push(dayu_trace::vfd::FileRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("f.h5"),
            lifetimes: vec![dayu_trace::time::Interval::new(Timestamp(0), Timestamp(9))],
            stats: {
                let mut s = dayu_trace::vfd::FileStats::default();
                s.record(IoKind::Read, 0, 100, AccessType::RawData);
                s.record(IoKind::Write, 100, 300, AccessType::RawData);
                s
            },
        });
        let g = build_ftg(&b);
        assert_eq!(g.edges.len(), 2, "read and write edges from stats");
        let f = g.find(NodeKind::File, "f.h5").unwrap();
        assert_eq!(f.volume, 400);
    }

    #[test]
    fn sdg_has_dataset_layer_with_attribution() {
        let g = build_sdg(&sample_bundle(), &SdgOptions::default());
        assert_eq!(g.kind, GraphKind::Sdg);
        assert_eq!(g.nodes_of(NodeKind::Dataset).count(), 2);

        let d1 = g.find(NodeKind::Dataset, "a.h5:/d1").unwrap().id;
        let cons = g.find(NodeKind::Task, "consumer").unwrap().id;
        let read_edge = g
            .edges
            .iter()
            .find(|e| e.from == d1 && e.to == cons)
            .expect("dataset → consumer read edge");
        assert_eq!(read_edge.op, Operation::ReadOnly);
        assert_eq!(read_edge.stats.data_access_count, 1);
        assert_eq!(read_edge.stats.metadata_access_count, 0);

        // Structural containment edge dataset → file.
        let a = g.find(NodeKind::File, "a.h5").unwrap().id;
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == d1 && e.to == a && e.op == Operation::Structural));
    }

    #[test]
    fn sdg_with_regions() {
        let mut b = sample_bundle();
        // Spread writes to make 2 distinguishable regions in a.h5.
        b.vfd.push(rec(
            "producer",
            "a.h5",
            "/d1",
            IoKind::Write,
            100_000,
            1000,
            AccessType::RawData,
            30,
        ));
        let g = build_sdg(
            &b,
            &SdgOptions {
                include_regions: true,
                region_count: 4,
            },
        );
        let regions: Vec<&str> = g
            .nodes_of(NodeKind::AddrRegion)
            .map(|n| n.label.as_str())
            .collect();
        assert!(regions.len() >= 2, "distinct regions: {regions:?}");
        // Region nodes connect to the file, datasets connect to regions,
        // and no dataset connects directly to the file.
        let d1 = g.find(NodeKind::Dataset, "a.h5:/d1").unwrap().id;
        let a = g.find(NodeKind::File, "a.h5").unwrap().id;
        assert!(!g.edges.iter().any(|e| e.from == d1 && e.to == a));
        let region_id = g.nodes_of(NodeKind::AddrRegion).next().unwrap().id;
        assert!(g.edges.iter().any(|e| e.from == region_id && e.to == a));
    }

    #[test]
    fn sdg_from_vol_only() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        b.vol.push(dayu_trace::vol::VolRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("f.h5"),
            object: ObjectKey::new("/d"),
            kind: dayu_trace::vol::ObjectKind::Dataset,
            lifetimes: vec![],
            description: Default::default(),
            accesses: vec![dayu_trace::vol::VolAccess {
                kind: VolAccessKind::Write,
                count: 1,
                bytes: 256,
                sel_offset: vec![],
                sel_count: vec![],
                at: Timestamp(7),
            }],
        });
        let g = build_sdg(&b, &SdgOptions::default());
        let d = g.find(NodeKind::Dataset, "f.h5:/d").unwrap();
        assert_eq!(d.volume, 256);
        let t = g.find(NodeKind::Task, "t").unwrap().id;
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == t && e.to == d.id && e.op == Operation::WriteOnly));
    }

    #[test]
    fn empty_bundle_builds_empty_graphs() {
        let b = TraceBundle::new("wf");
        assert_eq!(build_ftg(&b).nodes.len(), 0);
        assert_eq!(build_sdg(&b, &SdgOptions::default()).nodes.len(), 0);
    }

    #[test]
    fn parallel_build_equals_serial() {
        let mut b = sample_bundle();
        // Straggler task (not in task_order) and a degraded-style partial
        // record mix, to exercise the partition edge cases.
        b.vfd.push(rec(
            "straggler",
            "a.h5",
            "/d1",
            IoKind::Read,
            4096,
            10,
            AccessType::RawData,
            400,
        ));
        let opts = SdgOptions {
            include_regions: true,
            region_count: 4,
        };
        let ftg_serial = build_ftg_with(&b, false);
        let ftg_parallel = build_ftg_with(&b, true);
        assert_eq!(ftg_serial, ftg_parallel);
        let sdg_serial = build_sdg_with(&b, &opts, false);
        let sdg_parallel = build_sdg_with(&b, &opts, true);
        assert_eq!(sdg_serial, sdg_parallel);
        // Bit-identical, not just structurally equal.
        assert_eq!(
            serde_json::to_vec(&ftg_serial).unwrap(),
            serde_json::to_vec(&ftg_parallel).unwrap()
        );
        assert_eq!(
            serde_json::to_vec(&sdg_serial).unwrap(),
            serde_json::to_vec(&sdg_parallel).unwrap()
        );
    }

    #[test]
    fn parallel_build_equals_serial_for_file_record_fallback() {
        let mut b = TraceBundle::new("wf");
        for i in 0..3u64 {
            let task = format!("t{i}");
            b.push_task(TaskKey::new(&task));
            b.files.push(dayu_trace::vfd::FileRecord {
                task: TaskKey::new(&task),
                file: FileKey::new("shared.h5"),
                lifetimes: vec![dayu_trace::time::Interval::new(
                    Timestamp(i),
                    Timestamp(i + 10),
                )],
                stats: {
                    let mut s = dayu_trace::vfd::FileStats::default();
                    s.record(IoKind::Write, 0, 100 * (i + 1), AccessType::RawData);
                    s
                },
            });
        }
        assert_eq!(build_ftg_with(&b, false), build_ftg_with(&b, true));
    }
}
