//! Resolution adjustment: aggregating complex graphs.
//!
//! "When SDGs become complex due to workflows with numerous tasks and
//! parallel execution, the Workflow Analyzer enhances readability by
//! presenting a less complex graph. It allows users to group and aggregate
//! nodes by time, space, task, or location dimensions."
//!
//! [`aggregate`] rewrites a graph by mapping each node to a group label;
//! nodes with the same `(kind, group)` collapse into one, edges merge, and
//! time spans/volumes combine. Ready-made groupers cover the common
//! dimensions: task-name prefixes (collapse `openmm_0..11` into `openmm`),
//! time windows, and per-file datasets.

use crate::graph::{Graph, Node, NodeKind};

/// Maps a node to its group label (`None` keeps the node as itself).
pub type Grouper<'a> = dyn Fn(&Node) -> Option<String> + 'a;

/// Collapses a graph by the given grouper.
pub fn aggregate(g: &Graph, group: &Grouper) -> Graph {
    let mut out = Graph::new(g.kind, g.workflow.clone());
    // Map old id → new id.
    let mut remap = Vec::with_capacity(g.nodes.len());
    for n in &g.nodes {
        let label = group(n).unwrap_or_else(|| n.label.clone());
        let id = out.node(n.kind, &label);
        out.touch_node(id, n.start, n.end, n.volume);
        remap.push(id);
    }
    for e in &g.edges {
        let from = remap[e.from];
        let to = remap[e.to];
        if from == to {
            continue; // collapsed self-edges carry no information
        }
        out.edge(from, to, e.op, e.stats.clone());
    }
    out.normalize_times();
    out
}

/// Groups task nodes by the prefix before the last `_<number>` suffix
/// (`openmm_3` → `openmm`); other nodes are untouched.
pub fn by_task_prefix(n: &Node) -> Option<String> {
    if n.kind != NodeKind::Task {
        return None;
    }
    let (prefix, suffix) = n.label.rsplit_once('_')?;
    if suffix.chars().all(|c| c.is_ascii_digit()) && !suffix.is_empty() {
        Some(prefix.to_owned())
    } else {
        None
    }
}

/// Groups every node into time windows of `window_ns` by its start time,
/// prefixing labels with the window index — the "by time" dimension.
pub fn by_time_window(window_ns: u64) -> impl Fn(&Node) -> Option<String> {
    move |n: &Node| {
        let w = n.start.nanos() / window_ns.max(1);
        Some(format!("w{w}:{}", n.label))
    }
}

/// Collapses every dataset node of a file into one `file:*` node — the
/// "by space" dimension for files with very many datasets (Fig. 5).
pub fn datasets_by_file(n: &Node) -> Option<String> {
    if n.kind != NodeKind::Dataset {
        return None;
    }
    let (file, _) = n.label.split_once(':')?;
    Some(format!("{file}:*"))
}

/// Convenience: hides address-region nodes by collapsing them into their
/// file's single `regions` node.
pub fn collapse_regions(n: &Node) -> Option<String> {
    if n.kind != NodeKind::AddrRegion {
        return None;
    }
    let (file, _) = n.label.split_once(':')?;
    Some(format!("{file}:regions"))
}

/// Estimated render complexity of a graph (nodes + edges), used to decide
/// when resolution adjustment is worthwhile.
pub fn complexity(g: &Graph) -> usize {
    g.nodes.len() + g.edges.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeStats, GraphKind, Operation};
    use dayu_trace::time::Timestamp;

    fn sample() -> Graph {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        for i in 0..4 {
            let t = g.node(NodeKind::Task, &format!("openmm_{i}"));
            g.touch_node(t, Timestamp(i * 10), Timestamp(i * 10 + 5), 100);
            let f = g.node(NodeKind::File, &format!("out{i}.h5"));
            g.edge(
                t,
                f,
                Operation::WriteOnly,
                EdgeStats {
                    access_volume: 100,
                    access_count: 1,
                    first: Timestamp(i * 10),
                    last: Timestamp(i * 10 + 5),
                    ..Default::default()
                },
            );
        }
        let agg = g.node(NodeKind::Task, "aggregate");
        for i in 0..4 {
            let f = g.node(NodeKind::File, &format!("out{i}.h5"));
            g.edge(f, agg, Operation::ReadOnly, EdgeStats::default());
        }
        g
    }

    #[test]
    fn task_prefix_grouping_collapses_parallel_tasks() {
        let g = sample();
        assert_eq!(g.nodes_of(NodeKind::Task).count(), 5);
        let agg = aggregate(&g, &by_task_prefix);
        let tasks: Vec<&str> = agg
            .nodes_of(NodeKind::Task)
            .map(|n| n.label.as_str())
            .collect();
        assert_eq!(tasks, vec!["openmm", "aggregate"]);
        // The collapsed node spans all component times and sums volume.
        let openmm = agg.find(NodeKind::Task, "openmm").unwrap();
        assert_eq!(openmm.start, Timestamp(0));
        assert_eq!(openmm.end, Timestamp(35));
        assert_eq!(openmm.volume, 400);
        // Edges from openmm to the four files merged per file.
        assert_eq!(agg.out_edges(openmm.id).count(), 4);
        assert!(complexity(&agg) < complexity(&g));
    }

    #[test]
    fn prefix_grouper_ignores_non_numeric_suffixes() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let id = g.node(NodeKind::Task, "run_speed");
        assert_eq!(by_task_prefix(&g.nodes[id]), None);
        let id2 = g.node(NodeKind::File, "file_3");
        assert_eq!(by_task_prefix(&g.nodes[id2]), None, "files untouched");
    }

    #[test]
    fn dataset_by_file_grouping() {
        let mut g = Graph::new(GraphKind::Sdg, "wf");
        for i in 0..10 {
            g.node(NodeKind::Dataset, &format!("f.h5:/small{i}"));
        }
        g.node(NodeKind::Dataset, "g.h5:/other");
        let agg = aggregate(&g, &datasets_by_file);
        let labels: Vec<&str> = agg
            .nodes_of(NodeKind::Dataset)
            .map(|n| n.label.as_str())
            .collect();
        assert_eq!(labels, vec!["f.h5:*", "g.h5:*"]);
    }

    #[test]
    fn time_window_grouping_separates_phases() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let a = g.node(NodeKind::Task, "t");
        g.touch_node(a, Timestamp(5), Timestamp(6), 0);
        let b = g.node(NodeKind::Task, "u");
        g.touch_node(b, Timestamp(105), Timestamp(106), 0);
        let agg = aggregate(&g, &by_time_window(100));
        let labels: Vec<&str> = agg.nodes.iter().map(|n| n.label.as_str()).collect();
        assert!(labels.contains(&"w0:t"));
        assert!(labels.contains(&"w1:u"));
    }

    #[test]
    fn self_edges_dropped_after_collapse() {
        let mut g = Graph::new(GraphKind::Ftg, "wf");
        let a = g.node(NodeKind::Task, "x_0");
        let b = g.node(NodeKind::Task, "x_1");
        // x_0 → x_1 edge (contrived) collapses to a self-edge and vanishes.
        g.edge(a, b, Operation::ReadOnly, EdgeStats::default());
        let agg = aggregate(&g, &by_task_prefix);
        assert_eq!(agg.nodes.len(), 1);
        assert!(agg.edges.is_empty());
    }

    #[test]
    fn collapse_regions_grouper() {
        let mut g = Graph::new(GraphKind::Sdg, "wf");
        let r1 = g.node(NodeKind::AddrRegion, "f.h5:[0-4)p");
        let r2 = g.node(NodeKind::AddrRegion, "f.h5:[4-8)p");
        assert_eq!(
            collapse_regions(&g.nodes[r1]),
            Some("f.h5:regions".to_owned())
        );
        assert_eq!(
            collapse_regions(&g.nodes[r2]),
            Some("f.h5:regions".to_owned())
        );
        let agg = aggregate(&g, &collapse_regions);
        assert_eq!(agg.nodes_of(NodeKind::AddrRegion).count(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::{EdgeStats, GraphKind, Operation};
    use dayu_trace::time::Timestamp;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = Graph> {
        (
            prop::collection::vec(("[a-z]{1,6}_[0-9]{1,2}", 0u64..1000, 0u64..1 << 20), 1..20),
            prop::collection::vec((0usize..20, 0usize..20, 0u64..1 << 16), 0..40),
        )
            .prop_map(|(nodes, edges)| {
                let mut g = Graph::new(GraphKind::Ftg, "prop");
                for (i, (label, t, vol)) in nodes.iter().enumerate() {
                    let kind = if i % 2 == 0 {
                        NodeKind::Task
                    } else {
                        NodeKind::File
                    };
                    let id = g.node(kind, label);
                    g.touch_node(id, Timestamp(*t), Timestamp(t + 10), *vol);
                }
                let n = g.nodes.len();
                for (a, b, vol) in edges {
                    let (from, to) = (a % n, b % n);
                    if from == to {
                        continue;
                    }
                    g.edge(
                        from,
                        to,
                        Operation::ReadOnly,
                        EdgeStats {
                            access_volume: vol,
                            access_count: 1,
                            ..Default::default()
                        },
                    );
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Aggregation conserves node volume and never grows the graph.
        #[test]
        fn aggregation_conserves_volume(g in arb_graph()) {
            let agg = aggregate(&g, &by_task_prefix);
            let before: u64 = g.nodes.iter().map(|n| n.volume).sum();
            let after: u64 = agg.nodes.iter().map(|n| n.volume).sum();
            prop_assert_eq!(before, after);
            prop_assert!(agg.nodes.len() <= g.nodes.len());
            prop_assert!(agg.edges.len() <= g.edges.len());
        }

        /// Edge volume is conserved except for dropped self-edges.
        #[test]
        fn aggregation_conserves_edge_volume_modulo_self_edges(g in arb_graph()) {
            let agg = aggregate(&g, &by_task_prefix);
            let after: u64 = agg.edges.iter().map(|e| e.stats.access_volume).sum();
            let before: u64 = g.edges.iter().map(|e| e.stats.access_volume).sum();
            prop_assert!(after <= before);
        }

        /// Aggregating twice with the same grouper is idempotent on shape.
        #[test]
        fn aggregation_is_idempotent(g in arb_graph()) {
            let once = aggregate(&g, &by_task_prefix);
            let twice = aggregate(&once, &by_task_prefix);
            prop_assert_eq!(once.nodes.len(), twice.nodes.len());
            prop_assert_eq!(once.edges.len(), twice.edges.len());
        }
    }
}
