//! Bottleneck and opportunity detectors.
//!
//! Each detector encodes one of the paper's diagnostic observations
//! (Section VI): data reuse, write-after-read, time-dependent inputs,
//! disposable data (PyFLEXTRKR); read-after-write reuse, unused datasets,
//! independent stages, chunked-layout overhead (DDMD); contiguous
//! variable-length data (ARLDM); plus the many-small-datasets and
//! metadata-heavy-file patterns behind Fig. 5 and Fig. 13a. The advisor
//! crate maps these findings to the optimization guidelines of
//! Section III-A.

use crate::build::dataset_label;
use crate::graph::{Graph, NodeKind, Operation};
use dayu_trace::store::TraceBundle;
use dayu_trace::time::Timestamp;
use dayu_trace::vol::{DataType, LayoutKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Detector thresholds.
#[derive(Clone, Debug)]
pub struct DetectorConfig {
    /// A dataset smaller than this (bytes) is "small" (paper Fig. 5:
    /// "many small datasets (less than 500 bytes)").
    pub small_dataset_bytes: u64,
    /// Minimum number of small datasets in one file to flag scattering.
    pub scatter_min_count: usize,
    /// An input first touched after this fraction of the workflow span is
    /// "time-dependent" (prefetch can be delayed).
    pub late_input_fraction: f64,
    /// Metadata op share above which a file is metadata-heavy.
    pub metadata_heavy_fraction: f64,
    /// Minimum ops for the metadata-heavy detector to fire.
    pub metadata_heavy_min_ops: u64,
    /// A chunked dataset smaller than this should likely be contiguous
    /// (the DDMD finding: chunking small data adds metadata overhead).
    pub small_chunked_bytes: u64,
    /// Sequential fraction below which access counts as random.
    pub random_access_max_sequential: f64,
    /// Minimum raw ops before the random-access detector fires.
    pub random_access_min_ops: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            small_dataset_bytes: 500,
            scatter_min_count: 10,
            late_input_fraction: 0.3,
            metadata_heavy_fraction: 0.5,
            metadata_heavy_min_ops: 16,
            small_chunked_bytes: 1 << 20,
            random_access_max_sequential: 0.3,
            random_access_min_ops: 8,
        }
    }
}

/// One diagnostic finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Finding {
    /// A file is read by multiple downstream tasks (Fig. 4 orange edges).
    DataReuse {
        /// The reused file.
        file: String,
        /// Its reader tasks.
        readers: Vec<String>,
    },
    /// A task reads a file and later writes it (Fig. 4 circle 1).
    WriteAfterRead {
        /// The task.
        task: String,
        /// The file.
        file: String,
    },
    /// A task writes a file and later reads it back (DDMD training on
    /// embedding files).
    ReadAfterWrite {
        /// The task.
        task: String,
        /// The file.
        file: String,
    },
    /// A pure input file first needed late in the workflow (Fig. 4
    /// circle 2): prefetch can be deferred.
    TimeDependentInput {
        /// The file.
        file: String,
        /// When it is first read, as a fraction of the workflow span.
        first_access_fraction: f64,
    },
    /// A file consumed by at most one downstream task: non-critical once
    /// processed, a stage-out candidate (Fig. 4 blue edges).
    DisposableData {
        /// The file.
        file: String,
        /// When its last read completes.
        after: Timestamp,
    },
    /// Many small datasets scattered in one file (Fig. 5): consolidation
    /// candidate.
    SmallScatteredDatasets {
        /// The file.
        file: String,
        /// How many small datasets it holds.
        dataset_count: usize,
        /// Their mean size in bytes.
        mean_bytes: f64,
    },
    /// A dataset written but never meaningfully read: partial-file-access
    /// candidate (Fig. 7: `contact_map` is metadata-only for training).
    UnusedDataset {
        /// Dataset label (`file:path`).
        dataset: String,
        /// Who wrote it.
        written_by: Vec<String>,
        /// Readers that touched only its metadata.
        metadata_only_readers: Vec<String>,
        /// Whether no task read it at all.
        never_read: bool,
        /// Raw bytes written to it — what skipping the dataset saves.
        bytes: u64,
    },
    /// Two consecutive tasks share no files: parallelizable (DDMD
    /// training/inference).
    IndependentTasks {
        /// Earlier task.
        first: String,
        /// Later task.
        second: String,
    },
    /// Metadata operations dominate a file's I/O.
    MetadataHeavyFile {
        /// The file.
        file: String,
        /// Metadata share of operations, in `[0, 1]`.
        metadata_fraction: f64,
        /// Total data-moving ops observed.
        total_ops: u64,
    },
    /// A small dataset uses chunked layout: the chunk index costs more than
    /// it buys (DDMD; Fig. 13b motivation).
    ChunkedSmallDataset {
        /// Dataset label.
        dataset: String,
        /// Logical size in bytes.
        bytes: u64,
    },
    /// A variable-length dataset uses contiguous layout: no index metadata
    /// to support efficient random access (ARLDM; Fig. 13c motivation).
    ContiguousVarlenDataset {
        /// Dataset label.
        dataset: String,
        /// Logical payload size in bytes.
        bytes: u64,
    },
    /// A large contiguous dataset is accessed non-sequentially: chunked
    /// layout would index the regions being hit (guideline III-A.4,
    /// "large fixed-length data: select chunked layout to optimize for
    /// random or parallel access").
    RandomAccessContiguous {
        /// Dataset label (`file:path`).
        dataset: String,
        /// Fraction of its raw accesses that were sequential, in `[0, 1]`.
        sequential_fraction: f64,
        /// Raw data ops observed.
        ops: u64,
    },
    /// A single consumer reads exactly one producer's output: co-schedule
    /// them on one node (the Fig. 11 stages 3→4→5 pattern).
    CoSchedulable {
        /// Producing task.
        producer: String,
        /// Consuming task.
        consumer: String,
        /// The file flowing between them.
        file: String,
    },
    /// A task's trace is a salvaged, truncated fragment (the task died or
    /// exhausted its retries mid-session). Every graph edge touching it is
    /// a lower bound, and downstream findings about its files may be
    /// incomplete — the run should be repeated before acting on them.
    DegradedTrace {
        /// The task whose trace was salvaged.
        task: String,
    },
    /// A task crashed mid-write and a retry resumed from journal-recovered
    /// file state. Unlike [`Finding::DegradedTrace`], the trace describes
    /// the *successful* attempt, so graphs are complete — but the crash is
    /// a durability signal: the task's output files depend on the journal
    /// for integrity, and the timing of the recovered attempt includes
    /// replay cost.
    RecoveredTask {
        /// The task whose retry resumed from recovered state.
        task: String,
    },
    /// Two recordings of the same workload diverge: nondeterminism, an
    /// environment change, or a perturbed schedule steered a task off the
    /// reference run's operation stream. Produced by the diff engine
    /// ([`crate::diff::diff_traces`]), not by the single-trace detectors —
    /// the ancestor lists come from the reference run's SDG and bound
    /// where the cause can hide.
    ReplayDivergence {
        /// Task whose stream diverges first.
        task: String,
        /// Index of the divergent event within that task's stream.
        event_index: usize,
        /// The reference run's event (`"<end of stream>"` if it had none).
        expected: String,
        /// The compared run's event at the same index.
        actual: String,
        /// Upstream tasks feeding the divergent task, per the SDG.
        ancestor_tasks: Vec<String>,
        /// Datasets on the backward path (`file:path` labels).
        ancestor_datasets: Vec<String>,
    },
    /// A streaming-ingest tenant is running on an incomplete graph: the
    /// ingest service quarantined corrupt sections or shed load for this
    /// workflow, so its FTG/SDG reflect only the sections that survived.
    /// Produced by `dayu-served`'s watchdog, not by the single-trace
    /// detectors — downstream advice should be re-validated after a clean
    /// re-ingest.
    DegradedIngest {
        /// The workflow whose ingest degraded.
        workflow: String,
        /// Why the watchdog flagged it (e.g. "quarantined sections",
        /// "budget exhausted", "evicted under memory pressure").
        reason: String,
        /// Sections quarantined for this tenant so far.
        quarantined: u64,
        /// Sections dropped by load-shedding (throttle or eviction).
        dropped: u64,
    },
}

impl Finding {
    /// Short machine-readable category tag.
    pub fn category(&self) -> &'static str {
        match self {
            Finding::DataReuse { .. } => "data-reuse",
            Finding::WriteAfterRead { .. } => "write-after-read",
            Finding::ReadAfterWrite { .. } => "read-after-write",
            Finding::TimeDependentInput { .. } => "time-dependent-input",
            Finding::DisposableData { .. } => "disposable-data",
            Finding::SmallScatteredDatasets { .. } => "small-scattered-datasets",
            Finding::UnusedDataset { .. } => "unused-dataset",
            Finding::IndependentTasks { .. } => "independent-tasks",
            Finding::MetadataHeavyFile { .. } => "metadata-heavy-file",
            Finding::ChunkedSmallDataset { .. } => "chunked-small-dataset",
            Finding::ContiguousVarlenDataset { .. } => "contiguous-varlen-dataset",
            Finding::RandomAccessContiguous { .. } => "random-access-contiguous",
            Finding::CoSchedulable { .. } => "co-schedulable",
            Finding::DegradedTrace { .. } => "degraded-trace",
            Finding::RecoveredTask { .. } => "recovered-task",
            Finding::ReplayDivergence { .. } => "replay-divergence",
            Finding::DegradedIngest { .. } => "degraded-ingest",
        }
    }
}

/// Runs every detector over a trace bundle and its graphs.
pub fn run_detectors(
    bundle: &TraceBundle,
    ftg: &Graph,
    sdg: &Graph,
    cfg: &DetectorConfig,
) -> Vec<Finding> {
    let mut out = Vec::new();
    // Degraded traces first: they qualify every other finding (analysis of
    // a salvaged fragment is a lower bound, not the full dataflow).
    for t in &bundle.meta.degraded_tasks {
        out.push(Finding::DegradedTrace {
            task: t.as_str().to_owned(),
        });
    }
    // Recovered tasks next: their traces are complete (the successful
    // retry), but the crash-and-replay history matters for durability and
    // timing interpretation.
    for t in &bundle.meta.recovered_tasks {
        out.push(Finding::RecoveredTask {
            task: t.as_str().to_owned(),
        });
    }
    detect_file_patterns(ftg, cfg, &mut out);
    detect_scattering(bundle, sdg, cfg, &mut out);
    detect_unused_datasets(bundle, sdg, &mut out);
    detect_independent_tasks(bundle, ftg, &mut out);
    detect_metadata_heavy(bundle, cfg, &mut out);
    detect_layout_findings(bundle, cfg, &mut out);
    detect_random_access(bundle, cfg, &mut out);
    detect_coschedulable(ftg, &mut out);
    out
}

fn detect_random_access(bundle: &TraceBundle, cfg: &DetectorConfig, out: &mut Vec<Finding>) {
    use dayu_trace::vfd::AccessType;
    // Per (file, object): raw-data access sequentiality across all tasks.
    #[derive(Default)]
    struct Acc {
        ops: u64,
        sequential: u64,
        last_end: Option<u64>,
    }
    let mut accs: BTreeMap<(String, String), Acc> = BTreeMap::new();
    for r in &bundle.vfd {
        if !r.kind.moves_data() || r.access != AccessType::RawData {
            continue;
        }
        let a = accs
            .entry((r.file.as_str().to_owned(), r.object.as_str().to_owned()))
            .or_default();
        a.ops += 1;
        if a.last_end == Some(r.offset) {
            a.sequential += 1;
        }
        a.last_end = Some(r.offset + r.len);
    }
    // Only large *contiguous* datasets qualify (per the VOL description).
    for rec in &bundle.vol {
        if rec.description.layout != Some(LayoutKind::Contiguous)
            || rec.description.logical_size < cfg.small_chunked_bytes
        {
            continue;
        }
        let key = (rec.file.as_str().to_owned(), rec.object.as_str().to_owned());
        let Some(a) = accs.get(&key) else { continue };
        if a.ops < cfg.random_access_min_ops {
            continue;
        }
        let frac = a.sequential as f64 / a.ops as f64;
        if frac <= cfg.random_access_max_sequential {
            let label = dataset_label(&key.0, &key.1);
            if !out.iter().any(|f| {
                matches!(
                    f,
                    Finding::RandomAccessContiguous { dataset, .. } if *dataset == label
                )
            }) {
                out.push(Finding::RandomAccessContiguous {
                    dataset: label,
                    sequential_fraction: frac,
                    ops: a.ops,
                });
            }
        }
    }
}

fn workflow_span(ftg: &Graph) -> (Timestamp, Timestamp) {
    let start = ftg.nodes.iter().map(|n| n.start).min().unwrap_or_default();
    let end = ftg.nodes.iter().map(|n| n.end).max().unwrap_or_default();
    (start, end)
}

fn detect_file_patterns(ftg: &Graph, cfg: &DetectorConfig, out: &mut Vec<Finding>) {
    let (wf_start, wf_end) = workflow_span(ftg);
    let span = wf_end.since(wf_start).max(1);

    for file in ftg.nodes_of(NodeKind::File) {
        let readers: Vec<(&str, Timestamp, Timestamp)> = ftg
            .out_edges(file.id)
            .filter(|e| e.op == Operation::ReadOnly)
            .map(|e| (ftg.nodes[e.to].label.as_str(), e.stats.first, e.stats.last))
            .collect();
        let writers: Vec<(&str, Timestamp)> = ftg
            .in_edges(file.id)
            .filter(|e| e.op == Operation::WriteOnly)
            .map(|e| (ftg.nodes[e.from].label.as_str(), e.stats.first))
            .collect();

        if readers.len() >= 2 {
            out.push(Finding::DataReuse {
                file: file.label.clone(),
                readers: readers.iter().map(|(t, _, _)| (*t).to_owned()).collect(),
            });
        }

        // Write-after-read / read-after-write per task.
        for &(reader, r_first, _) in &readers {
            if let Some(&(_, w_first)) = writers.iter().find(|(w, _)| *w == reader) {
                if r_first <= w_first {
                    out.push(Finding::WriteAfterRead {
                        task: reader.to_owned(),
                        file: file.label.clone(),
                    });
                } else {
                    out.push(Finding::ReadAfterWrite {
                        task: reader.to_owned(),
                        file: file.label.clone(),
                    });
                }
            }
        }

        // Time-dependent pure inputs.
        if writers.is_empty() && !readers.is_empty() {
            let first_read = readers.iter().map(|(_, f, _)| *f).min().expect("nonempty");
            let frac = first_read.since(wf_start) as f64 / span as f64;
            if frac >= cfg.late_input_fraction {
                out.push(Finding::TimeDependentInput {
                    file: file.label.clone(),
                    first_access_fraction: frac,
                });
            }
        }

        // Disposable data: ≤1 consumer.
        if readers.len() <= 1 && (!readers.is_empty() || !writers.is_empty()) {
            let after = readers.iter().map(|(_, _, l)| *l).max().unwrap_or(file.end);
            out.push(Finding::DisposableData {
                file: file.label.clone(),
                after,
            });
        }
    }
}

fn detect_scattering(
    bundle: &TraceBundle,
    sdg: &Graph,
    cfg: &DetectorConfig,
    out: &mut Vec<Finding>,
) {
    // Per-dataset *logical* size: prefer the VOL description; fall back to
    // raw-data bytes written (traffic volume would be inflated by metadata
    // churn and re-reads, masking exactly the small datasets we look for).
    let mut sizes: BTreeMap<(String, String), u64> = BTreeMap::new();
    for rec in &bundle.vol {
        if rec.description.logical_size > 0 {
            sizes.insert(
                (rec.file.as_str().to_owned(), rec.object.as_str().to_owned()),
                rec.description.logical_size,
            );
        }
    }
    for rec in &bundle.vfd {
        if rec.kind == dayu_trace::vfd::IoKind::Write
            && rec.access == dayu_trace::vfd::AccessType::RawData
        {
            sizes
                .entry((rec.file.as_str().to_owned(), rec.object.as_str().to_owned()))
                .or_insert(0);
        }
    }
    // Fill fallback sizes from raw write traffic where VOL gave nothing.
    for rec in &bundle.vfd {
        if rec.kind == dayu_trace::vfd::IoKind::Write
            && rec.access == dayu_trace::vfd::AccessType::RawData
        {
            let key = (rec.file.as_str().to_owned(), rec.object.as_str().to_owned());
            if !bundle.vol.iter().any(|v| {
                v.file.as_str() == key.0
                    && v.object.as_str() == key.1
                    && v.description.logical_size > 0
            }) {
                *sizes.get_mut(&key).expect("seeded above") += rec.len;
            }
        }
    }
    let _ = sdg;
    let mut per_file: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for ((file, object), size) in &sizes {
        if object == "File-Metadata" {
            continue;
        }
        per_file.entry(file.as_str()).or_default().push(*size);
    }
    for (file, volumes) in per_file {
        let small: Vec<u64> = volumes
            .iter()
            .copied()
            .filter(|&v| v > 0 && v < cfg.small_dataset_bytes)
            .collect();
        if small.len() >= cfg.scatter_min_count {
            out.push(Finding::SmallScatteredDatasets {
                file: file.to_owned(),
                dataset_count: small.len(),
                mean_bytes: small.iter().sum::<u64>() as f64 / small.len() as f64,
            });
        }
    }
}

fn detect_unused_datasets(bundle: &TraceBundle, sdg: &Graph, out: &mut Vec<Finding>) {
    // Groups are structural containers: they are "metadata-only" by nature
    // and must not be reported as unused datasets.
    let group_labels: BTreeSet<String> = bundle
        .vol
        .iter()
        .filter(|r| r.kind == dayu_trace::vol::ObjectKind::Group)
        .map(|r| dataset_label(r.file.as_str(), r.object.as_str()))
        .collect();
    for d in sdg.nodes_of(NodeKind::Dataset) {
        if d.label.ends_with(":File-Metadata") || group_labels.contains(&d.label) {
            continue;
        }
        let mut bytes = 0u64;
        let written_by: Vec<String> = sdg
            .in_edges(d.id)
            .filter(|e| e.op == Operation::WriteOnly)
            .map(|e| {
                bytes += e.stats.data_access_volume;
                sdg.nodes[e.from].label.clone()
            })
            .collect();
        if written_by.is_empty() {
            continue;
        }
        let mut metadata_only = Vec::new();
        let mut real_read = false;
        for e in sdg.out_edges(d.id).filter(|e| e.op == Operation::ReadOnly) {
            if e.stats.data_access_count == 0 && e.stats.metadata_access_count > 0 {
                metadata_only.push(sdg.nodes[e.to].label.clone());
            } else if e.stats.access_count > 0 {
                real_read = true;
            }
        }
        let never_read = !real_read && metadata_only.is_empty();
        if never_read || (!real_read && !metadata_only.is_empty()) {
            out.push(Finding::UnusedDataset {
                dataset: d.label.clone(),
                written_by,
                metadata_only_readers: metadata_only,
                never_read,
                bytes,
            });
        }
    }
}

fn detect_independent_tasks(bundle: &TraceBundle, ftg: &Graph, out: &mut Vec<Finding>) {
    // "Independent" means no producer→consumer relation in either
    // direction: neither task reads data the other wrote. Shared *inputs*
    // (both reading the same upstream file) do not create a dependency —
    // the paper's training task reads one simulation file that inference
    // also reads, yet the two are still pipelinable.
    let mut reads_of: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut writes_of: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for t in ftg.nodes_of(NodeKind::Task) {
        let reads = ftg
            .in_edges(t.id)
            .filter(|e| e.op == Operation::ReadOnly)
            .map(|e| ftg.nodes[e.from].label.as_str())
            .collect();
        // Only raw-data writes make a task a producer; metadata-only writes
        // (superblock updates, header touches) do not.
        let writes = ftg
            .out_edges(t.id)
            .filter(|e| e.op == Operation::WriteOnly && e.stats.data_access_count > 0)
            .map(|e| ftg.nodes[e.to].label.as_str())
            .collect();
        reads_of.insert(t.label.as_str(), reads);
        writes_of.insert(t.label.as_str(), writes);
    }
    let order = &bundle.meta.task_order;
    for pair in order.windows(2) {
        let (a, b) = (pair[0].as_str(), pair[1].as_str());
        let (Some(ra), Some(rb)) = (reads_of.get(a), reads_of.get(b)) else {
            continue;
        };
        let (Some(wa), Some(wb)) = (writes_of.get(a), writes_of.get(b)) else {
            continue;
        };
        let a_feeds_b = rb.intersection(wa).next().is_some();
        let b_feeds_a = ra.intersection(wb).next().is_some();
        let a_active = !(ra.is_empty() && wa.is_empty());
        let b_active = !(rb.is_empty() && wb.is_empty());
        let both_active = a_active && b_active;
        if both_active && !a_feeds_b && !b_feeds_a {
            out.push(Finding::IndependentTasks {
                first: a.to_owned(),
                second: b.to_owned(),
            });
        }
    }
}

fn detect_metadata_heavy(bundle: &TraceBundle, cfg: &DetectorConfig, out: &mut Vec<Finding>) {
    let mut per_file: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in &bundle.vfd {
        if !r.kind.moves_data() {
            continue;
        }
        let e = per_file.entry(r.file.as_str()).or_default();
        e.0 += 1;
        if r.access == dayu_trace::vfd::AccessType::Metadata {
            e.1 += 1;
        }
    }
    // Cover trace_io=off runs through file statistics.
    if per_file.is_empty() {
        for fr in &bundle.files {
            let e = per_file.entry(fr.file.as_str()).or_default();
            e.0 += fr.stats.total_ops();
            e.1 += fr.stats.metadata_ops;
        }
    }
    for (file, (total, meta)) in per_file {
        if total >= cfg.metadata_heavy_min_ops {
            let frac = meta as f64 / total as f64;
            if frac >= cfg.metadata_heavy_fraction {
                out.push(Finding::MetadataHeavyFile {
                    file: file.to_owned(),
                    metadata_fraction: frac,
                    total_ops: total,
                });
            }
        }
    }
}

fn detect_layout_findings(bundle: &TraceBundle, cfg: &DetectorConfig, out: &mut Vec<Finding>) {
    let mut seen = BTreeSet::new();
    for rec in &bundle.vol {
        let label = dataset_label(rec.file.as_str(), rec.object.as_str());
        if !seen.insert(label.clone()) {
            continue;
        }
        let desc = &rec.description;
        match (desc.layout, desc.dtype) {
            (Some(LayoutKind::Chunked), Some(dt)) if !dt.is_varlen() => {
                let bytes = desc.logical_size;
                if bytes > 0 && bytes < cfg.small_chunked_bytes {
                    out.push(Finding::ChunkedSmallDataset {
                        dataset: label,
                        bytes,
                    });
                }
            }
            (Some(LayoutKind::Contiguous), Some(DataType::VarLen)) => {
                out.push(Finding::ContiguousVarlenDataset {
                    dataset: label,
                    bytes: desc.logical_size.max(rec.bytes_written()),
                });
            }
            _ => {}
        }
    }
}

fn detect_coschedulable(ftg: &Graph, out: &mut Vec<Finding>) {
    for file in ftg.nodes_of(NodeKind::File) {
        let writers: Vec<&str> = ftg
            .in_edges(file.id)
            .filter(|e| e.op == Operation::WriteOnly)
            .map(|e| ftg.nodes[e.from].label.as_str())
            .collect();
        let readers: Vec<&str> = ftg
            .out_edges(file.id)
            .filter(|e| e.op == Operation::ReadOnly)
            .map(|e| ftg.nodes[e.to].label.as_str())
            .collect();
        if writers.len() == 1 && readers.len() == 1 && writers[0] != readers[0] {
            out.push(Finding::CoSchedulable {
                producer: writers[0].to_owned(),
                consumer: readers[0].to_owned(),
                file: file.label.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_ftg, build_sdg, SdgOptions};
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
    use dayu_trace::vol::{ObjectDescription, ObjectKind, VolRecord};

    fn rec(
        task: &str,
        file: &str,
        object: &str,
        kind: IoKind,
        len: u64,
        access: AccessType,
        at: u64,
    ) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            kind,
            offset: 0,
            len,
            access,
            object: ObjectKey::new(object),
            start: Timestamp(at),
            end: Timestamp(at + 5),
        }
    }

    fn detect(bundle: &TraceBundle) -> Vec<Finding> {
        let ftg = build_ftg(bundle);
        let sdg = build_sdg(bundle, &SdgOptions::default());
        run_detectors(bundle, &ftg, &sdg, &DetectorConfig::default())
    }

    fn has(findings: &[Finding], cat: &str) -> bool {
        findings.iter().any(|f| f.category() == cat)
    }

    #[test]
    fn data_reuse_and_disposable() {
        let mut b = TraceBundle::new("wf");
        for t in ["w", "r1", "r2"] {
            b.push_task(TaskKey::new(t));
        }
        b.vfd = vec![
            rec(
                "w",
                "shared.h5",
                "/d",
                IoKind::Write,
                100,
                AccessType::RawData,
                0,
            ),
            rec(
                "r1",
                "shared.h5",
                "/d",
                IoKind::Read,
                100,
                AccessType::RawData,
                10,
            ),
            rec(
                "r2",
                "shared.h5",
                "/d",
                IoKind::Read,
                100,
                AccessType::RawData,
                20,
            ),
            rec(
                "w",
                "single.h5",
                "/d",
                IoKind::Write,
                100,
                AccessType::RawData,
                5,
            ),
            rec(
                "r1",
                "single.h5",
                "/d",
                IoKind::Read,
                100,
                AccessType::RawData,
                30,
            ),
        ];
        let f = detect(&b);
        let reuse = f
            .iter()
            .find_map(|x| match x {
                Finding::DataReuse { file, readers } => Some((file.clone(), readers.len())),
                _ => None,
            })
            .expect("reuse finding");
        assert_eq!(reuse, ("shared.h5".to_owned(), 2));
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::DisposableData { file, .. } if file == "single.h5"
        )));
    }

    #[test]
    fn write_after_read_vs_read_after_write() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("war"));
        b.push_task(TaskKey::new("raw"));
        b.vfd = vec![
            // war: reads at t=0, writes at t=10.
            rec(
                "war",
                "a.h5",
                "/d",
                IoKind::Read,
                10,
                AccessType::RawData,
                0,
            ),
            rec(
                "war",
                "a.h5",
                "/d",
                IoKind::Write,
                10,
                AccessType::RawData,
                10,
            ),
            // raw: writes at t=0, reads at t=10.
            rec(
                "raw",
                "b.h5",
                "/d",
                IoKind::Write,
                10,
                AccessType::RawData,
                0,
            ),
            rec(
                "raw",
                "b.h5",
                "/d",
                IoKind::Read,
                10,
                AccessType::RawData,
                10,
            ),
        ];
        let f = detect(&b);
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::WriteAfterRead { task, file } if task == "war" && file == "a.h5"
        )));
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::ReadAfterWrite { task, file } if task == "raw" && file == "b.h5"
        )));
    }

    #[test]
    fn time_dependent_input() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        b.vfd = vec![
            rec(
                "t",
                "early_in.h5",
                "/d",
                IoKind::Read,
                10,
                AccessType::RawData,
                0,
            ),
            rec(
                "t",
                "out.h5",
                "/d",
                IoKind::Write,
                10,
                AccessType::RawData,
                50,
            ),
            rec(
                "t",
                "late_in.h5",
                "/d",
                IoKind::Read,
                10,
                AccessType::RawData,
                90,
            ),
        ];
        let f = detect(&b);
        let late: Vec<&str> = f
            .iter()
            .filter_map(|x| match x {
                Finding::TimeDependentInput { file, .. } => Some(file.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(late, vec!["late_in.h5"]);
    }

    #[test]
    fn small_scattered_datasets() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        for i in 0..15 {
            b.vfd.push(rec(
                "t",
                "scatter.h5",
                &format!("/small{i}"),
                IoKind::Write,
                100,
                AccessType::RawData,
                i,
            ));
        }
        // One big dataset should not count.
        b.vfd.push(rec(
            "t",
            "scatter.h5",
            "/big",
            IoKind::Write,
            1 << 20,
            AccessType::RawData,
            99,
        ));
        let f = detect(&b);
        let scatter = f
            .iter()
            .find_map(|x| match x {
                Finding::SmallScatteredDatasets {
                    file,
                    dataset_count,
                    mean_bytes,
                } => Some((file.clone(), *dataset_count, *mean_bytes)),
                _ => None,
            })
            .expect("scatter finding");
        assert_eq!(scatter.0, "scatter.h5");
        assert_eq!(scatter.1, 15);
        assert!((scatter.2 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unused_dataset_metadata_only_reader() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("agg"));
        b.push_task(TaskKey::new("train"));
        b.vfd = vec![
            rec(
                "agg",
                "agg.h5",
                "/contact_map",
                IoKind::Write,
                1 << 20,
                AccessType::RawData,
                0,
            ),
            // Training touches only the dataset's metadata (Fig. 7 pop-up).
            rec(
                "train",
                "agg.h5",
                "/contact_map",
                IoKind::Read,
                512,
                AccessType::Metadata,
                10,
            ),
            rec(
                "agg",
                "agg.h5",
                "/rmsd",
                IoKind::Write,
                4096,
                AccessType::RawData,
                1,
            ),
            rec(
                "train",
                "agg.h5",
                "/rmsd",
                IoKind::Read,
                4096,
                AccessType::RawData,
                11,
            ),
        ];
        let f = detect(&b);
        let unused = f
            .iter()
            .find_map(|x| match x {
                Finding::UnusedDataset {
                    dataset,
                    metadata_only_readers,
                    never_read,
                    ..
                } => Some((dataset.clone(), metadata_only_readers.clone(), *never_read)),
                _ => None,
            })
            .expect("unused finding");
        assert_eq!(unused.0, "agg.h5:/contact_map");
        assert_eq!(unused.1, vec!["train"]);
        assert!(!unused.2);
        // rmsd is genuinely read: not flagged.
        assert!(!f.iter().any(|x| matches!(
            x,
            Finding::UnusedDataset { dataset, .. } if dataset.contains("rmsd")
        )));
    }

    #[test]
    fn never_read_dataset() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("w"));
        b.vfd = vec![rec(
            "w",
            "o.h5",
            "/orphan",
            IoKind::Write,
            100,
            AccessType::RawData,
            0,
        )];
        let f = detect(&b);
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::UnusedDataset {
                never_read: true,
                ..
            }
        )));
    }

    #[test]
    fn independent_consecutive_tasks() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("train"));
        b.push_task(TaskKey::new("infer"));
        b.vfd = vec![
            rec(
                "train",
                "model_in.h5",
                "/d",
                IoKind::Read,
                10,
                AccessType::RawData,
                0,
            ),
            rec(
                "infer",
                "sim.h5",
                "/d",
                IoKind::Read,
                10,
                AccessType::RawData,
                5,
            ),
        ];
        let f = detect(&b);
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::IndependentTasks { first, second }
                if first == "train" && second == "infer"
        )));
    }

    #[test]
    fn metadata_heavy_file() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        for i in 0..20 {
            b.vfd.push(rec(
                "t",
                "m.h5",
                "/d",
                IoKind::Read,
                12,
                AccessType::Metadata,
                i,
            ));
        }
        b.vfd.push(rec(
            "t",
            "m.h5",
            "/d",
            IoKind::Read,
            4096,
            AccessType::RawData,
            99,
        ));
        let f = detect(&b);
        let m = f
            .iter()
            .find_map(|x| match x {
                Finding::MetadataHeavyFile {
                    file,
                    metadata_fraction,
                    total_ops,
                } => Some((file.clone(), *metadata_fraction, *total_ops)),
                _ => None,
            })
            .expect("metadata-heavy finding");
        assert_eq!(m.0, "m.h5");
        assert_eq!(m.2, 21);
        assert!(m.1 > 0.9);
    }

    #[test]
    fn layout_findings_from_vol_descriptions() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        b.vol.push(VolRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("d.h5"),
            object: ObjectKey::new("/small_chunked"),
            kind: ObjectKind::Dataset,
            lifetimes: vec![],
            description: ObjectDescription {
                shape: vec![100],
                dtype: Some(DataType::Float { width: 8 }),
                logical_size: 800,
                layout: Some(LayoutKind::Chunked),
                chunk_shape: vec![10],
            },
            accesses: vec![],
        });
        b.vol.push(VolRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("d.h5"),
            object: ObjectKey::new("/vl_contig"),
            kind: ObjectKind::Dataset,
            lifetimes: vec![],
            description: ObjectDescription {
                shape: vec![100],
                dtype: Some(DataType::VarLen),
                logical_size: 6 << 20,
                layout: Some(LayoutKind::Contiguous),
                chunk_shape: vec![],
            },
            accesses: vec![],
        });
        let f = detect(&b);
        assert!(has(&f, "chunked-small-dataset"));
        assert!(has(&f, "contiguous-varlen-dataset"));
    }

    #[test]
    fn random_access_on_large_contiguous_dataset() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("t"));
        // Large contiguous dataset per its VOL description…
        b.vol.push(VolRecord {
            task: TaskKey::new("t"),
            file: FileKey::new("big.h5"),
            object: ObjectKey::new("/grid"),
            kind: ObjectKind::Dataset,
            lifetimes: vec![],
            description: ObjectDescription {
                shape: vec![1 << 21],
                dtype: Some(DataType::Int { width: 1 }),
                logical_size: 2 << 20,
                layout: Some(LayoutKind::Contiguous),
                chunk_shape: vec![],
            },
            accesses: vec![],
        });
        // …hit at scattered offsets.
        for i in 0..20u64 {
            b.vfd.push(VfdRecord {
                task: TaskKey::new("t"),
                file: FileKey::new("big.h5"),
                kind: IoKind::Read,
                offset: (i * 7919 * 131) % (2 << 20),
                len: 512,
                access: AccessType::RawData,
                object: ObjectKey::new("/grid"),
                start: Timestamp(i),
                end: Timestamp(i + 1),
            });
        }
        let f = detect(&b);
        let hit = f.iter().find_map(|x| match x {
            Finding::RandomAccessContiguous {
                dataset,
                sequential_fraction,
                ops,
            } => Some((dataset.clone(), *sequential_fraction, *ops)),
            _ => None,
        });
        let (dataset, frac, ops) = hit.expect("random access flagged");
        assert_eq!(dataset, "big.h5:/grid");
        assert!(frac < 0.3);
        assert_eq!(ops, 20);

        // A sequential reader of the same dataset is NOT flagged.
        let mut b2 = b.clone();
        b2.vfd.clear();
        for i in 0..20u64 {
            b2.vfd.push(VfdRecord {
                task: TaskKey::new("t"),
                file: FileKey::new("big.h5"),
                kind: IoKind::Read,
                offset: i * 512,
                len: 512,
                access: AccessType::RawData,
                object: ObjectKey::new("/grid"),
                start: Timestamp(i),
                end: Timestamp(i + 1),
            });
        }
        assert!(!detect(&b2)
            .iter()
            .any(|x| x.category() == "random-access-contiguous"));
    }

    #[test]
    fn coschedulable_chain() {
        let mut b = TraceBundle::new("wf");
        for t in ["s3", "s4", "s5"] {
            b.push_task(TaskKey::new(t));
        }
        b.vfd = vec![
            rec(
                "s3",
                "tracks.h5",
                "/d",
                IoKind::Write,
                100,
                AccessType::RawData,
                0,
            ),
            rec(
                "s4",
                "tracks.h5",
                "/d",
                IoKind::Read,
                100,
                AccessType::RawData,
                10,
            ),
            rec(
                "s4",
                "stats.h5",
                "/d",
                IoKind::Write,
                100,
                AccessType::RawData,
                20,
            ),
            rec(
                "s5",
                "stats.h5",
                "/d",
                IoKind::Read,
                100,
                AccessType::RawData,
                30,
            ),
        ];
        let f = detect(&b);
        let pairs: Vec<(String, String)> = f
            .iter()
            .filter_map(|x| match x {
                Finding::CoSchedulable {
                    producer, consumer, ..
                } => Some((producer.clone(), consumer.clone())),
                _ => None,
            })
            .collect();
        assert!(pairs.contains(&("s3".into(), "s4".into())));
        assert!(pairs.contains(&("s4".into(), "s5".into())));
    }

    #[test]
    fn degraded_tasks_are_reported_first() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("lost"));
        b.vfd = vec![rec(
            "lost",
            "part.h5",
            "/d",
            IoKind::Write,
            64,
            AccessType::RawData,
            0,
        )];
        b.mark_degraded(TaskKey::new("lost"));
        let f = detect(&b);
        assert!(matches!(
            &f[0],
            Finding::DegradedTrace { task } if task == "lost"
        ));
        assert!(has(&f, "degraded-trace"));
        // An intact bundle never produces the finding.
        assert!(!has(&detect(&TraceBundle::new("clean")), "degraded-trace"));
    }

    #[test]
    fn recovered_tasks_are_reported() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("phoenix"));
        b.vfd = vec![rec(
            "phoenix",
            "out.h5",
            "/d",
            IoKind::Write,
            64,
            AccessType::RawData,
            0,
        )];
        b.mark_recovered(TaskKey::new("phoenix"));
        let f = detect(&b);
        assert!(f.iter().any(|x| matches!(
            x,
            Finding::RecoveredTask { task } if task == "phoenix"
        )));
        // Recovered is not degraded: the trace is the complete retry.
        assert!(!has(&f, "degraded-trace"));
        assert!(!has(&detect(&TraceBundle::new("clean")), "recovered-task"));
    }

    #[test]
    fn clean_bundle_produces_no_spurious_findings() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("solo"));
        b.vfd = vec![
            rec(
                "solo",
                "big.h5",
                "/d",
                IoKind::Write,
                8 << 20,
                AccessType::RawData,
                0,
            ),
            rec(
                "solo",
                "big.h5",
                "/d",
                IoKind::Read,
                8 << 20,
                AccessType::RawData,
                10,
            ),
        ];
        let f = detect(&b);
        assert!(!has(&f, "small-scattered-datasets"));
        assert!(!has(&f, "metadata-heavy-file"));
        assert!(!has(&f, "data-reuse"));
        assert!(!has(&f, "independent-tasks"));
    }

    #[test]
    fn end_to_end_with_real_mapper_traces() {
        use dayu_hdf::{DataType as DT, DatasetBuilder, H5File};
        use dayu_mapper::Mapper;
        use dayu_vfd::MemFs;

        let fs = MemFs::new();
        let mapper = Mapper::new("mini");
        mapper.set_task("producer");
        {
            let f = H5File::create(
                mapper.wrap_vfd(fs.create("x.h5"), "x.h5"),
                "x.h5",
                mapper.file_options(),
            )
            .unwrap();
            let mut ds = f
                .root()
                .create_dataset("d", DatasetBuilder::new(DT::Int { width: 8 }, &[64]))
                .unwrap();
            ds.write_u64s(&[7; 64]).unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        for consumer in ["c1", "c2"] {
            mapper.set_task(consumer);
            let f = H5File::open(
                mapper.wrap_vfd(fs.open("x.h5"), "x.h5"),
                "x.h5",
                mapper.file_options(),
            )
            .unwrap();
            let mut ds = f.root().open_dataset("d").unwrap();
            ds.read_u64s().unwrap();
            ds.close().unwrap();
            f.close().unwrap();
        }
        let bundle = mapper.into_bundle();
        let f = detect(&bundle);
        assert!(
            f.iter().any(|x| matches!(
                x,
                Finding::DataReuse { file, readers } if file == "x.h5" && readers.len() == 2
            )),
            "real traces show the reuse: {f:?}"
        );
    }
}
