//! # dayu-analyzer
//!
//! The Workflow Analyzer (Section V of the paper): connects data-to-task
//! into workflow graphs and decorates them with data semantics and I/O
//! statistics.
//!
//! * [`build::build_ftg`] — **File-Task Graphs**: the complete overview of
//!   task/file dependencies, I/O operations and time-ordered access.
//! * [`build::build_sdg`] — **Semantic Dataflow Graphs**: a dataset layer
//!   between tasks and files, optionally enriched with file-address region
//!   nodes showing where each dataset's content lands (Fig. 3, Fig. 8).
//! * [`detect`] — bottleneck detectors reproducing the paper's Section VI
//!   observations (data reuse, scattered small datasets, unused datasets,
//!   metadata overhead, layout mismatches, co-schedulable chains…).
//! * [`resolution`] — graph aggregation by task/time/space dimensions for
//!   complex workflows.
//! * [`export`] — DOT, JSON, and self-contained interactive HTML with the
//!   Fig.-7-style statistics pop-ups.
//!
//! The complete pipeline in one call: [`Analysis::run`].

pub mod build;
pub mod detect;
pub mod diff;
pub mod export;
pub mod graph;
pub mod partial;
pub mod resolution;

pub use build::{build_ftg, build_ftg_with, build_sdg, build_sdg_with, SdgOptions};
pub use detect::{run_detectors, DetectorConfig, Finding};
pub use diff::{
    diff_traces, divergence_findings, BundleDiff, CausalAncestors, DiffEvent, FirstDivergence,
};
pub use graph::{Edge, EdgeStats, Graph, GraphKind, Node, NodeKind, Operation};
pub use partial::PartialGraph;

use dayu_trace::store::TraceBundle;

/// One-shot analysis of a trace bundle: both graphs plus all findings.
pub struct Analysis {
    /// The File-Task Graph.
    pub ftg: Graph,
    /// The Semantic Dataflow Graph.
    pub sdg: Graph,
    /// Detector findings.
    pub findings: Vec<Finding>,
}

impl Analysis {
    /// Builds the FTG and SDG and runs every detector with default
    /// thresholds.
    pub fn run(bundle: &TraceBundle) -> Analysis {
        Self::run_with(bundle, &SdgOptions::default(), &DetectorConfig::default())
    }

    /// Builds graphs and runs detectors with explicit options.
    pub fn run_with(
        bundle: &TraceBundle,
        sdg_opts: &SdgOptions,
        det_cfg: &DetectorConfig,
    ) -> Analysis {
        let ftg = build_ftg(bundle);
        let sdg = build_sdg(bundle, sdg_opts);
        let findings = run_detectors(bundle, &ftg, &sdg, det_cfg);
        Analysis { ftg, sdg, findings }
    }

    /// Findings of a category.
    pub fn findings_of<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a Finding> + 'a {
        self.findings
            .iter()
            .filter(move |f| f.category() == category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::time::Timestamp;
    use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};

    #[test]
    fn one_shot_analysis() {
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("w"));
        b.push_task(TaskKey::new("r1"));
        b.push_task(TaskKey::new("r2"));
        let mk = |task: &str, kind, at| VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new("f.h5"),
            kind,
            offset: 0,
            len: 100,
            access: AccessType::RawData,
            object: ObjectKey::new("/d"),
            start: Timestamp(at),
            end: Timestamp(at + 1),
        };
        b.vfd = vec![
            mk("w", IoKind::Write, 0),
            mk("r1", IoKind::Read, 10),
            mk("r2", IoKind::Read, 20),
        ];
        let a = Analysis::run(&b);
        assert_eq!(a.ftg.kind, GraphKind::Ftg);
        assert_eq!(a.sdg.kind, GraphKind::Sdg);
        assert_eq!(a.findings_of("data-reuse").count(), 1);
        assert_eq!(a.findings_of("nonexistent").count(), 0);
    }
}
