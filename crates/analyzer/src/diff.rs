//! Cross-run divergence diffing.
//!
//! Two recordings of the same workload under the same seeds should produce
//! identical operation streams; when they do not, the *first* divergent
//! event is the root symptom and everything after it is fallout. This
//! module finds that event by element-wise comparison of the per-task VFD
//! streams (timestamps excluded — wall-clock jitter is not a divergence),
//! then walks the reference run's Semantic Dataflow Graph backward from
//! the divergent task to name the causal ancestor set: the upstream
//! tasks, datasets and files whose state could have steered the task off
//! the recorded path. The result surfaces as
//! [`Finding::ReplayDivergence`], which the advisor maps to an
//! investigate-divergence action.

use crate::build::{build_sdg, SdgOptions};
use crate::detect::Finding;
use crate::graph::{Graph, NodeKind, Operation};
use dayu_trace::store::TraceBundle;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt;

/// One operation in a diffable form: everything a [`VfdRecord`] carries
/// except its timestamps.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffEvent {
    /// File the operation targeted.
    pub file: String,
    /// Operation kind.
    pub kind: IoKind,
    /// Byte offset.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
    /// Raw data vs metadata.
    pub access: AccessType,
    /// Dataset / object path the op was attributed to.
    pub object: String,
}

impl DiffEvent {
    fn of(r: &VfdRecord) -> Self {
        Self {
            file: r.file.as_str().to_owned(),
            kind: r.kind,
            offset: r.offset,
            len: r.len,
            access: r.access,
            object: r.object.as_str().to_owned(),
        }
    }
}

impl fmt::Display for DiffEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} [{}, {}) ({:?})",
            self.kind,
            self.file,
            self.object,
            self.offset,
            self.offset + self.len,
            self.access
        )
    }
}

/// The upstream state that could have steered a task off the recorded
/// path: everything reachable backward through the reference run's SDG.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CausalAncestors {
    /// Upstream tasks (producers of the task's inputs, transitively).
    pub tasks: Vec<String>,
    /// Datasets on the backward path (`file:path` labels).
    pub datasets: Vec<String>,
    /// Files containing those datasets.
    pub files: Vec<String>,
}

impl CausalAncestors {
    /// Whether the walk found nothing upstream (a source task diverged).
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty() && self.datasets.is_empty() && self.files.is_empty()
    }
}

/// The first point where two recordings disagree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirstDivergence {
    /// Task whose stream diverges first (in run A's task order).
    pub task: String,
    /// Index of the divergent event within that task's stream.
    pub event_index: usize,
    /// Run A's event at that index (`None`: A's stream ended early).
    pub a: Option<DiffEvent>,
    /// Run B's event at that index (`None`: B's stream ended early).
    pub b: Option<DiffEvent>,
    /// Human-readable account of the disagreement.
    pub detail: String,
    /// Backward SDG walk from the divergent task over run A.
    pub ancestors: CausalAncestors,
}

/// The complete comparison of two recordings.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BundleDiff {
    /// Workload named by run A.
    pub workload_a: String,
    /// Workload named by run B.
    pub workload_b: String,
    /// First divergent event, if the runs disagree anywhere.
    pub first: Option<FirstDivergence>,
    /// Every task whose stream differs (first-divergent task included).
    pub diverged_tasks: Vec<String>,
    /// Tasks recorded only by run A.
    pub only_in_a: Vec<String>,
    /// Tasks recorded only by run B.
    pub only_in_b: Vec<String>,
}

impl BundleDiff {
    /// Whether the two runs are operationally identical.
    pub fn is_empty(&self) -> bool {
        self.first.is_none()
            && self.diverged_tasks.is_empty()
            && self.only_in_a.is_empty()
            && self.only_in_b.is_empty()
    }

    /// The finding this diff surfaces, if any — feed it to the advisor.
    pub fn finding(&self) -> Option<Finding> {
        let first = self.first.as_ref()?;
        Some(Finding::ReplayDivergence {
            task: first.task.clone(),
            event_index: first.event_index,
            expected: first
                .a
                .as_ref()
                .map_or_else(|| "<end of stream>".to_owned(), |e| e.to_string()),
            actual: first
                .b
                .as_ref()
                .map_or_else(|| "<end of stream>".to_owned(), |e| e.to_string()),
            ancestor_tasks: first.ancestors.tasks.clone(),
            ancestor_datasets: first.ancestors.datasets.clone(),
        })
    }
}

/// Diffs two recordings of (nominally) the same workload. Run A is the
/// reference: task order and the causal SDG walk come from it.
pub fn diff_traces(a: &TraceBundle, b: &TraceBundle) -> BundleDiff {
    let streams_a = per_task(a);
    let streams_b = per_task(b);

    // Run A's task order first, then any tasks B alone recorded.
    let mut order: Vec<String> = a
        .meta
        .task_order
        .iter()
        .map(|t| t.as_str().to_owned())
        .collect();
    for t in streams_a.keys() {
        if !order.iter().any(|o| o == t) {
            order.push(t.clone());
        }
    }
    for t in b
        .meta
        .task_order
        .iter()
        .map(|t| t.as_str().to_owned())
        .chain(streams_b.keys().cloned())
    {
        if !order.iter().any(|o| o == &t) {
            order.push(t);
        }
    }

    let empty: Vec<DiffEvent> = Vec::new();
    let mut diff = BundleDiff {
        workload_a: a.meta.workflow.clone(),
        workload_b: b.meta.workflow.clone(),
        ..BundleDiff::default()
    };
    for task in &order {
        let sa = streams_a.get(task);
        let sb = streams_b.get(task);
        match (sa, sb) {
            (Some(_), None) => diff.only_in_a.push(task.clone()),
            (None, Some(_)) => diff.only_in_b.push(task.clone()),
            (None, None) => continue,
            _ => {}
        }
        let sa = sa.unwrap_or(&empty);
        let sb = sb.unwrap_or(&empty);
        if let Some((index, ea, eb)) = first_mismatch(sa, sb) {
            diff.diverged_tasks.push(task.clone());
            if diff.first.is_none() {
                let detail = describe(task, index, ea, eb);
                diff.first = Some(FirstDivergence {
                    task: task.clone(),
                    event_index: index,
                    a: ea.cloned(),
                    b: eb.cloned(),
                    detail,
                    ancestors: causal_ancestors(a, task),
                });
            }
        }
    }
    diff
}

/// Splits a trace into per-task event streams, preserving record order.
fn per_task(bundle: &TraceBundle) -> BTreeMap<String, Vec<DiffEvent>> {
    let mut out: BTreeMap<String, Vec<DiffEvent>> = BTreeMap::new();
    for t in &bundle.meta.task_order {
        out.entry(t.as_str().to_owned()).or_default();
    }
    for r in &bundle.vfd {
        out.entry(r.task.as_str().to_owned())
            .or_default()
            .push(DiffEvent::of(r));
    }
    out
}

/// First index where the streams disagree, with both sides' events.
fn first_mismatch<'a>(
    a: &'a [DiffEvent],
    b: &'a [DiffEvent],
) -> Option<(usize, Option<&'a DiffEvent>, Option<&'a DiffEvent>)> {
    let n = a.len().max(b.len());
    (0..n).find_map(|i| match (a.get(i), b.get(i)) {
        (Some(x), Some(y)) if x == y => None,
        (x, y) => Some((i, x, y)),
    })
}

fn describe(task: &str, index: usize, a: Option<&DiffEvent>, b: Option<&DiffEvent>) -> String {
    match (a, b) {
        (Some(x), Some(y)) => {
            format!("task \"{task}\" event {index}: run A performed {x}, run B performed {y}")
        }
        (Some(x), None) => {
            format!("task \"{task}\" event {index}: run B's stream ended; run A continues with {x}")
        }
        (None, Some(y)) => {
            format!("task \"{task}\" event {index}: run A's stream ended; run B continues with {y}")
        }
        (None, None) => unreachable!("no mismatch without at least one event"),
    }
}

/// Walks the reference run's SDG backward from `task`, collecting every
/// upstream task, dataset, and file whose state feeds into it. Structural
/// dataset→file edges are followed to attribute containment; region
/// nodes are skipped (their datasets already appear on the path).
fn causal_ancestors(reference: &TraceBundle, task: &str) -> CausalAncestors {
    let sdg = build_sdg(reference, &SdgOptions::default());
    let Some(start) = sdg.find(NodeKind::Task, task) else {
        return CausalAncestors::default();
    };
    let mut seen: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    seen.insert(start.id);
    queue.push_back(start.id);
    let mut out = CausalAncestors::default();
    while let Some(id) = queue.pop_front() {
        for e in sdg.in_edges(id) {
            // Backward over dataflow edges only: writer→dataset and
            // dataset→reader. Structural edges point dataset→file, so
            // files are collected forward from datasets below.
            if e.op == Operation::Structural {
                continue;
            }
            if seen.insert(e.from) {
                queue.push_back(e.from);
                visit(&sdg, e.from, &mut out, &mut seen);
            }
        }
    }
    out.tasks.retain(|t| t != task);
    out
}

/// Records one ancestor node, resolving a dataset's containing file.
fn visit(sdg: &Graph, id: usize, out: &mut CausalAncestors, seen: &mut HashSet<usize>) {
    let n = &sdg.nodes[id];
    match n.kind {
        NodeKind::Task => out.tasks.push(n.label.clone()),
        NodeKind::Dataset => {
            out.datasets.push(n.label.clone());
            for e in sdg.out_edges(id) {
                let to = &sdg.nodes[e.to];
                if e.op == Operation::Structural
                    && to.kind == NodeKind::File
                    && seen.insert(to.id)
                    && !out.files.contains(&to.label)
                {
                    out.files.push(to.label.clone());
                }
            }
        }
        NodeKind::File => {
            if !out.files.contains(&n.label) {
                out.files.push(n.label.clone());
            }
        }
        NodeKind::AddrRegion => {}
    }
}

/// Convenience for callers holding raw traces: diffs and converts to
/// findings in one step (empty when the runs agree).
pub fn divergence_findings(a: &TraceBundle, b: &TraceBundle) -> Vec<Finding> {
    diff_traces(a, b).finding().into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::dataset_label;
    use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
    use dayu_trace::time::Timestamp;

    fn rec(task: &str, file: &str, kind: IoKind, offset: u64, len: u64, at: u64) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            kind,
            offset,
            len,
            access: AccessType::RawData,
            object: ObjectKey::new("/d"),
            start: Timestamp(at),
            end: Timestamp(at + 1),
        }
    }

    fn chain() -> TraceBundle {
        // producer writes shared.h5, consumer reads it and writes out.h5,
        // sink reads out.h5 — a three-task causal chain.
        let mut b = TraceBundle::new("wf");
        b.push_task(TaskKey::new("producer"));
        b.push_task(TaskKey::new("consumer"));
        b.push_task(TaskKey::new("sink"));
        b.vfd = vec![
            rec("producer", "shared.h5", IoKind::Write, 0, 100, 0),
            rec("consumer", "shared.h5", IoKind::Read, 0, 100, 10),
            rec("consumer", "out.h5", IoKind::Write, 0, 50, 11),
            rec("sink", "out.h5", IoKind::Read, 0, 50, 20),
        ];
        b
    }

    #[test]
    fn identical_traces_diff_empty() {
        let a = chain();
        let d = diff_traces(&a, &a);
        assert!(d.is_empty(), "{d:?}");
        assert!(d.finding().is_none());
    }

    #[test]
    fn timestamps_are_not_divergences() {
        let a = chain();
        let mut b = chain();
        for r in &mut b.vfd {
            r.start = Timestamp(r.start.0 + 1000);
            r.end = Timestamp(r.end.0 + 1000);
        }
        assert!(diff_traces(&a, &b).is_empty());
    }

    #[test]
    fn first_divergence_is_earliest_in_task_order() {
        let a = chain();
        let mut b = chain();
        // Perturb both the consumer's write and the sink's read; the
        // consumer comes first in task order.
        b.vfd[2].len = 60;
        b.vfd[3].offset = 8;
        let d = diff_traces(&a, &b);
        let first = d.first.expect("must diverge");
        assert_eq!(first.task, "consumer");
        assert_eq!(first.event_index, 1, "consumer's second event differs");
        assert_eq!(first.a.as_ref().unwrap().len, 50);
        assert_eq!(first.b.as_ref().unwrap().len, 60);
        assert!(first.detail.contains("consumer"));
        assert_eq!(d.diverged_tasks, vec!["consumer", "sink"]);
    }

    #[test]
    fn causal_ancestors_walk_the_sdg_backward() {
        let a = chain();
        let mut b = chain();
        b.vfd[3].len = 1; // sink diverges
        let d = diff_traces(&a, &b);
        let first = d.first.unwrap();
        assert_eq!(first.task, "sink");
        // sink ← out.h5:/d ← consumer ← shared.h5:/d ← producer
        assert_eq!(first.ancestors.tasks, vec!["consumer", "producer"]);
        assert!(first
            .ancestors
            .datasets
            .contains(&dataset_label("out.h5", "/d")));
        assert!(first
            .ancestors
            .datasets
            .contains(&dataset_label("shared.h5", "/d")));
        assert!(first.ancestors.files.contains(&"out.h5".to_owned()));
        assert!(first.ancestors.files.contains(&"shared.h5".to_owned()));
    }

    #[test]
    fn source_task_divergence_has_no_ancestors() {
        let a = chain();
        let mut b = chain();
        b.vfd[0].offset = 4096;
        let d = diff_traces(&a, &b);
        let first = d.first.unwrap();
        assert_eq!(first.task, "producer");
        assert!(first.ancestors.is_empty(), "{:?}", first.ancestors);
    }

    #[test]
    fn stream_length_mismatch_reports_end_of_stream() {
        let a = chain();
        let mut b = chain();
        b.vfd.truncate(3); // sink never ran its read
        let d = diff_traces(&a, &b);
        let first = d.first.as_ref().unwrap();
        assert_eq!(first.task, "sink");
        assert_eq!(first.event_index, 0);
        assert!(first.a.is_some());
        assert!(first.b.is_none());
        assert!(first.detail.contains("ended"));
        let f = d.finding().unwrap();
        match &f {
            Finding::ReplayDivergence { actual, .. } => {
                assert_eq!(actual, "<end of stream>");
            }
            other => panic!("unexpected finding {other:?}"),
        }
    }

    #[test]
    fn task_missing_from_one_run_is_reported() {
        let a = chain();
        let mut b = chain();
        b.meta.task_order.retain(|t| t.as_str() != "sink");
        b.vfd.retain(|r| r.task.as_str() != "sink");
        let d = diff_traces(&a, &b);
        assert_eq!(d.only_in_a, vec!["sink"]);
        assert!(d.only_in_b.is_empty());
        // The stream comparison still flags it: A has events, B has none.
        assert!(d.diverged_tasks.contains(&"sink".to_owned()));
    }

    #[test]
    fn finding_names_task_and_ancestors() {
        let a = chain();
        let mut b = chain();
        b.vfd[3].len = 7;
        let f = divergence_findings(&a, &b);
        assert_eq!(f.len(), 1);
        match &f[0] {
            Finding::ReplayDivergence {
                task,
                event_index,
                ancestor_tasks,
                ..
            } => {
                assert_eq!(task, "sink");
                assert_eq!(*event_index, 0);
                assert_eq!(ancestor_tasks, &["consumer", "producer"]);
            }
            other => panic!("unexpected finding {other:?}"),
        }
        assert_eq!(f[0].category(), "replay-divergence");
    }
}
