//! Property tests for the incremental [`PartialGraph`]: absorbing a trace's
//! per-task sections in *any* permutation, with *any* amount of duplication,
//! must yield graphs identical to the one-shot batch `analyzer::build` —
//! node for node, edge for edge, id for id.

use dayu_analyzer::build::{build_ftg_with, build_sdg_with};
use dayu_analyzer::{Graph, PartialGraph, SdgOptions};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::{Interval, Timestamp};
use dayu_trace::vfd::{AccessType, FileRecord, IoKind, VfdRecord};
use dayu_trace::vol::{ObjectDescription, ObjectKind, VolAccess, VolAccessKind, VolRecord};
use dayu_trace::{sha256, TraceBundle};
use proptest::prelude::*;

const TASKS: [&str; 4] = ["prep", "sim", "reduce", "plot"];
const FILES: [&str; 3] = ["a.h5", "b.h5", "c.h5"];

fn arb_vfd() -> impl Strategy<Value = VfdRecord> {
    (
        0usize..TASKS.len(),
        0usize..FILES.len(),
        0u64..1 << 24,
        1u64..1 << 16,
        prop::bool::ANY,
        prop::bool::ANY,
        0u64..1 << 30,
    )
        .prop_map(|(task, file, offset, len, write, meta, t)| VfdRecord {
            task: TaskKey::new(TASKS[task]),
            file: FileKey::new(FILES[file]),
            kind: if write { IoKind::Write } else { IoKind::Read },
            offset,
            len,
            access: if meta {
                AccessType::Metadata
            } else {
                AccessType::RawData
            },
            object: ObjectKey::new("/d"),
            start: Timestamp(t),
            end: Timestamp(t + 10),
        })
}

fn arb_vol() -> impl Strategy<Value = VolRecord> {
    (
        0usize..TASKS.len(),
        0usize..FILES.len(),
        "/[a-z]{1,8}",
        0u64..1 << 20,
    )
        .prop_map(|(task, file, object, bytes)| VolRecord {
            task: TaskKey::new(TASKS[task]),
            file: FileKey::new(FILES[file]),
            object: ObjectKey::new(object),
            kind: ObjectKind::Dataset,
            lifetimes: vec![Interval::new(Timestamp(1), Timestamp(50))],
            description: ObjectDescription::default(),
            accesses: vec![VolAccess {
                kind: VolAccessKind::Write,
                count: 1,
                bytes,
                sel_offset: vec![],
                sel_count: vec![],
                at: Timestamp(5),
            }],
        })
}

fn arb_file() -> impl Strategy<Value = FileRecord> {
    (0usize..TASKS.len(), 0usize..FILES.len()).prop_map(|(task, file)| FileRecord {
        task: TaskKey::new(TASKS[task]),
        file: FileKey::new(FILES[file]),
        lifetimes: vec![Interval::new(Timestamp(0), Timestamp(99))],
        stats: Default::default(),
    })
}

/// Task-order-complete bundles: every task that may carry records is pushed
/// into `task_order`, which is the shape the streaming collector produces
/// and the condition under which incremental == batch holds exactly.
fn arb_bundle() -> impl Strategy<Value = TraceBundle> {
    (
        prop::collection::vec(arb_vfd(), 0..24),
        prop::collection::vec(arb_vol(), 0..10),
        prop::collection::vec(arb_file(), 0..6),
    )
        .prop_map(|(vfd, vol, files)| {
            let mut b = TraceBundle::new("prop-partial");
            for t in TASKS {
                b.push_task(TaskKey::new(t));
            }
            b.vfd = vfd;
            b.vol = vol;
            b.files = files;
            b
        })
}

fn assert_identical(a: &Graph, b: &Graph) {
    // Plain asserts: proptest reports panics as failures with the minimal
    // counterexample, same as prop_assert!.
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.workflow, b.workflow);
    assert_eq!(a.nodes, b.nodes);
    assert_eq!(a.edges, b.edges);
}

fn region_opts() -> SdgOptions {
    SdgOptions {
        include_regions: true,
        region_count: 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any permutation of the per-task sections reproduces the batch build.
    #[test]
    fn any_absorb_order_matches_batch(b in arb_bundle(), perm_seed in 0u64..u64::MAX) {
        let mut sections = b.split_per_task();
        // Deterministic Fisher–Yates driven by the seed.
        let mut s = perm_seed | 1;
        for i in (1..sections.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            sections.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut pg = PartialGraph::new();
        for sec in &sections {
            pg.absorb(sec);
        }
        assert_identical(&pg.snapshot_ftg(), &build_ftg_with(&b, false));
        for opts in [SdgOptions::default(), region_opts()] {
            assert_identical(&pg.snapshot_sdg(&opts), &build_sdg_with(&b, &opts, false));
        }
    }

    /// Duplicated sections are dropped by digest and change nothing; taking
    /// interim snapshots along the way never perturbs the final result.
    #[test]
    fn duplication_and_interim_snapshots_are_harmless(
        b in arb_bundle(),
        dup in prop::collection::vec(0usize..16, 0..6),
    ) {
        let sections = b.split_per_task();
        let mut pg = PartialGraph::new();
        for (i, sec) in sections.iter().enumerate() {
            let digest = sha256(&sec.to_binary_bytes());
            prop_assert!(pg.absorb_unique(digest, sec));
            if dup.contains(&i) {
                prop_assert!(!pg.absorb_unique(digest, sec));
                let _ = pg.snapshot_ftg();
                let _ = pg.snapshot_sdg(&region_opts());
            }
        }
        assert_identical(&pg.snapshot_ftg(), &build_ftg_with(&b, false));
        assert_identical(
            &pg.snapshot_sdg(&region_opts()),
            &build_sdg_with(&b, &region_opts(), false),
        );
    }

    /// Splitting the section stream across two partial graphs and merging
    /// them equals absorbing everything into one.
    #[test]
    fn merged_partials_match_batch(b in arb_bundle(), mask in 0u32..u32::MAX) {
        let sections = b.split_per_task();
        let mut left = PartialGraph::new();
        let mut right = PartialGraph::new();
        for (i, sec) in sections.iter().enumerate() {
            if mask >> (i % 32) & 1 == 0 { &mut left } else { &mut right }.absorb(sec);
        }
        left.merge(right);
        assert_identical(&left.snapshot_ftg(), &build_ftg_with(&b, false));
        assert_identical(
            &left.snapshot_sdg(&SdgOptions::default()),
            &build_sdg_with(&b, &SdgOptions::default(), false),
        );
    }
}
