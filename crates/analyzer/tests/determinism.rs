//! Parallel graph construction must be *bit-identical* to the sequential
//! build, whatever rayon pool it runs on: the partials merge sequentially
//! in task order, so thread scheduling can never leak into node ids, edge
//! order, or statistics. This is what makes the parallel path safe to
//! enable by default above the record threshold.

use dayu_analyzer::{build_ftg_with, build_sdg_with, SdgOptions};
use dayu_trace::ids::{FileKey, ObjectKey, TaskKey};
use dayu_trace::time::Timestamp;
use dayu_trace::vfd::{AccessType, IoKind, VfdRecord};
use dayu_trace::TraceBundle;

/// A deliberately messy synthetic workload: many tasks, shared files,
/// interleaved reads/writes, metadata ops, a straggler task missing from
/// `task_order`, and a degraded task.
fn synthetic_bundle(tasks: u64, ops_per_task: u64) -> TraceBundle {
    let mut b = TraceBundle::new("determinism");
    for t in 0..tasks {
        b.push_task(TaskKey::new(format!("task_{t}")));
    }
    b.mark_degraded(TaskKey::new("task_0"));
    let mut clock = 0u64;
    for t in 0..tasks {
        let task = TaskKey::new(format!("task_{t}"));
        for op in 0..ops_per_task {
            clock += 7;
            // Files are shared across neighbouring tasks so partials
            // genuinely overlap at merge time.
            let file = FileKey::new(format!("file_{}.h5", (t + op) % 5));
            let object = ObjectKey::new(format!("/group/ds_{}", op % 3));
            b.vfd.push(VfdRecord {
                task: task.clone(),
                file,
                kind: if op % 3 == 0 {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                offset: (op % 16) * 4096,
                len: 512 + op,
                access: if op % 5 == 0 {
                    AccessType::Metadata
                } else {
                    AccessType::RawData
                },
                object,
                start: Timestamp(clock),
                end: Timestamp(clock + 3),
            });
        }
    }
    // Straggler task referenced only by records.
    b.vfd.push(VfdRecord {
        task: TaskKey::new("straggler"),
        file: FileKey::new("file_0.h5"),
        kind: IoKind::Read,
        offset: 0,
        len: 64,
        access: AccessType::RawData,
        object: ObjectKey::new("/group/ds_0"),
        start: Timestamp(clock + 10),
        end: Timestamp(clock + 12),
    });
    b
}

#[test]
fn parallel_build_is_bit_identical_across_thread_counts() {
    let bundle = synthetic_bundle(8, 40);
    let opts = SdgOptions {
        include_regions: true,
        region_count: 4,
    };

    let ftg_serial = serde_json::to_vec(&build_ftg_with(&bundle, false)).unwrap();
    let sdg_serial = serde_json::to_vec(&build_sdg_with(&bundle, &opts, false)).unwrap();

    for threads in [1usize, 2, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (ftg, sdg) = pool.install(|| {
            (
                serde_json::to_vec(&build_ftg_with(&bundle, true)).unwrap(),
                serde_json::to_vec(&build_sdg_with(&bundle, &opts, true)).unwrap(),
            )
        });
        assert_eq!(ftg, ftg_serial, "FTG diverged on {threads} thread(s)");
        assert_eq!(sdg, sdg_serial, "SDG diverged on {threads} thread(s)");
    }
}

#[test]
fn repeated_parallel_builds_are_stable() {
    // Same-pool repetition: scheduling differences between runs must not
    // show either.
    let bundle = synthetic_bundle(4, 25);
    let first = serde_json::to_vec(&build_ftg_with(&bundle, true)).unwrap();
    for _ in 0..5 {
        let again = serde_json::to_vec(&build_ftg_with(&bundle, true)).unwrap();
        assert_eq!(again, first);
    }
}
