//! Pass 1 — the static dataflow-hazard analyzer.
//!
//! DaYu decodes *who* produces and consumes each dataset and *in what
//! order*; this pass checks that a plan's dependency structure actually
//! guarantees that order before anything runs. It works on two inputs:
//!
//! * **Plans** — `SimTask` sets (replayed traces, possibly rewritten by
//!   `transform::*`) or `WorkflowSpec`s with declared access sets. Hazards
//!   are judged against the happens-before relation induced by task
//!   dependencies: two accesses conflict when neither task is an ancestor
//!   of the other.
//! * **Trace bundles** — recorded runs, judged against observed timestamps
//!   (a bundle has no dependency edges, only what actually happened).
//!
//! The detected hazards: write-write races between concurrently
//! schedulable tasks, reads with no ordered producer (read-before-write),
//! reads of disposable data after its stage-out task, and references to
//! files nothing produces.

use crate::model::{Finding, Report};
use dayu_sim::program::{IoDir, SimOp, SimTask};
use dayu_trace::store::TraceBundle;
use dayu_trace::vfd::IoKind;
use dayu_workflow::WorkflowSpec;
use std::collections::{BTreeMap, BTreeSet};

/// Direction of a declared or extracted dataset access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Access {
    /// The task reads the file.
    Read,
    /// The task writes the file's data.
    Write,
}

/// A task as the analyzer sees it: a name, dependency edges, and an
/// ordered file-access list.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanTask {
    /// Task name.
    pub name: String,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
    /// File accesses in program order.
    pub accesses: Vec<(String, Access)>,
}

/// Declared access sets for one task of a `WorkflowSpec` (specs carry
/// opaque I/O closures, so accesses must be declared to lint them).
#[derive(Clone, Debug, Default)]
pub struct AccessDecl {
    /// Files the task reads.
    pub reads: Vec<String>,
    /// Files the task writes.
    pub writes: Vec<String>,
}

/// Analyzer configuration.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Files that exist before the plan starts (inputs produced outside
    /// it). `None` disables the dangling-file check entirely: any file
    /// without an in-plan producer is assumed external. `Some(set)` makes
    /// reads of producer-less files outside the set a
    /// [`Finding::DanglingFileRef`].
    pub external_inputs: Option<BTreeSet<String>>,
}

impl LintConfig {
    /// A config declaring the complete set of pre-existing input files.
    pub fn with_external_inputs(files: impl IntoIterator<Item = String>) -> Self {
        Self {
            external_inputs: Some(files.into_iter().collect()),
        }
    }
}

/// Extracts the analyzer's view of a replay job. Writes count only when
/// they move data (metadata-only writes — superblock updates by readers,
/// say — are structural, not production), matching `producers_of` in the
/// workflow crate; reads count regardless of access type.
pub fn plan_from_sim_tasks(tasks: &[SimTask]) -> Vec<PlanTask> {
    tasks
        .iter()
        .map(|t| PlanTask {
            name: t.name.clone(),
            deps: t.deps.clone(),
            accesses: t
                .program
                .iter()
                .filter_map(|op| match op {
                    SimOp::Io {
                        file,
                        dir: IoDir::Read,
                        ..
                    } => Some((file.clone(), Access::Read)),
                    SimOp::Io {
                        file,
                        dir: IoDir::Write,
                        metadata: false,
                        ..
                    } => Some((file.clone(), Access::Write)),
                    _ => None,
                })
                .collect(),
        })
        .collect()
}

/// Builds the analyzer's view of a staged spec from declared access sets
/// (`decls` maps task name → declaration; undeclared tasks lint as doing
/// no I/O). Dependencies are the spec's stage barriers: every task of
/// stage *i* depends on every task of stage *i-1*.
pub fn plan_from_spec(spec: &WorkflowSpec, decls: &BTreeMap<String, AccessDecl>) -> Vec<PlanTask> {
    let mut plan = Vec::with_capacity(spec.task_count());
    let mut prev_stage: Vec<usize> = Vec::new();
    for stage in &spec.stages {
        let start = plan.len();
        for task in &stage.tasks {
            let mut accesses = Vec::new();
            if let Some(decl) = decls.get(&task.name) {
                for f in &decl.reads {
                    accesses.push((f.clone(), Access::Read));
                }
                for f in &decl.writes {
                    accesses.push((f.clone(), Access::Write));
                }
            }
            plan.push(PlanTask {
                name: task.name.clone(),
                deps: prev_stage.clone(),
                accesses,
            });
        }
        prev_stage = (start..plan.len()).collect();
    }
    plan
}

/// Transitive-closure ancestor sets: `result[i]` holds every task index
/// that happens-before task `i`. Out-of-range dependency indices are
/// ignored (the simulation engine reports those as its own error); cycles
/// cannot deadlock the walk (visited tasks are never re-entered).
pub fn ancestors(plan: &[PlanTask]) -> Vec<BTreeSet<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InProgress,
        Done,
    }
    fn visit(i: usize, plan: &[PlanTask], state: &mut [State], memo: &mut [BTreeSet<usize>]) {
        if state[i] != State::Unvisited {
            return;
        }
        state[i] = State::InProgress;
        let deps = plan[i].deps.clone();
        let mut anc = BTreeSet::new();
        for d in deps {
            if d >= plan.len() || d == i {
                continue;
            }
            visit(d, plan, state, memo);
            // An in-progress dep means a cycle; its (partial) ancestors
            // are still sound to merge.
            anc.insert(d);
            anc.extend(memo[d].iter().copied());
        }
        memo[i] = anc;
        state[i] = State::Done;
    }

    let mut state = vec![State::Unvisited; plan.len()];
    let mut memo = vec![BTreeSet::new(); plan.len()];
    for i in 0..plan.len() {
        visit(i, plan, &mut state, &mut memo);
    }
    memo
}

/// Position of the first read and first write of `file` in a task's
/// access list, if any.
fn first_access(task: &PlanTask, file: &str) -> (Option<usize>, Option<usize>) {
    let mut first_read = None;
    let mut first_write = None;
    for (pos, (f, access)) in task.accesses.iter().enumerate() {
        if f != file {
            continue;
        }
        match access {
            Access::Read if first_read.is_none() => first_read = Some(pos),
            Access::Write if first_write.is_none() => first_write = Some(pos),
            _ => {}
        }
    }
    (first_read, first_write)
}

/// Whether `task` consumes `file`: it reads the file before (or without)
/// writing it itself. A task that writes first and reads its own output
/// back is a producer, not a consumer.
fn consumes(task: &PlanTask, file: &str) -> bool {
    match first_access(task, file) {
        (Some(r), Some(w)) => r < w,
        (Some(_), None) => true,
        _ => false,
    }
}

/// The file a disposal task (`stage_out:<file>` / `drop:<file>`) retires,
/// if the task is one.
fn disposed_file(name: &str) -> Option<&str> {
    name.strip_prefix("stage_out:")
        .or_else(|| name.strip_prefix("drop:"))
}

/// Runs the hazard analysis over a plan.
pub fn analyze_plan(plan: &[PlanTask], cfg: &LintConfig) -> Report {
    let mut report = Report::new();
    let anc = ancestors(plan);
    let ordered = |before: usize, after: usize| anc[after].contains(&before);

    // Per-file writer and reader index lists, in task order.
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, task) in plan.iter().enumerate() {
        let mut seen: BTreeSet<(&str, Access)> = BTreeSet::new();
        for (f, access) in &task.accesses {
            if !seen.insert((f.as_str(), *access)) {
                continue;
            }
            match access {
                Access::Write => writers.entry(f.as_str()).or_default().push(i),
                Access::Read => readers.entry(f.as_str()).or_default().push(i),
            }
        }
    }

    // Write-write races: unordered pairs of distinct writers.
    for (file, ws) in &writers {
        for (a_pos, &a) in ws.iter().enumerate() {
            for &b in &ws[a_pos + 1..] {
                if !ordered(a, b) && !ordered(b, a) {
                    let (first, second) = if plan[a].name <= plan[b].name {
                        (plan[a].name.clone(), plan[b].name.clone())
                    } else {
                        (plan[b].name.clone(), plan[a].name.clone())
                    };
                    report.push(Finding::WriteWriteRace {
                        file: (*file).to_owned(),
                        first,
                        second,
                    });
                }
            }
        }
    }

    // Read-before-write and dangling references.
    for (file, rs) in &readers {
        let ws = writers.get(file).map(Vec::as_slice).unwrap_or_default();
        for &r in rs {
            if !consumes(&plan[r], file) {
                continue;
            }
            let foreign: Vec<usize> = ws.iter().copied().filter(|&w| w != r).collect();
            if foreign.is_empty() {
                if let Some(inputs) = &cfg.external_inputs {
                    if !inputs.contains(*file) {
                        report.push(Finding::DanglingFileRef {
                            file: (*file).to_owned(),
                            reader: plan[r].name.clone(),
                        });
                    }
                }
            } else if !foreign.iter().any(|&w| ordered(w, r)) {
                report.push(Finding::ReadBeforeWrite {
                    file: (*file).to_owned(),
                    reader: plan[r].name.clone(),
                    writers: foreign.iter().map(|&w| plan[w].name.clone()).collect(),
                });
            }
        }
    }

    // Use-after-dispose: a reader ordered after the file's disposal task.
    for (d, task) in plan.iter().enumerate() {
        let Some(file) = disposed_file(&task.name) else {
            continue;
        };
        let Some(rs) = readers.get(file) else {
            continue;
        };
        for &r in rs {
            if r != d && ordered(d, r) {
                report.push(Finding::UseAfterDispose {
                    file: file.to_owned(),
                    reader: plan[r].name.clone(),
                    disposer: task.name.clone(),
                });
            }
        }
    }

    report
}

/// [`analyze_plan`] over a replay job.
pub fn analyze_sim_tasks(tasks: &[SimTask], cfg: &LintConfig) -> Report {
    analyze_plan(&plan_from_sim_tasks(tasks), cfg)
}

/// [`analyze_plan`] over a staged spec with declared access sets.
pub fn analyze_spec(
    spec: &WorkflowSpec,
    decls: &BTreeMap<String, AccessDecl>,
    cfg: &LintConfig,
) -> Report {
    analyze_plan(&plan_from_spec(spec, decls), cfg)
}

/// Hazard analysis over a recorded trace bundle. A bundle carries no
/// dependency edges, so hazards are judged against observed timestamps:
/// two data writes of the same file from different tasks whose intervals
/// overlap raced; a task whose first read of a file starts before any
/// write of it (its own included) read uninitialized data. Disposal
/// checks are plan-level only — traces record what ran, not what may run.
pub fn analyze_bundle(bundle: &TraceBundle, cfg: &LintConfig) -> Report {
    let mut report = Report::new();

    // Per (file, task): write interval [min start, max end] over data
    // writes, and the earliest read start over all reads.
    let mut write_span: BTreeMap<(&str, &str), (u64, u64)> = BTreeMap::new();
    let mut first_read: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for r in &bundle.vfd {
        let key = (r.file.as_str(), r.task.as_str());
        match r.kind {
            IoKind::Write => {
                let span = write_span.entry(key).or_insert((r.start.0, r.end.0));
                span.0 = span.0.min(r.start.0);
                span.1 = span.1.max(r.end.0);
            }
            IoKind::Read => {
                let first = first_read.entry(key).or_insert(r.start.0);
                *first = (*first).min(r.start.0);
            }
            _ => {}
        }
    }

    // Write-write races: overlapping write intervals on one file.
    let mut by_file: BTreeMap<&str, Vec<(&str, u64, u64)>> = BTreeMap::new();
    for (&(file, task), &(start, end)) in &write_span {
        by_file.entry(file).or_default().push((task, start, end));
    }
    for (file, spans) in &by_file {
        for (a_pos, &(a, a_start, a_end)) in spans.iter().enumerate() {
            for &(b, b_start, b_end) in &spans[a_pos + 1..] {
                if a_start < b_end && b_start < a_end {
                    let (first, second) = if a <= b { (a, b) } else { (b, a) };
                    report.push(Finding::WriteWriteRace {
                        file: (*file).to_owned(),
                        first: first.to_owned(),
                        second: second.to_owned(),
                    });
                }
            }
        }
    }

    // Read-before-write and dangling references.
    for (&(file, task), &read_start) in &first_read {
        let file_writers: Vec<&str> = by_file
            .get(file)
            .map(|spans| spans.iter().map(|&(t, _, _)| t).collect())
            .unwrap_or_default();
        if file_writers.is_empty() {
            if let Some(inputs) = &cfg.external_inputs {
                if !inputs.contains(file) {
                    report.push(Finding::DanglingFileRef {
                        file: file.to_owned(),
                        reader: task.to_owned(),
                    });
                }
            }
            continue;
        }
        let initialized = by_file
            .get(file)
            .is_some_and(|spans| spans.iter().any(|&(_, start, _)| start <= read_start));
        if !initialized {
            report.push(Finding::ReadBeforeWrite {
                file: file.to_owned(),
                reader: task.to_owned(),
                writers: file_writers.iter().map(|&t| t.to_owned()).collect(),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_sim::program::SimOp;

    fn task(name: &str, deps: &[usize], program: Vec<SimOp>) -> SimTask {
        SimTask::new(name).after(deps).with_program(program)
    }

    #[test]
    fn ordered_chain_is_clean() {
        let tasks = vec![
            task("producer", &[], vec![SimOp::write("f", 10)]),
            task("consumer", &[0], vec![SimOp::read("f", 10)]),
        ];
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
    }

    #[test]
    fn concurrent_writers_race() {
        let tasks = vec![
            task("w1", &[], vec![SimOp::write("shared", 10)]),
            task("w2", &[], vec![SimOp::write("shared", 10)]),
        ];
        let report = analyze_sim_tasks(&tasks, &LintConfig::default());
        assert_eq!(report.len(), 1);
        assert!(matches!(
            &report.findings[0],
            Finding::WriteWriteRace { file, first, second }
                if file == "shared" && first == "w1" && second == "w2"
        ));
    }

    #[test]
    fn ordered_writers_do_not_race() {
        let tasks = vec![
            task("w1", &[], vec![SimOp::write("shared", 10)]),
            task("mid", &[0], vec![SimOp::compute(1)]),
            task("w2", &[1], vec![SimOp::write("shared", 10)]),
        ];
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
    }

    #[test]
    fn unordered_read_is_read_before_write() {
        let tasks = vec![
            task("producer", &[], vec![SimOp::write("f", 10)]),
            task("eager", &[], vec![SimOp::read("f", 10)]),
        ];
        let report = analyze_sim_tasks(&tasks, &LintConfig::default());
        assert_eq!(report.len(), 1);
        assert!(matches!(
            &report.findings[0],
            Finding::ReadBeforeWrite { reader, .. } if reader == "eager"
        ));
    }

    #[test]
    fn self_write_then_read_is_production_not_consumption() {
        let tasks = vec![task(
            "scratch",
            &[],
            vec![SimOp::write("tmp", 10), SimOp::read("tmp", 10)],
        )];
        let cfg = LintConfig::with_external_inputs(Vec::new());
        assert!(analyze_sim_tasks(&tasks, &cfg).is_clean());
    }

    #[test]
    fn dangling_reference_needs_declared_inputs() {
        let tasks = vec![task("r", &[], vec![SimOp::read("mystery", 10)])];
        // Without declared inputs, producer-less files are assumed external.
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
        // With a declared input set that lacks the file, the read dangles.
        let cfg = LintConfig::with_external_inputs(vec!["known".to_owned()]);
        let report = analyze_sim_tasks(&tasks, &cfg);
        assert_eq!(report.len(), 1);
        assert!(matches!(
            &report.findings[0],
            Finding::DanglingFileRef { file, .. } if file == "mystery"
        ));
    }

    #[test]
    fn read_after_stage_out_is_use_after_dispose() {
        let tasks = vec![
            task("producer", &[], vec![SimOp::write("f", 10)]),
            task(
                "stage_out:f",
                &[0],
                vec![SimOp::read("f", 10), SimOp::write("f@archive", 10)],
            ),
            task("late", &[1], vec![SimOp::read("f", 10)]),
        ];
        let report = analyze_sim_tasks(&tasks, &LintConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UseAfterDispose { reader, .. } if reader == "late")));
    }

    #[test]
    fn metadata_writes_do_not_produce() {
        use dayu_sim::program::IoDir;
        // A reader that bumps metadata (superblock rewrite) must not count
        // as a producer racing other readers.
        let tasks = vec![
            task("w", &[], vec![SimOp::write("f", 10)]),
            task(
                "r1",
                &[0],
                vec![SimOp::read("f", 10), SimOp::metadata("f", IoDir::Write, 64)],
            ),
            task(
                "r2",
                &[0],
                vec![SimOp::read("f", 10), SimOp::metadata("f", IoDir::Write, 64)],
            ),
        ];
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
    }

    #[test]
    fn spec_plan_uses_stage_barriers() {
        use dayu_workflow::TaskSpec;
        let spec = WorkflowSpec::new("wf")
            .stage("produce", vec![TaskSpec::new("p", |_| Ok(()))])
            .stage("consume", vec![TaskSpec::new("c", |_| Ok(()))]);
        let mut decls = BTreeMap::new();
        decls.insert(
            "p".to_owned(),
            AccessDecl {
                reads: vec![],
                writes: vec!["f".to_owned()],
            },
        );
        decls.insert(
            "c".to_owned(),
            AccessDecl {
                reads: vec!["f".to_owned()],
                writes: vec![],
            },
        );
        assert!(analyze_spec(&spec, &decls, &LintConfig::default()).is_clean());

        // Same accesses within one stage: the barrier no longer orders
        // them, so the read has no ordered producer.
        let flat = WorkflowSpec::new("wf").stage(
            "both",
            vec![
                TaskSpec::new("p", |_| Ok(())),
                TaskSpec::new("c", |_| Ok(())),
            ],
        );
        let report = analyze_spec(&flat, &decls, &LintConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ReadBeforeWrite { .. })));
    }

    #[test]
    fn ancestors_handle_cycles_and_bad_indices() {
        let plan = vec![
            PlanTask {
                name: "a".into(),
                deps: vec![1, 99],
                accesses: vec![],
            },
            PlanTask {
                name: "b".into(),
                deps: vec![0],
                accesses: vec![],
            },
        ];
        let anc = ancestors(&plan);
        assert!(anc[0].contains(&1));
        assert!(anc[1].contains(&0));
    }
}
