//! Pass 1 — the static dataflow-hazard analyzer.
//!
//! DaYu decodes *who* produces and consumes each dataset and *in what
//! order*; this pass checks that a plan's dependency structure actually
//! guarantees that order before anything runs. It works on two inputs:
//!
//! * **Plans** — `SimTask` sets (replayed traces, possibly rewritten by
//!   `transform::*`) or `WorkflowSpec`s with declared access sets. Hazards
//!   are judged against the happens-before relation induced by task
//!   dependencies: two accesses conflict when neither task is an ancestor
//!   of the other.
//! * **Trace bundles** — recorded runs, streamed through [`TraceChecker`].
//!   When the trace recorded stage membership, conflicts are judged
//!   against the real happens-before relation ([`crate::hb`]) at byte
//!   -extent granularity ([`crate::extent`]): only *concurrent* tasks
//!   whose raw-data extents actually overlap race; disjoint-extent
//!   concurrency — the safe chunk-parallel pattern — is deliberately not
//!   a finding. Stage-less traces (older recordings) fall back to the
//!   wall-clock heuristics: overlapping write intervals race, whole-file.
//!
//! The detected hazards: write-write races between concurrently
//! schedulable tasks, extent-level races in recorded runs, reads with no
//! ordered producer (read-before-write), reads of disposable data after
//! its stage-out task, references to files nothing produces, and the
//! dataset-lifetime class ([`crate::lifetime`]).

use crate::extent::{Extent, IntervalTree};
use crate::hb::TaskHb;
use crate::lifetime::LifetimePass;
use crate::model::{Finding, Report};
use dayu_sim::program::{IoDir, SimOp, SimTask};
use dayu_trace::store::{RecordSink, TraceBundle, TraceMeta};
use dayu_trace::vfd::{AccessType, FileRecord, IoKind, VfdRecord};
use dayu_trace::vol::VolRecord;
use dayu_trace::{FileKey, ObjectKey, TaskKey};
use dayu_workflow::WorkflowSpec;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io::{self, BufRead};

/// Direction of a declared or extracted dataset access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Access {
    /// The task reads the file.
    Read,
    /// The task writes the file's data.
    Write,
}

/// A task as the analyzer sees it: a name, dependency edges, and an
/// ordered file-access list.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanTask {
    /// Task name.
    pub name: String,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
    /// File accesses in program order.
    pub accesses: Vec<(String, Access)>,
}

/// Declared access sets for one task of a `WorkflowSpec` (specs carry
/// opaque I/O closures, so accesses must be declared to lint them).
#[derive(Clone, Debug, Default)]
pub struct AccessDecl {
    /// Files the task reads.
    pub reads: Vec<String>,
    /// Files the task writes.
    pub writes: Vec<String>,
}

/// Analyzer configuration.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Files that exist before the plan starts (inputs produced outside
    /// it). `None` disables the dangling-file check entirely: any file
    /// without an in-plan producer is assumed external. `Some(set)` makes
    /// reads of producer-less files outside the set a
    /// [`Finding::DanglingFileRef`].
    pub external_inputs: Option<BTreeSet<String>>,
    /// Opt-in for the *waste* finding class ([`Finding::DeadDataset`],
    /// [`Finding::RedundantOverwrite`]). Off by default: a workflow's
    /// final outputs are legitimately never read back, so waste findings
    /// are advisory (they feed the advisor's dataset-elision suggestions)
    /// rather than defects.
    pub report_dead_data: bool,
}

impl LintConfig {
    /// A config declaring the complete set of pre-existing input files.
    pub fn with_external_inputs(files: impl IntoIterator<Item = String>) -> Self {
        Self {
            external_inputs: Some(files.into_iter().collect()),
            ..Self::default()
        }
    }
}

/// Extracts the analyzer's view of a replay job. Writes count only when
/// they move data (metadata-only writes — superblock updates by readers,
/// say — are structural, not production), matching `producers_of` in the
/// workflow crate; reads count regardless of access type.
pub fn plan_from_sim_tasks(tasks: &[SimTask]) -> Vec<PlanTask> {
    tasks
        .iter()
        .map(|t| PlanTask {
            name: t.name.clone(),
            deps: t.deps.clone(),
            accesses: t
                .program
                .iter()
                .filter_map(|op| match op {
                    SimOp::Io {
                        file,
                        dir: IoDir::Read,
                        ..
                    } => Some((file.clone(), Access::Read)),
                    SimOp::Io {
                        file,
                        dir: IoDir::Write,
                        metadata: false,
                        ..
                    } => Some((file.clone(), Access::Write)),
                    _ => None,
                })
                .collect(),
        })
        .collect()
}

/// Builds the analyzer's view of a staged spec from declared access sets
/// (`decls` maps task name → declaration; undeclared tasks lint as doing
/// no I/O). Dependencies are the spec's stage barriers: every task of
/// stage *i* depends on every task of stage *i-1*.
pub fn plan_from_spec(spec: &WorkflowSpec, decls: &BTreeMap<String, AccessDecl>) -> Vec<PlanTask> {
    let mut plan = Vec::with_capacity(spec.task_count());
    let mut prev_stage: Vec<usize> = Vec::new();
    for stage in &spec.stages {
        let start = plan.len();
        for task in &stage.tasks {
            let mut accesses = Vec::new();
            if let Some(decl) = decls.get(&task.name) {
                for f in &decl.reads {
                    accesses.push((f.clone(), Access::Read));
                }
                for f in &decl.writes {
                    accesses.push((f.clone(), Access::Write));
                }
            }
            plan.push(PlanTask {
                name: task.name.clone(),
                deps: prev_stage.clone(),
                accesses,
            });
        }
        prev_stage = (start..plan.len()).collect();
    }
    plan
}

/// Transitive-closure ancestor sets: `result[i]` holds every task index
/// that happens-before task `i`. Out-of-range dependency indices are
/// ignored (the simulation engine reports those as its own error); cycles
/// cannot deadlock the walk (visited tasks are never re-entered).
pub fn ancestors(plan: &[PlanTask]) -> Vec<BTreeSet<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InProgress,
        Done,
    }
    fn visit(i: usize, plan: &[PlanTask], state: &mut [State], memo: &mut [BTreeSet<usize>]) {
        if state[i] != State::Unvisited {
            return;
        }
        state[i] = State::InProgress;
        let deps = plan[i].deps.clone();
        let mut anc = BTreeSet::new();
        for d in deps {
            if d >= plan.len() || d == i {
                continue;
            }
            visit(d, plan, state, memo);
            // An in-progress dep means a cycle; its (partial) ancestors
            // are still sound to merge.
            anc.insert(d);
            anc.extend(memo[d].iter().copied());
        }
        memo[i] = anc;
        state[i] = State::Done;
    }

    let mut state = vec![State::Unvisited; plan.len()];
    let mut memo = vec![BTreeSet::new(); plan.len()];
    for i in 0..plan.len() {
        visit(i, plan, &mut state, &mut memo);
    }
    memo
}

/// Position of the first read and first write of `file` in a task's
/// access list, if any.
fn first_access(task: &PlanTask, file: &str) -> (Option<usize>, Option<usize>) {
    let mut first_read = None;
    let mut first_write = None;
    for (pos, (f, access)) in task.accesses.iter().enumerate() {
        if f != file {
            continue;
        }
        match access {
            Access::Read if first_read.is_none() => first_read = Some(pos),
            Access::Write if first_write.is_none() => first_write = Some(pos),
            _ => {}
        }
    }
    (first_read, first_write)
}

/// Whether `task` consumes `file`: it reads the file before (or without)
/// writing it itself. A task that writes first and reads its own output
/// back is a producer, not a consumer.
fn consumes(task: &PlanTask, file: &str) -> bool {
    match first_access(task, file) {
        (Some(r), Some(w)) => r < w,
        (Some(_), None) => true,
        _ => false,
    }
}

/// The file a disposal task (`stage_out:<file>` / `drop:<file>`) retires,
/// if the task is one.
fn disposed_file(name: &str) -> Option<&str> {
    name.strip_prefix("stage_out:")
        .or_else(|| name.strip_prefix("drop:"))
}

/// Runs the hazard analysis over a plan.
pub fn analyze_plan(plan: &[PlanTask], cfg: &LintConfig) -> Report {
    let mut report = Report::new();
    let anc = ancestors(plan);
    let ordered = |before: usize, after: usize| anc[after].contains(&before);

    // Per-file writer and reader index lists, in task order.
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, task) in plan.iter().enumerate() {
        let mut seen: BTreeSet<(&str, Access)> = BTreeSet::new();
        for (f, access) in &task.accesses {
            if !seen.insert((f.as_str(), *access)) {
                continue;
            }
            match access {
                Access::Write => writers.entry(f.as_str()).or_default().push(i),
                Access::Read => readers.entry(f.as_str()).or_default().push(i),
            }
        }
    }

    // Write-write races: unordered pairs of distinct writers.
    for (file, ws) in &writers {
        for (a_pos, &a) in ws.iter().enumerate() {
            for &b in &ws[a_pos + 1..] {
                if !ordered(a, b) && !ordered(b, a) {
                    let (first, second) = if plan[a].name <= plan[b].name {
                        (plan[a].name.clone(), plan[b].name.clone())
                    } else {
                        (plan[b].name.clone(), plan[a].name.clone())
                    };
                    report.push(Finding::WriteWriteRace {
                        file: (*file).to_owned(),
                        first,
                        second,
                    });
                }
            }
        }
    }

    // Read-before-write and dangling references.
    for (file, rs) in &readers {
        let ws = writers.get(file).map(Vec::as_slice).unwrap_or_default();
        for &r in rs {
            if !consumes(&plan[r], file) {
                continue;
            }
            let foreign: Vec<usize> = ws.iter().copied().filter(|&w| w != r).collect();
            if foreign.is_empty() {
                if let Some(inputs) = &cfg.external_inputs {
                    if !inputs.contains(*file) {
                        report.push(Finding::DanglingFileRef {
                            file: (*file).to_owned(),
                            reader: plan[r].name.clone(),
                        });
                    }
                }
            } else if !foreign.iter().any(|&w| ordered(w, r)) {
                report.push(Finding::ReadBeforeWrite {
                    file: (*file).to_owned(),
                    reader: plan[r].name.clone(),
                    writers: foreign.iter().map(|&w| plan[w].name.clone()).collect(),
                });
            }
        }
    }

    // Use-after-dispose: a reader ordered after the file's disposal task.
    for (d, task) in plan.iter().enumerate() {
        let Some(file) = disposed_file(&task.name) else {
            continue;
        };
        let Some(rs) = readers.get(file) else {
            continue;
        };
        for &r in rs {
            if r != d && ordered(d, r) {
                report.push(Finding::UseAfterDispose {
                    file: file.to_owned(),
                    reader: plan[r].name.clone(),
                    disposer: task.name.clone(),
                });
            }
        }
    }

    report
}

/// [`analyze_plan`] over a replay job.
pub fn analyze_sim_tasks(tasks: &[SimTask], cfg: &LintConfig) -> Report {
    analyze_plan(&plan_from_sim_tasks(tasks), cfg)
}

/// [`analyze_plan`] over a staged spec with declared access sets.
pub fn analyze_spec(
    spec: &WorkflowSpec,
    decls: &BTreeMap<String, AccessDecl>,
    cfg: &LintConfig,
) -> Report {
    analyze_plan(&plan_from_spec(spec, decls), cfg)
}

/// Raw-data extents one task accumulated in one file, with the dataset
/// each op was attributed to.
#[derive(Default)]
struct RawAccess {
    writes: Vec<(Extent, ObjectKey)>,
    reads: Vec<(Extent, ObjectKey)>,
}

/// Streaming trace detector: implements [`RecordSink`], so it lints a
/// trace in either on-disk format — including million-record `.dtb`
/// stores — without materializing a [`TraceBundle`]. Feed it through
/// [`TraceBundle::stream`] (or [`analyze_stream`]) and call
/// [`TraceChecker::finish`].
pub struct TraceChecker {
    cfg: LintConfig,
    stages: Vec<Vec<TaskKey>>,
    seq: HashMap<TaskKey, u64>,
    /// Per (file, task): raw-data extents, for the happens-before path.
    raw: BTreeMap<FileKey, BTreeMap<TaskKey, RawAccess>>,
    /// Per (file, task): write interval [min start, max end], any access
    /// type — writer existence and the wall-clock fallback.
    write_span: BTreeMap<(FileKey, TaskKey), (u64, u64)>,
    /// Per (file, task): earliest read start.
    first_read: BTreeMap<(FileKey, TaskKey), u64>,
    lifetime: LifetimePass,
}

impl TraceChecker {
    /// A fresh detector.
    pub fn new(cfg: LintConfig) -> Self {
        Self {
            cfg,
            stages: Vec::new(),
            seq: HashMap::new(),
            raw: BTreeMap::new(),
            write_span: BTreeMap::new(),
            first_read: BTreeMap::new(),
            lifetime: LifetimePass::new(),
        }
    }

    /// Adopts recorded stage membership (first section that has any wins,
    /// matching the bundle concat-merge rules).
    fn note_stages(&mut self, stages: Vec<Vec<TaskKey>>) {
        if self.stages.is_empty() {
            self.stages = stages;
        }
    }

    /// Folds one I/O record into the detector.
    pub fn op(&mut self, r: &VfdRecord) {
        let seq = self.seq.entry(r.task.clone()).or_insert(0);
        let my_seq = *seq;
        *seq += 1;
        self.lifetime.op(r, my_seq);
        match r.kind {
            IoKind::Write => {
                let key = (r.file.clone(), r.task.clone());
                let span = self.write_span.entry(key).or_insert((r.start.0, r.end.0));
                span.0 = span.0.min(r.start.0);
                span.1 = span.1.max(r.end.0);
            }
            IoKind::Read => {
                let key = (r.file.clone(), r.task.clone());
                let first = self.first_read.entry(key).or_insert(r.start.0);
                *first = (*first).min(r.start.0);
            }
            _ => {}
        }
        if r.access == AccessType::RawData && r.kind.moves_data() {
            let acc = self
                .raw
                .entry(r.file.clone())
                .or_default()
                .entry(r.task.clone())
                .or_default();
            let e = Extent::of(r.offset, r.len);
            match r.kind {
                IoKind::Write => acc.writes.push((e, r.object.clone())),
                IoKind::Read => acc.reads.push((e, r.object.clone())),
                _ => {}
            }
        }
    }

    /// Runs the end-of-trace analyses and returns the combined report.
    pub fn finish(self) -> Report {
        let mut report = Report::new();
        let hb = (!self.stages.is_empty()).then(|| {
            let names: Vec<Vec<&str>> = self
                .stages
                .iter()
                .map(|s| s.iter().map(TaskKey::as_str).collect())
                .collect();
            TaskHb::from_stages(&names)
        });
        match &hb {
            Some(hb) => self.extent_races(hb, &mut report),
            None => self.timestamp_races(&mut report),
        }
        self.reads_without_producer(hb.is_some(), &mut report);
        report.merge(self.lifetime.finish(hb.as_ref(), self.cfg.report_dead_data));
        report
    }

    /// Happens-before + extent path: for each file, every concurrent task
    /// pair is probed for overlapping raw extents through an interval
    /// tree over one side's writes. Tasks the stage map does not cover
    /// are skipped — their order (and hence any race) is unprovable.
    fn extent_races(&self, hb: &TaskHb, report: &mut Report) {
        for (file, tasks) in &self.raw {
            let keys: Vec<&TaskKey> = tasks.keys().collect();
            let write_trees: Vec<IntervalTree<&ObjectKey>> = keys
                .iter()
                .map(|t| {
                    IntervalTree::build(tasks[*t].writes.iter().map(|(e, o)| (*e, o)).collect())
                })
                .collect();
            // (first, second, write_write) → widest overlap + datasets.
            type Hit = (u64, u64, BTreeSet<String>);
            let mut hits: BTreeMap<(&str, &str, bool), Hit> = BTreeMap::new();
            for (i, a) in keys.iter().enumerate() {
                for (jo, b) in keys[i + 1..].iter().enumerate() {
                    let j = i + 1 + jo;
                    let (Some(ia), Some(ib)) = (hb.task(a.as_str()), hb.task(b.as_str())) else {
                        continue;
                    };
                    if !hb.concurrent(ia, ib) {
                        continue;
                    }
                    // BTreeMap keys are sorted, so a < b lexicographically.
                    let mut note = |overlap: Extent, o1: &ObjectKey, o2: &ObjectKey, ww: bool| {
                        let hit = hits.entry((a.as_str(), b.as_str(), ww)).or_insert((
                            u64::MAX,
                            0,
                            BTreeSet::new(),
                        ));
                        hit.0 = hit.0.min(overlap.start);
                        hit.1 = hit.1.max(overlap.end);
                        hit.2.insert(o1.as_str().to_owned());
                        hit.2.insert(o2.as_str().to_owned());
                    };
                    let (xa, xb) = (&tasks[*a], &tasks[*b]);
                    for (e, obj) in &xb.writes {
                        write_trees[i].for_each_overlap(*e, |se, so| {
                            if let Some(x) = se.intersection(e) {
                                note(x, so, obj, true);
                            }
                        });
                    }
                    for (e, obj) in &xb.reads {
                        write_trees[i].for_each_overlap(*e, |se, so| {
                            if let Some(x) = se.intersection(e) {
                                note(x, so, obj, false);
                            }
                        });
                    }
                    for (e, obj) in &xa.reads {
                        write_trees[j].for_each_overlap(*e, |se, so| {
                            if let Some(x) = se.intersection(e) {
                                note(x, so, obj, false);
                            }
                        });
                    }
                }
            }
            for ((first, second, write_write), (start, end, datasets)) in hits {
                report.push(Finding::ExtentRace {
                    file: file.as_str().to_owned(),
                    datasets: datasets.into_iter().collect(),
                    first: first.to_owned(),
                    second: second.to_owned(),
                    write_write,
                    start,
                    end,
                });
            }
        }
    }

    /// Wall-clock fallback for stage-less traces: two data writes of one
    /// file from different tasks whose observed intervals overlap raced.
    fn timestamp_races(&self, report: &mut Report) {
        let mut by_file: BTreeMap<&FileKey, Vec<(&TaskKey, u64, u64)>> = BTreeMap::new();
        for ((file, task), &(start, end)) in &self.write_span {
            by_file.entry(file).or_default().push((task, start, end));
        }
        for (file, spans) in &by_file {
            for (a_pos, &(a, a_start, a_end)) in spans.iter().enumerate() {
                for &(b, b_start, b_end) in &spans[a_pos + 1..] {
                    if a_start < b_end && b_start < a_end {
                        let (first, second) = if a <= b { (a, b) } else { (b, a) };
                        report.push(Finding::WriteWriteRace {
                            file: file.as_str().to_owned(),
                            first: first.as_str().to_owned(),
                            second: second.as_str().to_owned(),
                        });
                    }
                }
            }
        }
    }

    /// Dangling references (both modes) and, in wall-clock mode only, the
    /// file-level read-before-write heuristic (the happens-before path
    /// judges reads at dataset granularity instead, via the lifetime
    /// pass).
    fn reads_without_producer(&self, hb_mode: bool, report: &mut Report) {
        let mut writers_of: BTreeMap<&FileKey, Vec<(&TaskKey, u64)>> = BTreeMap::new();
        for ((file, task), &(start, _)) in &self.write_span {
            writers_of.entry(file).or_default().push((task, start));
        }
        for ((file, task), &read_start) in &self.first_read {
            let Some(ws) = writers_of.get(file) else {
                if let Some(inputs) = &self.cfg.external_inputs {
                    if !inputs.contains(file.as_str()) {
                        report.push(Finding::DanglingFileRef {
                            file: file.as_str().to_owned(),
                            reader: task.as_str().to_owned(),
                        });
                    }
                }
                continue;
            };
            if hb_mode {
                continue;
            }
            if !ws.iter().any(|&(_, start)| start <= read_start) {
                report.push(Finding::ReadBeforeWrite {
                    file: file.as_str().to_owned(),
                    reader: task.as_str().to_owned(),
                    writers: ws.iter().map(|&(t, _)| t.as_str().to_owned()).collect(),
                });
            }
        }
    }
}

impl RecordSink for TraceChecker {
    fn meta(&mut self, meta: TraceMeta) -> io::Result<()> {
        self.note_stages(meta.stages);
        Ok(())
    }

    fn vol(&mut self, _rec: VolRecord) -> io::Result<()> {
        Ok(())
    }

    fn vfd(&mut self, rec: VfdRecord) -> io::Result<()> {
        self.op(&rec);
        Ok(())
    }

    fn file(&mut self, _rec: FileRecord) -> io::Result<()> {
        Ok(())
    }
}

/// Hazard analysis over a recorded trace bundle, via [`TraceChecker`].
/// Bundles that recorded stage membership get extent-level happens-before
/// race detection plus the dataset-lifetime checks; stage-less bundles
/// fall back to whole-file wall-clock heuristics.
pub fn analyze_bundle(bundle: &TraceBundle, cfg: &LintConfig) -> Report {
    let mut checker = TraceChecker::new(cfg.clone());
    checker.note_stages(bundle.meta.stages.clone());
    for r in &bundle.vfd {
        checker.op(r);
    }
    checker.finish()
}

/// Streams a trace in either on-disk format (auto-detected) straight into
/// the detector — no intermediate [`TraceBundle`] — and returns the
/// report plus the number of data records linted.
pub fn analyze_stream<R: BufRead>(r: R, cfg: &LintConfig) -> io::Result<(Report, u64)> {
    let mut checker = TraceChecker::new(cfg.clone());
    let records = TraceBundle::stream(r, &mut checker)?;
    Ok((checker.finish(), records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_sim::program::SimOp;
    use dayu_trace::Timestamp;

    fn task(name: &str, deps: &[usize], program: Vec<SimOp>) -> SimTask {
        SimTask::new(name).after(deps).with_program(program)
    }

    #[test]
    fn ordered_chain_is_clean() {
        let tasks = vec![
            task("producer", &[], vec![SimOp::write("f", 10)]),
            task("consumer", &[0], vec![SimOp::read("f", 10)]),
        ];
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
    }

    #[test]
    fn concurrent_writers_race() {
        let tasks = vec![
            task("w1", &[], vec![SimOp::write("shared", 10)]),
            task("w2", &[], vec![SimOp::write("shared", 10)]),
        ];
        let report = analyze_sim_tasks(&tasks, &LintConfig::default());
        assert_eq!(report.len(), 1);
        assert!(matches!(
            &report.findings[0],
            Finding::WriteWriteRace { file, first, second }
                if file == "shared" && first == "w1" && second == "w2"
        ));
    }

    #[test]
    fn ordered_writers_do_not_race() {
        let tasks = vec![
            task("w1", &[], vec![SimOp::write("shared", 10)]),
            task("mid", &[0], vec![SimOp::compute(1)]),
            task("w2", &[1], vec![SimOp::write("shared", 10)]),
        ];
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
    }

    #[test]
    fn unordered_read_is_read_before_write() {
        let tasks = vec![
            task("producer", &[], vec![SimOp::write("f", 10)]),
            task("eager", &[], vec![SimOp::read("f", 10)]),
        ];
        let report = analyze_sim_tasks(&tasks, &LintConfig::default());
        assert_eq!(report.len(), 1);
        assert!(matches!(
            &report.findings[0],
            Finding::ReadBeforeWrite { reader, .. } if reader == "eager"
        ));
    }

    #[test]
    fn self_write_then_read_is_production_not_consumption() {
        let tasks = vec![task(
            "scratch",
            &[],
            vec![SimOp::write("tmp", 10), SimOp::read("tmp", 10)],
        )];
        let cfg = LintConfig::with_external_inputs(Vec::new());
        assert!(analyze_sim_tasks(&tasks, &cfg).is_clean());
    }

    #[test]
    fn dangling_reference_needs_declared_inputs() {
        let tasks = vec![task("r", &[], vec![SimOp::read("mystery", 10)])];
        // Without declared inputs, producer-less files are assumed external.
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
        // With a declared input set that lacks the file, the read dangles.
        let cfg = LintConfig::with_external_inputs(vec!["known".to_owned()]);
        let report = analyze_sim_tasks(&tasks, &cfg);
        assert_eq!(report.len(), 1);
        assert!(matches!(
            &report.findings[0],
            Finding::DanglingFileRef { file, .. } if file == "mystery"
        ));
    }

    #[test]
    fn read_after_stage_out_is_use_after_dispose() {
        let tasks = vec![
            task("producer", &[], vec![SimOp::write("f", 10)]),
            task(
                "stage_out:f",
                &[0],
                vec![SimOp::read("f", 10), SimOp::write("f@archive", 10)],
            ),
            task("late", &[1], vec![SimOp::read("f", 10)]),
        ];
        let report = analyze_sim_tasks(&tasks, &LintConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UseAfterDispose { reader, .. } if reader == "late")));
    }

    #[test]
    fn metadata_writes_do_not_produce() {
        use dayu_sim::program::IoDir;
        // A reader that bumps metadata (superblock rewrite) must not count
        // as a producer racing other readers.
        let tasks = vec![
            task("w", &[], vec![SimOp::write("f", 10)]),
            task(
                "r1",
                &[0],
                vec![SimOp::read("f", 10), SimOp::metadata("f", IoDir::Write, 64)],
            ),
            task(
                "r2",
                &[0],
                vec![SimOp::read("f", 10), SimOp::metadata("f", IoDir::Write, 64)],
            ),
        ];
        assert!(analyze_sim_tasks(&tasks, &LintConfig::default()).is_clean());
    }

    #[test]
    fn spec_plan_uses_stage_barriers() {
        use dayu_workflow::TaskSpec;
        let spec = WorkflowSpec::new("wf")
            .stage("produce", vec![TaskSpec::new("p", |_| Ok(()))])
            .stage("consume", vec![TaskSpec::new("c", |_| Ok(()))]);
        let mut decls = BTreeMap::new();
        decls.insert(
            "p".to_owned(),
            AccessDecl {
                reads: vec![],
                writes: vec!["f".to_owned()],
            },
        );
        decls.insert(
            "c".to_owned(),
            AccessDecl {
                reads: vec!["f".to_owned()],
                writes: vec![],
            },
        );
        assert!(analyze_spec(&spec, &decls, &LintConfig::default()).is_clean());

        // Same accesses within one stage: the barrier no longer orders
        // them, so the read has no ordered producer.
        let flat = WorkflowSpec::new("wf").stage(
            "both",
            vec![
                TaskSpec::new("p", |_| Ok(())),
                TaskSpec::new("c", |_| Ok(())),
            ],
        );
        let report = analyze_spec(&flat, &decls, &LintConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::ReadBeforeWrite { .. })));
    }

    #[test]
    fn ancestors_handle_cycles_and_bad_indices() {
        let plan = vec![
            PlanTask {
                name: "a".into(),
                deps: vec![1, 99],
                accesses: vec![],
            },
            PlanTask {
                name: "b".into(),
                deps: vec![0],
                accesses: vec![],
            },
        ];
        let anc = ancestors(&plan);
        assert!(anc[0].contains(&1));
        assert!(anc[1].contains(&0));
    }

    // ---- trace-level detector ----

    fn vfd(
        task: &str,
        file: &str,
        kind: IoKind,
        offset: u64,
        len: u64,
        access: AccessType,
        object: &str,
    ) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new(file),
            kind,
            offset,
            len,
            access,
            object: ObjectKey::new(object),
            start: Timestamp(0),
            end: Timestamp(100), // all ops wall-clock-overlap on purpose
        }
    }

    fn staged_bundle(stages: &[&[&str]]) -> TraceBundle {
        let mut b = TraceBundle::new("wf");
        b.meta.stages = stages
            .iter()
            .map(|s| s.iter().map(|t| TaskKey::new(*t)).collect())
            .collect();
        b
    }

    #[test]
    fn concurrent_overlapping_writes_are_an_extent_race() {
        let mut b = staged_bundle(&[&["a", "b"]]);
        b.vfd.push(vfd(
            "a",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        b.vfd.push(vfd(
            "b",
            "f.h5",
            IoKind::Write,
            50,
            100,
            AccessType::RawData,
            "/y",
        ));
        let report = analyze_bundle(&b, &LintConfig::default());
        assert_eq!(report.len(), 1, "{report}");
        assert!(matches!(
            &report.findings[0],
            Finding::ExtentRace { file, datasets, first, second, write_write: true, start: 50, end: 100 }
                if file == "f.h5" && first == "a" && second == "b"
                    && datasets == &["/x".to_owned(), "/y".to_owned()]
        ));
    }

    #[test]
    fn disjoint_extent_concurrency_is_not_a_race() {
        // The exact pattern the old whole-file wall-clock detector flagged
        // as a write-write race: same file, same stage, overlapping time —
        // but provably disjoint byte ranges.
        let mut b = staged_bundle(&[&["a", "b"]]);
        b.vfd.push(vfd(
            "a",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        b.vfd.push(vfd(
            "b",
            "f.h5",
            IoKind::Write,
            100,
            100,
            AccessType::RawData,
            "/y",
        ));
        assert!(analyze_bundle(&b, &LintConfig::default()).is_clean());

        // Without the stage map the same records fall back to wall-clock
        // judgement and do race (intervals overlap).
        let mut old = TraceBundle::new("wf");
        old.vfd = b.vfd.clone();
        let report = analyze_bundle(&old, &LintConfig::default());
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::WriteWriteRace { .. })));
    }

    #[test]
    fn concurrent_write_read_overlap_is_an_extent_race_both_directions() {
        for (writer, reader) in [("a", "b"), ("b", "a")] {
            let mut b = staged_bundle(&[&["a", "b"]]);
            b.vfd.push(vfd(
                writer,
                "f.h5",
                IoKind::Write,
                0,
                64,
                AccessType::RawData,
                "/d",
            ));
            b.vfd.push(vfd(
                reader,
                "f.h5",
                IoKind::Read,
                32,
                64,
                AccessType::RawData,
                "/d",
            ));
            let report = analyze_bundle(&b, &LintConfig::default());
            assert!(
                report.findings.iter().any(|f| matches!(
                    f,
                    Finding::ExtentRace {
                        write_write: false,
                        start: 32,
                        end: 64,
                        ..
                    }
                )),
                "{report}"
            );
            // The same unordered read also surfaces at dataset granularity.
            assert!(
                report.findings.iter().any(|f| matches!(
                    f,
                    Finding::DatasetReadBeforeWrite { reader: r, .. } if r == reader
                )),
                "{report}"
            );
            assert_eq!(report.len(), 2, "{report}");
        }
    }

    #[test]
    fn stage_ordering_and_metadata_suppress_extent_races() {
        // Overlapping extents, but the writers are in consecutive stages.
        let mut b = staged_bundle(&[&["a"], &["b"]]);
        b.vfd.push(vfd(
            "a",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        b.vfd.push(vfd(
            "b",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        assert!(analyze_bundle(&b, &LintConfig::default()).is_clean());

        // Concurrent overlapping *metadata* writes are library-serialized,
        // not races.
        let mut b = staged_bundle(&[&["a", "b"]]);
        b.vfd.push(vfd(
            "a",
            "f.h5",
            IoKind::Write,
            0,
            8,
            AccessType::Metadata,
            "File-Metadata",
        ));
        b.vfd.push(vfd(
            "b",
            "f.h5",
            IoKind::Write,
            0,
            8,
            AccessType::Metadata,
            "File-Metadata",
        ));
        assert!(analyze_bundle(&b, &LintConfig::default()).is_clean());

        // A task outside the stage map is skipped, not guessed about.
        let mut b = staged_bundle(&[&["a"]]);
        b.vfd.push(vfd(
            "a",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        b.vfd.push(vfd(
            "ghost",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        assert!(analyze_bundle(&b, &LintConfig::default()).is_clean());
    }

    #[test]
    fn extent_races_deduplicate_and_widen() {
        // Many clashing ops between one pair collapse to one finding per
        // direction-kind with the widest observed range.
        let mut b = staged_bundle(&[&["a", "b"]]);
        for off in [0u64, 200, 400] {
            b.vfd.push(vfd(
                "a",
                "f.h5",
                IoKind::Write,
                off,
                100,
                AccessType::RawData,
                "/x",
            ));
            b.vfd.push(vfd(
                "b",
                "f.h5",
                IoKind::Write,
                off + 50,
                100,
                AccessType::RawData,
                "/y",
            ));
        }
        let report = analyze_bundle(&b, &LintConfig::default());
        assert_eq!(report.len(), 1, "{report}");
        assert!(matches!(
            &report.findings[0],
            Finding::ExtentRace {
                start: 50,
                end: 500,
                write_write: true,
                ..
            }
        ));
    }

    #[test]
    fn analyze_stream_matches_analyze_bundle_in_both_formats() {
        let mut b = staged_bundle(&[&["a", "b"]]);
        b.vfd.push(vfd(
            "a",
            "f.h5",
            IoKind::Write,
            0,
            100,
            AccessType::RawData,
            "/x",
        ));
        b.vfd.push(vfd(
            "b",
            "f.h5",
            IoKind::Write,
            50,
            100,
            AccessType::RawData,
            "/y",
        ));
        let cfg = LintConfig::default();
        let want = analyze_bundle(&b, &cfg);
        for bytes in [b.to_jsonl_bytes(), b.to_binary_bytes()] {
            let (report, n) = analyze_stream(&bytes[..], &cfg).unwrap();
            assert_eq!(report, want);
            assert_eq!(n, 2);
        }
    }
}
