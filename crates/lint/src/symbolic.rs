//! Symbolic extent algebra over declared I/O contracts.
//!
//! [`IoContract`] clauses carry affine byte extents over named parameters
//! with declared domains. This module turns them into something the
//! linter can reason about *before any VFD is opened*: a sound
//! over-approximation (the **hull**) of every clause, grouped per
//! `(task, file, dataset, access mode)` into [`SymFootprint`]s, and a
//! [`ContractCatalog`] exposing the same disjointness oracle shape as the
//! recorded-trace [`ExtentCatalog`](crate::extent::ExtentCatalog) — so
//! the transform verifier can discharge a `parallelize` from semantics
//! alone and fall back to recorded dynamics when contracts are absent.
//!
//! Soundness rules, applied uniformly:
//!
//! * a parameter without a declared domain, or arithmetic that overflows
//!   `i64`, makes the clause ⊤ (whole dataset) — never silently empty;
//! * hulls over-approximate: `provably_disjoint` only answers `true`
//!   when the hulls cannot touch, `collision` answers the widest byte
//!   range the declarations allow to conflict;
//! * a task with **no** contract is unknown — it can neither be accused
//!   nor exonerated, so `knows` gates every proof, exactly as the
//!   recorded catalog gates on unobserved tasks.
//!
//! Extents from *different datasets* of the same file never conflict:
//! contract extents are dataset-relative logical bytes, and distinct
//! datasets own distinct storage.

use crate::extent::{Extent, ExtentSet};
use dayu_workflow::contract::{AccessMode, AffineExpr, ParamDomain, SymExtent};
use dayu_workflow::WorkflowSpec;
use std::collections::BTreeMap;

/// Inclusive bounds `[lo, hi]` an affine expression can take when every
/// parameter ranges over its declared domain. `None` when a parameter
/// has no domain or the arithmetic overflows — callers must treat that
/// as unbounded.
pub fn expr_bounds(
    expr: &AffineExpr,
    params: &BTreeMap<String, ParamDomain>,
) -> Option<(i64, i64)> {
    let mut lo = expr.base;
    let mut hi = expr.base;
    for (name, coeff) in &expr.terms {
        let dom = params.get(name)?;
        let a = coeff.checked_mul(dom.lo)?;
        let b = coeff.checked_mul(dom.hi)?;
        lo = lo.checked_add(a.min(b))?;
        hi = hi.checked_add(a.max(b))?;
    }
    Some((lo, hi))
}

fn clamp_u64(v: i64) -> u64 {
    v.max(0) as u64
}

/// The concrete hull of a symbolic extent under parameter domains:
/// every byte any instantiation can touch lies inside it. `None` is ⊤ —
/// the extent is [`SymExtent::All`], a parameter is unbounded, or the
/// bounds overflowed.
pub fn extent_hull(extent: &SymExtent, params: &BTreeMap<String, ParamDomain>) -> Option<Extent> {
    match extent {
        SymExtent::All => None,
        SymExtent::Span { start, end } => {
            let (start_lo, _) = expr_bounds(start, params)?;
            let (_, end_hi) = expr_bounds(end, params)?;
            let s = clamp_u64(start_lo);
            let e = clamp_u64(end_hi);
            Some(Extent::new(s.min(e), e))
        }
    }
}

/// Concrete evaluation of a symbolic extent under an exact valuation
/// (missing parameters read 0, mirroring [`AffineExpr::eval`]). `None`
/// is ⊤. Negative or inverted spans collapse to empty.
pub fn eval_extent(extent: &SymExtent, env: &BTreeMap<String, i64>) -> Option<Extent> {
    match extent {
        SymExtent::All => None,
        SymExtent::Span { start, end } => {
            let s = clamp_u64(start.eval(env));
            let e = clamp_u64(end.eval(env));
            Some(Extent::new(s.min(e), e))
        }
    }
}

/// The declared footprint of one `(task, file, dataset, mode)`: either ⊤
/// or a union of concrete hull ranges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SymFootprint {
    /// Some clause resolved to ⊤ (whole dataset).
    pub top: bool,
    /// Hulls of the concretely-boundable clauses.
    pub hulls: ExtentSet,
}

impl SymFootprint {
    /// Folds one clause extent in.
    pub fn add(&mut self, extent: &SymExtent, params: &BTreeMap<String, ParamDomain>) {
        match extent_hull(extent, params) {
            None => self.top = true,
            Some(h) => self.hulls.insert(h),
        }
    }

    /// Whether the footprint declares no bytes at all.
    pub fn is_empty(&self) -> bool {
        !self.top && self.hulls.is_empty()
    }

    /// Widest single byte range the footprint spans; `[0, u64::MAX)`
    /// for ⊤, `None` when empty.
    pub fn span(&self) -> Option<Extent> {
        if self.top {
            return Some(Extent::new(0, u64::MAX));
        }
        let runs = self.hulls.runs();
        let (first, last) = (runs.first()?, runs.last()?);
        Some(Extent::new(first.start, last.end))
    }

    /// Byte range where the two footprints *may* overlap, or `None` when
    /// they provably cannot. ⊤ overlaps any non-empty footprint.
    pub fn may_overlap(&self, other: &SymFootprint) -> Option<Extent> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        match (self.top, other.top) {
            (true, _) => other.span(),
            (_, true) => self.span(),
            (false, false) => self.hulls.overlap(&other.hulls),
        }
    }

    /// Bytes of `observed` the footprint does not cover (empty for ⊤).
    pub fn uncovered(&self, observed: &ExtentSet) -> Vec<Extent> {
        if self.top {
            return Vec::new();
        }
        observed.subtract(&self.hulls)
    }

    /// Whether `observed` shares at least one byte with the footprint
    /// (⊤ touches anything non-empty).
    pub fn touches(&self, observed: &ExtentSet) -> bool {
        if observed.is_empty() {
            return false;
        }
        if self.top {
            return true;
        }
        self.hulls.overlap(observed).is_some()
    }
}

/// Declared read/write footprints of one `(task, file, dataset)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FootprintPair {
    /// Union of the task's declared read clauses.
    pub reads: SymFootprint,
    /// Union of the task's declared write clauses.
    pub writes: SymFootprint,
}

/// One may-conflict between two tasks' declared footprints.
#[derive(Clone, Debug, PartialEq)]
pub struct SymCollision {
    /// Dataset the conflicting clauses target.
    pub dataset: String,
    /// Byte range the declarations allow to overlap.
    pub extent: Extent,
    /// `true` for write-write, `false` for write-read.
    pub write_write: bool,
}

#[derive(Clone, Debug, Default)]
struct TaskContract {
    /// file → dataset → declared footprints.
    files: BTreeMap<String, BTreeMap<String, FootprintPair>>,
    /// Files the task disposes of.
    disposes: Vec<String>,
}

/// Every declared contract of a workflow spec, compiled to hull
/// footprints. Mirrors [`ExtentCatalog`](crate::extent::ExtentCatalog)'s
/// oracle surface (`knows` / `collision` / `provably_disjoint`) so the
/// two are interchangeable to the transform verifier — one proves from
/// declarations, the other from recordings.
#[derive(Clone, Debug, Default)]
pub struct ContractCatalog {
    tasks: BTreeMap<String, TaskContract>,
}

impl ContractCatalog {
    /// Compiles every task contract in `spec`. Tasks without a contract
    /// (or with an empty one) stay unknown.
    pub fn from_spec(spec: &WorkflowSpec) -> Self {
        let mut cat = Self::default();
        for stage in &spec.stages {
            for task in &stage.tasks {
                let Some(contract) = &task.contract else {
                    continue;
                };
                if contract.is_empty() {
                    continue;
                }
                let tc = cat.tasks.entry(task.name.clone()).or_default();
                tc.disposes.extend(contract.disposes.iter().cloned());
                for clause in &contract.clauses {
                    let pair = tc
                        .files
                        .entry(clause.file.clone())
                        .or_default()
                        .entry(clause.dataset.clone())
                        .or_default();
                    let fp = match clause.mode {
                        AccessMode::Read => &mut pair.reads,
                        AccessMode::Write => &mut pair.writes,
                    };
                    fp.add(&clause.extent, &contract.params);
                }
            }
        }
        cat
    }

    /// Whether `task` declared a (non-empty) contract.
    pub fn knows(&self, task: &str) -> bool {
        self.tasks.contains_key(task)
    }

    /// Number of tasks with compiled contracts.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no task declared anything.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Names of tasks with compiled contracts, sorted.
    pub fn task_names(&self) -> impl Iterator<Item = &str> {
        self.tasks.keys().map(String::as_str)
    }

    /// Files `task` declared clauses on, sorted.
    pub fn files_of(&self, task: &str) -> Vec<&str> {
        self.tasks
            .get(task)
            .map(|tc| tc.files.keys().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Files `task` declared it disposes of.
    pub fn disposals_of(&self, task: &str) -> &[String] {
        self.tasks
            .get(task)
            .map(|tc| tc.disposes.as_slice())
            .unwrap_or_default()
    }

    /// Declared footprints of `(task, file)`, per dataset.
    pub fn footprints(&self, task: &str, file: &str) -> Option<&BTreeMap<String, FootprintPair>> {
        self.tasks.get(task)?.files.get(file)
    }

    /// Declared footprint of one `(task, file, dataset)`.
    pub fn footprint(&self, task: &str, file: &str, dataset: &str) -> Option<&FootprintPair> {
        self.footprints(task, file)?.get(dataset)
    }

    /// Whether `task` declared any read (resp. write) bytes of `file`.
    pub fn reads_file(&self, task: &str, file: &str) -> bool {
        self.footprints(task, file)
            .is_some_and(|m| m.values().any(|p| !p.reads.is_empty()))
    }

    /// Whether `task` declared any write bytes of `file`.
    pub fn writes_file(&self, task: &str, file: &str) -> bool {
        self.footprints(task, file)
            .is_some_and(|m| m.values().any(|p| !p.writes.is_empty()))
    }

    /// Every may-conflict between `a`'s and `b`'s declared footprints on
    /// `file`: per shared dataset, write×write and write×read overlaps.
    /// Empty means the declarations prove the pair disjoint on `file`.
    pub fn collisions(&self, a: &str, b: &str, file: &str) -> Vec<SymCollision> {
        let mut out = Vec::new();
        let (Some(fa), Some(fb)) = (self.footprints(a, file), self.footprints(b, file)) else {
            return out;
        };
        for (dataset, pa) in fa {
            let Some(pb) = fb.get(dataset) else {
                continue;
            };
            if let Some(x) = pa.writes.may_overlap(&pb.writes) {
                out.push(SymCollision {
                    dataset: dataset.clone(),
                    extent: x,
                    write_write: true,
                });
            }
            let wr = pa
                .writes
                .may_overlap(&pb.reads)
                .into_iter()
                .chain(pa.reads.may_overlap(&pb.writes));
            for x in wr {
                out.push(SymCollision {
                    dataset: dataset.clone(),
                    extent: x,
                    write_write: false,
                });
            }
        }
        out
    }

    /// Widest byte range where the declarations allow `a` and `b` to
    /// conflict on `file` (either writing), or `None` when they provably
    /// cannot. Mirrors [`ExtentCatalog::collision`](crate::extent::ExtentCatalog::collision).
    pub fn collision(&self, a: &str, b: &str, file: &str) -> Option<Extent> {
        let cols = self.collisions(a, b, file);
        let start = cols.iter().map(|c| c.extent.start).min()?;
        let end = cols.iter().map(|c| c.extent.end).max()?;
        Some(Extent::new(start, end))
    }

    /// Whether the declarations *prove* `a` and `b` cannot conflict on
    /// `file`: both tasks carry contracts and no declared write of either
    /// may touch bytes the other declares. A ⊤ clause on a shared
    /// dataset defeats the proof; an absent contract defeats it too.
    pub fn provably_disjoint(&self, a: &str, b: &str, file: &str) -> bool {
        self.knows(a) && self.knows(b) && self.collisions(a, b, file).is_empty()
    }
}

/// A disjointness oracle the transform verifier can consult: either the
/// recorded-trace [`ExtentCatalog`](crate::extent::ExtentCatalog)
/// (dynamics) or the declared [`ContractCatalog`] (semantics).
pub trait FootprintOracle {
    /// Whether the oracle has evidence about `task` at all.
    fn knows(&self, task: &str) -> bool;
    /// Whether `a` and `b` provably cannot conflict on `file`.
    fn provably_disjoint(&self, a: &str, b: &str, file: &str) -> bool;
    /// Byte range where `a` and `b` may (or did) conflict on `file`.
    fn collision(&self, a: &str, b: &str, file: &str) -> Option<Extent>;
}

impl FootprintOracle for ContractCatalog {
    fn knows(&self, task: &str) -> bool {
        ContractCatalog::knows(self, task)
    }
    fn provably_disjoint(&self, a: &str, b: &str, file: &str) -> bool {
        ContractCatalog::provably_disjoint(self, a, b, file)
    }
    fn collision(&self, a: &str, b: &str, file: &str) -> Option<Extent> {
        ContractCatalog::collision(self, a, b, file)
    }
}

impl FootprintOracle for crate::extent::ExtentCatalog {
    fn knows(&self, task: &str) -> bool {
        crate::extent::ExtentCatalog::knows(self, task)
    }
    fn provably_disjoint(&self, a: &str, b: &str, file: &str) -> bool {
        crate::extent::ExtentCatalog::provably_disjoint(self, a, b, file)
    }
    fn collision(&self, a: &str, b: &str, file: &str) -> Option<Extent> {
        crate::extent::ExtentCatalog::collision(self, a, b, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_workflow::contract::IoContract;
    use dayu_workflow::spec::TaskSpec;

    fn dom(lo: i64, hi: i64) -> ParamDomain {
        ParamDomain::range(lo, hi)
    }

    fn task(name: &str) -> TaskSpec {
        TaskSpec::new(name, |_| Ok(()))
    }

    #[test]
    fn bounds_respect_coefficient_sign() {
        let e = AffineExpr::var("i") * -3 + 10;
        let params: BTreeMap<String, ParamDomain> = [("i".to_owned(), dom(1, 4))].into();
        // -3i + 10 over i ∈ [1,4]: min at i=4 (-2), max at i=1 (7).
        assert_eq!(expr_bounds(&e, &params), Some((-2, 7)));
        // Unbound parameter → unknown.
        assert_eq!(expr_bounds(&AffineExpr::var("j"), &params), None);
    }

    #[test]
    fn hull_clamps_and_handles_top() {
        let i = AffineExpr::var("i");
        let params: BTreeMap<String, ParamDomain> = [("i".to_owned(), dom(0, 3))].into();
        let span = SymExtent::span(i.clone() * 100, (i + 1) * 100);
        assert_eq!(extent_hull(&span, &params), Some(Extent::new(0, 400)));
        assert_eq!(extent_hull(&SymExtent::All, &params), None);
        // Negative lower bound clamps to 0.
        let neg = SymExtent::span(AffineExpr::constant(-50), AffineExpr::constant(10));
        assert_eq!(
            extent_hull(&neg, &BTreeMap::new()),
            Some(Extent::new(0, 10))
        );
    }

    fn chunk_task(name: &str, i: i64, chunk: i64) -> TaskSpec {
        let iv = AffineExpr::var("i");
        task(name).with_contract(IoContract::new().bind("i", i).writes(
            "shared.h5",
            "/raw",
            SymExtent::span(iv.clone() * chunk, (iv + 1) * chunk),
        ))
    }

    #[test]
    fn catalog_proves_chunk_partition_disjoint() {
        let spec = WorkflowSpec::new("wf").stage(
            "write",
            vec![chunk_task("w0", 0, 4096), chunk_task("w1", 1, 4096)],
        );
        let cat = ContractCatalog::from_spec(&spec);
        assert!(cat.knows("w0") && cat.knows("w1"));
        assert!(cat.provably_disjoint("w0", "w1", "shared.h5"));
        assert_eq!(cat.collision("w0", "w1", "shared.h5"), None);
        // Unknown task defeats the proof.
        assert!(!cat.provably_disjoint("w0", "stranger", "shared.h5"));
    }

    #[test]
    fn overlapping_declarations_collide() {
        let i = AffineExpr::var("i");
        // Both write [i*100, i*100+150): adjacent chunks overlap by 50.
        let mk = |name: &str, idx: i64| {
            task(name).with_contract(IoContract::new().bind("i", idx).writes(
                "f.h5",
                "/d",
                SymExtent::span(i.clone() * 100, i.clone() * 100 + 150),
            ))
        };
        let spec = WorkflowSpec::new("wf").stage("s", vec![mk("a", 0), mk("b", 1)]);
        let cat = ContractCatalog::from_spec(&spec);
        assert!(!cat.provably_disjoint("a", "b", "f.h5"));
        let x = cat.collision("a", "b", "f.h5").unwrap();
        assert_eq!((x.start, x.end), (100, 150));
        let cols = cat.collisions("a", "b", "f.h5");
        assert_eq!(cols.len(), 1);
        assert!(cols[0].write_write);
    }

    #[test]
    fn top_defeats_proofs_but_different_datasets_never_conflict() {
        let all = task("all").with_contract(IoContract::new().writes_all("f.h5", "/d"));
        let one = task("one").with_contract(IoContract::new().writes(
            "f.h5",
            "/d",
            SymExtent::bytes(0, 10),
        ));
        let other = task("other").with_contract(IoContract::new().writes(
            "f.h5",
            "/elsewhere",
            SymExtent::bytes(0, 10),
        ));
        let spec = WorkflowSpec::new("wf").stage("s", vec![all, one, other]);
        let cat = ContractCatalog::from_spec(&spec);
        assert!(!cat.provably_disjoint("all", "one", "f.h5"));
        assert_eq!(
            cat.collision("all", "one", "f.h5"),
            Some(Extent::new(0, 10))
        );
        // Distinct datasets own distinct storage: provably disjoint.
        assert!(cat.provably_disjoint("one", "other", "f.h5"));
    }

    #[test]
    fn footprint_subtraction_and_touch() {
        let mut fp = SymFootprint::default();
        let params = BTreeMap::new();
        fp.add(&SymExtent::bytes(0, 100), &params);
        fp.add(&SymExtent::bytes(200, 300), &params);
        let mut obs = ExtentSet::new();
        obs.insert(Extent::new(50, 250));
        let un = fp.uncovered(&obs);
        assert_eq!(un, vec![Extent::new(100, 200)]);
        assert!(fp.touches(&obs));
        let mut outside = ExtentSet::new();
        outside.insert(Extent::new(100, 200));
        assert!(!fp.touches(&outside));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dayu_workflow::contract::IoContract;
    use dayu_workflow::spec::{TaskSpec, WorkflowSpec};
    use proptest::prelude::*;

    const PARAMS: [&str; 3] = ["i", "j", "k"];

    /// An affine expression over a subset of `PARAMS`, with coefficients
    /// and bases small enough that products over the domains below never
    /// approach i64 overflow.
    fn arb_expr() -> impl Strategy<Value = AffineExpr> {
        (
            -(1i64 << 20)..(1i64 << 20),
            proptest::collection::vec((0usize..PARAMS.len(), -4096i64..4096), 0..3),
        )
            .prop_map(|(base, terms)| {
                terms
                    .into_iter()
                    .fold(AffineExpr::constant(base), |acc, (p, c)| {
                        acc + AffineExpr::var(PARAMS[p]) * c
                    })
            })
    }

    /// Domains for every parameter, so no expression is ever unbound.
    fn arb_domains() -> impl Strategy<Value = BTreeMap<String, ParamDomain>> {
        proptest::collection::vec((-64i64..64, 0i64..64), PARAMS.len()).prop_map(|ranges| {
            PARAMS
                .iter()
                .zip(ranges)
                .map(|(name, (lo, width))| ((*name).to_owned(), ParamDomain::range(lo, lo + width)))
                .collect()
        })
    }

    /// Corner + interior valuations of the domains: the extremes of an
    /// affine function over a box are at the corners, so if the hull holds
    /// there and at a midpoint it holds everywhere.
    fn valuations(domains: &BTreeMap<String, ParamDomain>) -> Vec<BTreeMap<String, i64>> {
        let mut envs = vec![BTreeMap::new()];
        for (name, dom) in domains {
            let picks = [dom.lo, dom.hi, (dom.lo + dom.hi) / 2];
            envs = envs
                .into_iter()
                .flat_map(|env| {
                    picks.map(|v| {
                        let mut e = env.clone();
                        e.insert(name.clone(), v);
                        e
                    })
                })
                .collect();
        }
        envs
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Soundness of the hull: every concrete instantiation of a span
        /// within the declared domains lands inside `extent_hull`.
        #[test]
        fn hull_contains_every_concrete_evaluation(
            (start, end) in (arb_expr(), arb_expr()),
            domains in arb_domains(),
        ) {
            let sym = SymExtent::span(start, end);
            let hull = extent_hull(&sym, &domains);
            for env in valuations(&domains) {
                let concrete = eval_extent(&sym, &env).expect("span is not ⊤");
                if concrete.is_empty() {
                    continue;
                }
                match &hull {
                    None => {} // ⊤ covers everything
                    Some(h) => {
                        prop_assert!(
                            h.start <= concrete.start && concrete.end <= h.end,
                            "hull {h:?} must contain {concrete:?} at {env:?}"
                        );
                    }
                }
            }
        }

        /// Agreement with the concrete interval algebra: for exactly-bound
        /// parameters the catalog's disjointness verdict matches whether
        /// the evaluated extents overlap.
        #[test]
        fn exact_binding_disjointness_matches_concrete_overlap(
            (sa, ea) in (arb_expr(), arb_expr()),
            (sb, eb) in (arb_expr(), arb_expr()),
            vals in proptest::collection::vec(-64i64..64, PARAMS.len()),
        ) {
            let env: BTreeMap<String, i64> = PARAMS
                .iter()
                .zip(&vals)
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect();
            let bind = |mut c: IoContract| {
                for (n, v) in &env {
                    c = c.bind(n.clone(), *v);
                }
                c
            };
            let ext_a = SymExtent::span(sa, ea);
            let ext_b = SymExtent::span(sb, eb);
            let ca = bind(IoContract::new()).writes("f.h5", "/d", ext_a.clone());
            let cb = bind(IoContract::new()).writes("f.h5", "/d", ext_b.clone());
            let spec = WorkflowSpec::new("p").stage(
                "s",
                vec![
                    TaskSpec::new("a", |_| Ok(())).with_contract(ca),
                    TaskSpec::new("b", |_| Ok(())).with_contract(cb),
                ],
            );
            let cat = ContractCatalog::from_spec(&spec);
            let a = eval_extent(&ext_a, &env).expect("span");
            let b = eval_extent(&ext_b, &env).expect("span");
            let concrete_overlap = a.overlaps(&b);
            prop_assert_eq!(
                cat.provably_disjoint("a", "b", "f.h5"),
                !concrete_overlap,
                "exact bindings make the hulls exact: {:?} vs {:?}", a, b
            );
            prop_assert_eq!(cat.collision("a", "b", "f.h5").is_some(), concrete_overlap);
        }
    }
}
