//! Contract-driven lint passes: static footprint analysis and trace
//! conformance.
//!
//! Two consumers of the same declarations:
//!
//! * [`analyze_contracts`] — **pre-run**. Combines the compiled
//!   [`ContractCatalog`] with the spec's stage happens-before to emit
//!   extent races, read-before-write and use-after-dispose findings from
//!   declarations alone, before any VFD is opened or byte written.
//! * [`ConformanceChecker`] — **post-run**. Replays a recorded trace
//!   (streaming, via [`RecordSink`], so `.dtb` and JSONL both work
//!   without materializing the bundle) against the declarations and
//!   reports [`Finding::ContractViolation`]s: raw-data bytes a task
//!   touched outside its declared footprint, and declared clauses the
//!   run never exercised (waste — a stale declaration or dead I/O path).
//!
//! Conformance maps physical trace offsets to dataset-relative logical
//! bytes by anchoring each `(file, dataset)` at the minimum raw-data
//! offset any task touched — exact for the contiguous layouts the
//! bundled workloads use. Coverage is checked against clause *hulls*, an
//! over-approximation that can only under-report, never false-positive.
//!
//! Soundness under partial annotation: tasks without contracts are ⊤.
//! Race findings between two *declared* tasks hold regardless of
//! coverage, but absence-based findings (read-before-write,
//! dangling-file-ref) are only emitted when **every** task declares a
//! contract — otherwise an undeclared task could be the producer the
//! pass failed to see.

use crate::extent::{Extent, ExtentSet, TaskFileExtents};
use crate::hazard::LintConfig;
use crate::hb::TaskHb;
use crate::model::{Finding, Report};
use crate::symbolic::ContractCatalog;
use dayu_trace::{
    AccessType, FileRecord, IoKind, RecordSink, TraceBundle, TraceMeta, VfdRecord, VolRecord,
};
use dayu_workflow::WorkflowSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, BufRead};

/// Static contract pass: declared footprints × stage happens-before.
///
/// Emits, without consulting any trace:
///
/// * [`Finding::ExtentRace`] — two concurrent tasks declare overlapping
///   (or ⊤) footprints on the same dataset, at least one writing;
/// * [`Finding::ReadBeforeWrite`] — a task declares a read of a file
///   whose declared writers are all unordered with it (full contract
///   coverage only);
/// * [`Finding::DanglingFileRef`] — a declared read of a file nothing
///   produces and no external input declares (full coverage **and**
///   `cfg.external_inputs` present, mirroring the plan pass);
/// * [`Finding::UseAfterDispose`] — a task's clause targets a file an
///   ordered-before task declared it disposes of.
pub fn analyze_contracts(spec: &WorkflowSpec, cfg: &LintConfig) -> Report {
    let cat = ContractCatalog::from_spec(spec);
    let mut report = Report::new();
    if cat.is_empty() {
        return report;
    }
    let stages: Vec<Vec<&str>> = spec
        .stages
        .iter()
        .map(|s| s.tasks.iter().map(|t| t.name.as_str()).collect())
        .collect();
    let hb = TaskHb::from_stages(&stages);
    let names: Vec<&str> = cat.task_names().collect();

    // Declared extent races between unordered pairs. Aggregate per
    // (file, pair, kind) like the trace checker: one finding carrying
    // the union span and every implicated dataset.
    for (i, &a) in names.iter().enumerate() {
        let (Some(ia), files_a) = (hb.task(a), cat.files_of(a)) else {
            continue;
        };
        for &b in &names[i + 1..] {
            let Some(ib) = hb.task(b) else {
                continue;
            };
            if !hb.concurrent(ia, ib) {
                continue;
            }
            for file in &files_a {
                let cols = cat.collisions(a, b, file);
                for write_write in [true, false] {
                    let hits: Vec<_> = cols
                        .iter()
                        .filter(|c| c.write_write == write_write)
                        .collect();
                    let (Some(start), Some(end)) = (
                        hits.iter().map(|c| c.extent.start).min(),
                        hits.iter().map(|c| c.extent.end).max(),
                    ) else {
                        continue;
                    };
                    let datasets: BTreeSet<String> =
                        hits.iter().map(|c| c.dataset.clone()).collect();
                    report.push(Finding::ExtentRace {
                        file: (*file).to_owned(),
                        datasets: datasets.into_iter().collect(),
                        first: a.to_owned(),
                        second: b.to_owned(),
                        write_write,
                        start,
                        end,
                    });
                }
            }
        }
    }

    // Absence-based findings require every task to have declared.
    let full_coverage = cat.len() == spec.task_count();
    if full_coverage {
        for &reader in &names {
            let Some(ir) = hb.task(reader) else { continue };
            for file in cat.files_of(reader) {
                if !cat.reads_file(reader, file) || cat.writes_file(reader, file) {
                    continue;
                }
                let writers: Vec<&str> = names
                    .iter()
                    .copied()
                    .filter(|&w| w != reader && cat.writes_file(w, file))
                    .collect();
                if writers.is_empty() {
                    if let Some(ext) = &cfg.external_inputs {
                        if !ext.contains(file) {
                            report.push(Finding::DanglingFileRef {
                                file: file.to_owned(),
                                reader: reader.to_owned(),
                            });
                        }
                    }
                } else if !writers
                    .iter()
                    .any(|w| hb.task(w).is_some_and(|iw| hb.happens_before(iw, ir)))
                {
                    report.push(Finding::ReadBeforeWrite {
                        file: file.to_owned(),
                        reader: reader.to_owned(),
                        writers: writers.iter().map(|w| (*w).to_owned()).collect(),
                    });
                }
            }
        }
    }

    // Use-after-dispose: a clause on a file an ordered-before task
    // declared it drops.
    for &disposer in &names {
        let Some(id) = hb.task(disposer) else {
            continue;
        };
        for file in cat.disposals_of(disposer) {
            for &task in &names {
                if task == disposer {
                    continue;
                }
                let Some(it) = hb.task(task) else { continue };
                if !hb.happens_before(id, it) {
                    continue;
                }
                if cat.footprints(task, file).is_none_or(BTreeMap::is_empty) {
                    continue;
                }
                report.push(Finding::UseAfterDispose {
                    file: file.clone(),
                    reader: task.to_owned(),
                    disposer: disposer.to_owned(),
                });
            }
        }
    }
    report
}

/// Streaming trace-vs-contract conformance. Feed it records (it is a
/// [`RecordSink`], so [`store::read_jsonl`]-style streams and `.dtb`
/// replays both drive it directly), then call
/// [`ConformanceChecker::finish`].
pub struct ConformanceChecker {
    cat: ContractCatalog,
    /// Observed raw-data extents per (task, file, dataset), contracted
    /// tasks only — uncontracted tasks are ⊤ and never violate.
    observed: BTreeMap<(String, String, String), TaskFileExtents>,
    /// Minimum raw-data offset any task touched per (file, dataset):
    /// the physical anchor of logical byte 0.
    base: BTreeMap<(String, String), u64>,
    /// Every task that appears in the trace at all (gates waste
    /// findings: a task that never ran owes nothing).
    seen: BTreeSet<String>,
    /// Raw-data records inspected.
    records: u64,
}

impl ConformanceChecker {
    /// A checker enforcing `spec`'s declared contracts.
    pub fn new(spec: &WorkflowSpec) -> Self {
        Self::with_catalog(ContractCatalog::from_spec(spec))
    }

    /// A checker over an already-compiled catalog.
    pub fn with_catalog(cat: ContractCatalog) -> Self {
        Self {
            cat,
            observed: BTreeMap::new(),
            base: BTreeMap::new(),
            seen: BTreeSet::new(),
            records: 0,
        }
    }

    /// Number of raw-data records inspected so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Folds one VFD record in.
    pub fn observe(&mut self, rec: &VfdRecord) {
        self.seen.insert(rec.task.as_str().to_owned());
        if rec.access != AccessType::RawData || !rec.kind.moves_data() || rec.len == 0 {
            return;
        }
        // Unattributed raw I/O (global-heap payloads, superblock bytes)
        // carries the File-Metadata pseudo-object: contracts describe
        // dataset footprints, not file plumbing, so it is out of scope.
        if rec.object == dayu_trace::ObjectKey::file_metadata() {
            return;
        }
        self.records += 1;
        let file = rec.file.as_str();
        let dataset = rec.object.as_str();
        self.base
            .entry((file.to_owned(), dataset.to_owned()))
            .and_modify(|b| *b = (*b).min(rec.offset))
            .or_insert(rec.offset);
        if !self.cat.knows(rec.task.as_str()) {
            return;
        }
        let slot = self
            .observed
            .entry((
                rec.task.as_str().to_owned(),
                file.to_owned(),
                dataset.to_owned(),
            ))
            .or_default();
        let e = Extent::of(rec.offset, rec.len);
        match rec.kind {
            IoKind::Write => slot.writes.insert(e),
            _ => slot.reads.insert(e),
        }
    }

    fn shift(set: &ExtentSet, base: u64) -> ExtentSet {
        let mut out = ExtentSet::new();
        for r in set.runs() {
            out.insert(Extent::new(r.start - base, r.end - base));
        }
        out
    }

    /// Verdict: out-of-footprint accesses and never-exercised clauses.
    pub fn finish(&self) -> Report {
        let mut report = Report::new();
        // Out-of-footprint bytes.
        for ((task, file, dataset), obs) in &self.observed {
            let base = *self
                .base
                .get(&(file.clone(), dataset.clone()))
                .unwrap_or(&0);
            let reads = Self::shift(&obs.reads, base);
            let writes = Self::shift(&obs.writes, base);
            let fp = self.cat.footprint(task, file, dataset);
            // Reads are legal anywhere the task declared *any* access;
            // writes only where it declared writes.
            let (write_uncovered, read_uncovered) = match fp {
                Some(pair) => {
                    let wu = pair.writes.uncovered(&writes);
                    let ru = if pair.reads.top || pair.writes.top {
                        Vec::new()
                    } else {
                        let mut both = pair.reads.hulls.clone();
                        for r in pair.writes.hulls.runs() {
                            both.insert(*r);
                        }
                        reads.subtract(&both)
                    };
                    (wu, ru)
                }
                // A contracted task touching a (file, dataset) it never
                // declared: everything is out of footprint.
                None => (writes.runs().to_vec(), reads.runs().to_vec()),
            };
            for (access, uncovered) in [("write", write_uncovered), ("read", read_uncovered)] {
                let (Some(start), Some(end)) = (
                    uncovered.iter().map(|e| e.start).min(),
                    uncovered.iter().map(|e| e.end).max(),
                ) else {
                    continue;
                };
                report.push(Finding::ContractViolation {
                    task: task.clone(),
                    file: file.clone(),
                    dataset: dataset.clone(),
                    access: access.to_owned(),
                    start,
                    end,
                    undeclared: true,
                });
            }
        }
        // Declared-but-untouched waste, for tasks that did run.
        let names: Vec<String> = self.cat.task_names().map(str::to_owned).collect();
        for task in &names {
            if !self.seen.contains(task) {
                continue;
            }
            for file in self.cat.files_of(task) {
                let file = file.to_owned();
                let Some(fps) = self.cat.footprints(task, &file) else {
                    continue;
                };
                for (dataset, pair) in fps {
                    let key = (task.clone(), file.clone(), dataset.clone());
                    let base = *self
                        .base
                        .get(&(file.clone(), dataset.clone()))
                        .unwrap_or(&0);
                    let (reads, writes) = match self.observed.get(&key) {
                        Some(obs) => (
                            Self::shift(&obs.reads, base),
                            Self::shift(&obs.writes, base),
                        ),
                        None => (ExtentSet::new(), ExtentSet::new()),
                    };
                    for (access, fp, obs) in [
                        ("read", &pair.reads, &reads),
                        ("write", &pair.writes, &writes),
                    ] {
                        if fp.is_empty() || fp.touches(obs) {
                            continue;
                        }
                        let span = if fp.top {
                            Extent::new(0, 0)
                        } else {
                            fp.span().unwrap_or(Extent::new(0, 0))
                        };
                        report.push(Finding::ContractViolation {
                            task: task.clone(),
                            file: file.clone(),
                            dataset: dataset.clone(),
                            access: access.to_owned(),
                            start: span.start,
                            end: span.end,
                            undeclared: false,
                        });
                    }
                }
            }
        }
        report
    }
}

impl RecordSink for ConformanceChecker {
    fn meta(&mut self, _meta: TraceMeta) -> io::Result<()> {
        Ok(())
    }
    fn vol(&mut self, _rec: VolRecord) -> io::Result<()> {
        Ok(())
    }
    fn vfd(&mut self, rec: VfdRecord) -> io::Result<()> {
        self.observe(&rec);
        Ok(())
    }
    fn file(&mut self, _rec: FileRecord) -> io::Result<()> {
        Ok(())
    }
}

/// Conformance over an in-memory bundle.
pub fn check_conformance(bundle: &TraceBundle, spec: &WorkflowSpec) -> Report {
    let mut c = ConformanceChecker::new(spec);
    for r in &bundle.vfd {
        c.observe(r);
    }
    c.finish()
}

/// Streaming conformance over a serialized trace (JSONL or `.dtb`,
/// auto-detected by the store reader) — the bundle is never
/// materialized. Returns the report and the raw-data record count.
pub fn check_conformance_stream<R: BufRead>(
    reader: R,
    spec: &WorkflowSpec,
) -> io::Result<(Report, u64)> {
    let mut c = ConformanceChecker::new(spec);
    TraceBundle::stream(reader, &mut c)?;
    let n = c.records();
    Ok((c.finish(), n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_trace::{FileKey, ObjectKey, TaskKey, Timestamp};
    use dayu_workflow::contract::{AffineExpr, IoContract, SymExtent};
    use dayu_workflow::spec::TaskSpec;

    const CHUNK: i64 = 4096;

    fn chunk_writer(name: &str, idx: i64, overlap: i64) -> TaskSpec {
        let i = AffineExpr::var("i");
        TaskSpec::new(name, |_| Ok(())).with_contract(IoContract::new().bind("i", idx).writes(
            "shared.h5",
            "/raw",
            SymExtent::span(i.clone() * CHUNK, (i + 1) * CHUNK + overlap),
        ))
    }

    fn reducer(name: &str) -> TaskSpec {
        TaskSpec::new(name, |_| Ok(()))
            .with_contract(IoContract::new().reads_all("shared.h5", "/raw"))
    }

    #[test]
    fn disjoint_partition_is_statically_clean() {
        let spec = WorkflowSpec::new("wf")
            .stage(
                "write",
                vec![chunk_writer("w0", 0, 0), chunk_writer("w1", 1, 0)],
            )
            .stage("reduce", vec![reducer("sum")]);
        let report = analyze_contracts(&spec, &LintConfig::default());
        assert!(report.is_clean(), "unexpected: {report}");
    }

    #[test]
    fn overlapping_declarations_race_statically() {
        // Each writer spills 64 bytes into its neighbor's chunk.
        let spec = WorkflowSpec::new("wf").stage(
            "write",
            vec![chunk_writer("w0", 0, 64), chunk_writer("w1", 1, 64)],
        );
        let report = analyze_contracts(&spec, &LintConfig::default());
        assert_eq!(report.counts().get("extent-race"), Some(&1), "{report}");
        let Finding::ExtentRace {
            first,
            second,
            write_write,
            start,
            end,
            ..
        } = &report.findings[0]
        else {
            panic!("expected ExtentRace, got {}", report.findings[0]);
        };
        assert_eq!((first.as_str(), second.as_str()), ("w0", "w1"));
        assert!(*write_write);
        assert_eq!((*start, *end), (CHUNK as u64, CHUNK as u64 + 64));
        // The same declarations in *ordered* stages are race-free.
        let ordered = WorkflowSpec::new("wf")
            .stage("a", vec![chunk_writer("w0", 0, 64)])
            .stage("b", vec![chunk_writer("w1", 1, 64)]);
        assert!(analyze_contracts(&ordered, &LintConfig::default()).is_clean());
    }

    #[test]
    fn read_before_write_and_dispose_from_declarations() {
        // Reader runs concurrently with its producer.
        let producer = TaskSpec::new("producer", |_| Ok(()))
            .with_contract(IoContract::new().writes_all("out.h5", "/d"));
        let reader = TaskSpec::new("reader", |_| Ok(()))
            .with_contract(IoContract::new().reads_all("out.h5", "/d"));
        let spec = WorkflowSpec::new("wf").stage("s", vec![producer.clone(), reader.clone()]);
        let report = analyze_contracts(&spec, &LintConfig::default());
        assert_eq!(
            report.counts().get("read-before-write"),
            Some(&1),
            "{report}"
        );

        // Ordered producer → reader is clean; adding a disposer between
        // them flags the late reader.
        let disposer = TaskSpec::new("cleanup", |_| Ok(()))
            .with_contract(IoContract::new().disposes("out.h5"));
        let spec = WorkflowSpec::new("wf")
            .stage("produce", vec![producer])
            .stage("drop", vec![disposer])
            .stage("read", vec![reader]);
        let report = analyze_contracts(&spec, &LintConfig::default());
        assert_eq!(
            report.counts().get("use-after-dispose"),
            Some(&1),
            "{report}"
        );
    }

    #[test]
    fn partial_coverage_suppresses_absence_findings() {
        let reader = TaskSpec::new("reader", |_| Ok(()))
            .with_contract(IoContract::new().reads_all("out.h5", "/d"));
        let mystery = TaskSpec::new("mystery", |_| Ok(())); // no contract
        let spec = WorkflowSpec::new("wf").stage("s", vec![reader, mystery]);
        // "mystery" could be the producer — no read-before-write claim.
        let report = analyze_contracts(&spec, &LintConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    fn rec(task: &str, kind: IoKind, offset: u64, len: u64) -> VfdRecord {
        VfdRecord {
            task: TaskKey::new(task),
            file: FileKey::new("shared.h5"),
            kind,
            offset,
            len,
            access: AccessType::RawData,
            object: ObjectKey::new("/raw"),
            start: Timestamp(0),
            end: Timestamp(1),
        }
    }

    #[test]
    fn conformance_flags_out_of_footprint_writes_and_waste() {
        let spec = WorkflowSpec::new("wf").stage(
            "write",
            vec![chunk_writer("w0", 0, 0), chunk_writer("w1", 1, 0)],
        );
        let mut checker = ConformanceChecker::new(&spec);
        // Physical dataset base at 512 — logical 0 anchors there.
        let base = 512;
        checker.observe(&rec("w0", IoKind::Write, base, CHUNK as u64));
        // w1 writes its own chunk plus 64 bytes of w0's.
        checker.observe(&rec(
            "w1",
            IoKind::Write,
            base + CHUNK as u64 - 64,
            CHUNK as u64 + 64,
        ));
        let report = checker.finish();
        assert_eq!(
            report.counts().get("contract-violation"),
            Some(&1),
            "{report}"
        );
        let Finding::ContractViolation {
            task,
            access,
            start,
            end,
            undeclared,
            ..
        } = &report.findings[0]
        else {
            panic!("wrong finding");
        };
        assert_eq!(task, "w1");
        assert_eq!(access, "write");
        assert!(*undeclared);
        assert_eq!((*start, *end), (CHUNK as u64 - 64, CHUNK as u64));

        // A run where w1 never writes at all: its clause is waste.
        let mut checker = ConformanceChecker::new(&spec);
        checker.observe(&rec("w0", IoKind::Write, base, CHUNK as u64));
        checker.observe(&rec("w1", IoKind::Open, 0, 0)); // ran, did no data I/O
        let report = checker.finish();
        assert_eq!(report.len(), 1, "{report}");
        let Finding::ContractViolation {
            task, undeclared, ..
        } = &report.findings[0]
        else {
            panic!("wrong finding");
        };
        assert_eq!(task, "w1");
        assert!(!*undeclared, "declared-but-untouched");
    }

    #[test]
    fn conformant_run_is_clean_and_top_covers_everything() {
        let spec = WorkflowSpec::new("wf")
            .stage(
                "write",
                vec![chunk_writer("w0", 0, 0), chunk_writer("w1", 1, 0)],
            )
            .stage("reduce", vec![reducer("sum")]);
        let mut checker = ConformanceChecker::new(&spec);
        checker.observe(&rec("w0", IoKind::Write, 0, CHUNK as u64));
        checker.observe(&rec("w1", IoKind::Write, CHUNK as u64, CHUNK as u64));
        checker.observe(&rec("sum", IoKind::Read, 0, 2 * CHUNK as u64));
        let report = checker.finish();
        assert!(report.is_clean(), "{report}");
        assert_eq!(checker.records(), 3);
    }

    #[test]
    fn uncontracted_tasks_never_violate() {
        let spec = WorkflowSpec::new("wf").stage("s", vec![TaskSpec::new("anon", |_| Ok(()))]);
        let mut checker = ConformanceChecker::new(&spec);
        checker.observe(&rec("anon", IoKind::Write, 0, 1 << 20));
        assert!(checker.finish().is_clean());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use dayu_workloads::corner_case;
    use proptest::prelude::*;

    proptest! {
        // Each case records a full workload run; keep the count modest.
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The planted-defect pair across randomized shapes: overlapping
        /// declarations are refuted statically with no trace at all, and
        /// an out-of-contract write that static analysis cannot see (the
        /// declarations are a clean partition) is caught by replaying the
        /// recorded trace, with the spill localized to the byte.
        #[test]
        fn planted_defects_are_caught_statically_and_dynamically(
            writers in 2usize..5,
            overlap in 1u64..512,
            spill in 1u64..=corner_case::CHUNK_BYTES / 2,
        ) {
            let cfg = LintConfig::default();

            let racy = corner_case::racy_workflow(writers, overlap);
            let report = analyze_contracts(&racy, &cfg);
            prop_assert!(
                report.findings.iter().any(|f| matches!(
                    f,
                    Finding::ExtentRace { file, write_write: true, .. }
                        if file == corner_case::SHARED_FILE
                )),
                "static pass refutes the overlapping partition: {:?}",
                report.findings
            );

            let lying = corner_case::violating_workflow(writers, spill);
            prop_assert!(
                analyze_contracts(&lying, &cfg).is_clean(),
                "the liar's declarations are a clean partition"
            );
            let fs = dayu_vfd::MemFs::new();
            let run = dayu_workflow::record(&lying, &fs).unwrap();
            let report = check_conformance(&run.bundle, &lying);
            prop_assert!(
                report.findings.iter().any(|f| matches!(
                    f,
                    Finding::ContractViolation { task, undeclared: true, start, end, .. }
                        if task == "chunk_writer_0"
                            && *start == corner_case::CHUNK_BYTES
                            && *end == corner_case::CHUNK_BYTES + spill
                )),
                "conformance localizes the spill: {:?}",
                report.findings
            );
        }
    }
}
