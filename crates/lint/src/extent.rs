//! Byte-extent machinery: half-open extents, an interval tree over file
//! address space, merged extent sets, and the per-(task, file) extent
//! catalog the verifier consults.
//!
//! DaYu's central observation is that the logical-dataset → file-address
//! translation makes conflicts decidable at *byte* granularity: two tasks
//! touching one file are only actually in conflict where their address
//! ranges intersect. Everything in this module works on the VFD layer's
//! `[offset, offset + len)` ranges; metadata and raw-data accesses are kept
//! apart by the callers (the race detector only indexes raw data — shared
//! metadata like the superblock is serialized by the library, not raced).

use dayu_trace::store::TraceBundle;
use dayu_trace::vfd::AccessType;
use dayu_trace::{FileKey, IoKind, TaskKey};
use std::collections::BTreeMap;

/// A half-open byte range `[start, end)` in a file's address space.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub struct Extent {
    /// First byte covered.
    pub start: u64,
    /// One past the last byte covered.
    pub end: u64,
}

impl Extent {
    /// An extent from explicit bounds. `end < start` is normalized to empty.
    pub fn new(start: u64, end: u64) -> Self {
        Self {
            start,
            end: end.max(start),
        }
    }

    /// The extent of an I/O op at `offset` spanning `len` bytes.
    pub fn of(offset: u64, len: u64) -> Self {
        Self {
            start: offset,
            end: offset.saturating_add(len),
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the extent covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Whether two extents share at least one byte (empty extents never
    /// overlap anything).
    pub fn overlaps(&self, other: &Extent) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The shared byte range, if any.
    pub fn intersection(&self, other: &Extent) -> Option<Extent> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Extent { start, end })
    }
}

/// A static interval tree over byte extents: build once from a batch of
/// `(extent, value)` pairs, then answer stabbing/overlap queries in
/// `O(log n + k)`.
///
/// Layout: entries sorted by start form an implicit balanced BST (midpoint
/// recursion); each node is augmented with the maximum `end` in its
/// subtree, which prunes whole subtrees whose extents all finish before the
/// query begins.
#[derive(Clone, Debug)]
pub struct IntervalTree<T> {
    items: Vec<(Extent, T)>,
    max_end: Vec<u64>,
}

impl<T> IntervalTree<T> {
    /// Builds the tree. Empty extents are kept but never match a query.
    pub fn build(mut items: Vec<(Extent, T)>) -> Self {
        items.sort_by_key(|(e, _)| (e.start, e.end));
        let mut max_end = vec![0u64; items.len()];
        fn augment<T>(items: &[(Extent, T)], max_end: &mut [u64], lo: usize, hi: usize) -> u64 {
            if lo >= hi {
                return 0;
            }
            let mid = lo + (hi - lo) / 2;
            let mut m = items[mid].0.end;
            m = m.max(augment(items, max_end, lo, mid));
            m = m.max(augment(items, max_end, mid + 1, hi));
            max_end[mid] = m;
            m
        }
        let n = items.len();
        augment(&items, &mut max_end, 0, n);
        Self { items, max_end }
    }

    /// Number of stored extents.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the tree holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Calls `f` for every stored extent overlapping `q`. The references
    /// handed to `f` borrow from the tree itself, so they may be kept.
    pub fn for_each_overlap<'a>(&'a self, q: Extent, mut f: impl FnMut(&'a Extent, &'a T)) {
        self.walk(0, self.items.len(), q, &mut f);
    }

    fn walk<'a>(&'a self, lo: usize, hi: usize, q: Extent, f: &mut impl FnMut(&'a Extent, &'a T)) {
        if lo >= hi || q.is_empty() {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        // Every extent in this subtree ends at or before the query start:
        // nothing here can overlap.
        if self.max_end[mid] <= q.start {
            return;
        }
        self.walk(lo, mid, q, f);
        let (e, v) = &self.items[mid];
        if e.overlaps(&q) {
            f(e, v);
        }
        // Right-subtree starts are all >= this node's start; once that is
        // past the query end, no right descendant can overlap.
        if e.start < q.end {
            self.walk(mid + 1, hi, q, f);
        }
    }

    /// First stored extent overlapping `q`, if any.
    pub fn any_overlap(&self, q: Extent) -> Option<(Extent, &T)> {
        let mut hit = None;
        self.for_each_overlap(q, |e, v| {
            if hit.is_none() {
                hit = Some((*e, v));
            }
        });
        hit
    }
}

/// A set of bytes represented as sorted, disjoint, merged extents — the
/// coverage a task accumulated over a dataset or file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtentSet {
    runs: Vec<Extent>,
}

impl ExtentSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `e`, merging with any overlapping or adjacent runs.
    pub fn insert(&mut self, e: Extent) {
        if e.is_empty() {
            return;
        }
        // First run that could touch e: the last run starting at or before
        // e.end (runs are sorted by start).
        let i = self.runs.partition_point(|r| r.end < e.start);
        if i == self.runs.len() || self.runs[i].start > e.end {
            self.runs.insert(i, e);
            return;
        }
        let mut merged = e;
        let mut j = i;
        while j < self.runs.len() && self.runs[j].start <= merged.end {
            merged.start = merged.start.min(self.runs[j].start);
            merged.end = merged.end.max(self.runs[j].end);
            j += 1;
        }
        self.runs.splice(i..j, [merged]);
    }

    /// The merged runs, sorted by start.
    pub fn runs(&self) -> &[Extent] {
        &self.runs
    }

    /// Whether the set covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of bytes covered.
    pub fn total_len(&self) -> u64 {
        self.runs.iter().map(Extent::len).sum()
    }

    /// First byte range shared with `e`, if any.
    pub fn overlap_with(&self, e: Extent) -> Option<Extent> {
        let i = self.runs.partition_point(|r| r.end <= e.start);
        self.runs.get(i).and_then(|r| r.intersection(&e))
    }

    /// First byte range shared with `other`, if any (two-pointer sweep).
    pub fn overlap(&self, other: &ExtentSet) -> Option<Extent> {
        let (mut i, mut j) = (0, 0);
        while i < self.runs.len() && j < other.runs.len() {
            if let Some(x) = self.runs[i].intersection(&other.runs[j]) {
                return Some(x);
            }
            if self.runs[i].end <= other.runs[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        None
    }

    /// Whether every byte of `other` is also covered here.
    pub fn covers(&self, other: &ExtentSet) -> bool {
        other.runs.iter().all(|r| {
            let i = self.runs.partition_point(|s| s.end <= r.start);
            self.runs
                .get(i)
                .is_some_and(|s| s.start <= r.start && r.end <= s.end)
        })
    }

    /// Bytes of `self` that `cover` does not cover, as maximal runs in
    /// ascending order. Empty iff `cover.covers(self)`.
    pub fn subtract(&self, cover: &ExtentSet) -> Vec<Extent> {
        let mut out = Vec::new();
        let mut j = 0;
        for r in &self.runs {
            let mut cursor = r.start;
            while j < cover.runs.len() && cover.runs[j].end <= cursor {
                j += 1;
            }
            let mut k = j;
            while cursor < r.end {
                match cover.runs.get(k) {
                    Some(c) if c.start < r.end => {
                        if c.start > cursor {
                            out.push(Extent::new(cursor, c.start));
                        }
                        cursor = cursor.max(c.end);
                        k += 1;
                    }
                    _ => {
                        out.push(Extent::new(cursor, r.end));
                        break;
                    }
                }
            }
        }
        out
    }
}

/// Raw-data extents one task touched in one file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TaskFileExtents {
    /// Bytes the task read (raw data only).
    pub reads: ExtentSet,
    /// Bytes the task wrote (raw data only).
    pub writes: ExtentSet,
}

/// Per-(task, file) raw-data extent coverage extracted from a recorded
/// trace — the address-level ground truth the transform verifier uses to
/// prove two tasks a rewrite makes concurrent cannot actually collide.
///
/// Metadata accesses are deliberately absent: the library serializes its
/// own metadata, and indexing it would re-create the whole-file
/// false-positive class this catalog exists to kill.
#[derive(Clone, Debug, Default)]
pub struct ExtentCatalog {
    map: BTreeMap<TaskKey, BTreeMap<FileKey, TaskFileExtents>>,
}

impl ExtentCatalog {
    /// Builds the catalog from every raw-data read/write in `bundle`.
    pub fn from_bundle(bundle: &TraceBundle) -> Self {
        let mut cat = Self::default();
        for r in &bundle.vfd {
            if r.access != AccessType::RawData {
                continue;
            }
            let e = Extent::of(r.offset, r.len);
            match r.kind {
                IoKind::Write => cat.record(&r.task, &r.file, e, true),
                IoKind::Read => cat.record(&r.task, &r.file, e, false),
                _ => {}
            }
        }
        cat
    }

    fn record(&mut self, task: &TaskKey, file: &FileKey, e: Extent, write: bool) {
        let slot = self
            .map
            .entry(task.clone())
            .or_default()
            .entry(file.clone())
            .or_default();
        if write {
            slot.writes.insert(e);
        } else {
            slot.reads.insert(e);
        }
    }

    /// Whether the catalog observed `task` at all. Tasks a transform
    /// synthesizes (stage-in copies, say) are unknown, and the verifier
    /// must not treat their extents as empty-and-therefore-safe.
    pub fn knows(&self, task: &str) -> bool {
        self.map.contains_key(&TaskKey::new(task))
    }

    /// The raw extents `task` touched in `file`, if recorded.
    pub fn extents(&self, task: &str, file: &str) -> Option<&TaskFileExtents> {
        self.map.get(&TaskKey::new(task))?.get(&FileKey::new(file))
    }

    /// Byte range where two tasks' accesses to `file` actually collide
    /// (write-write or write-read in either direction), or `None` when
    /// their extents are disjoint or either task/file is unknown.
    pub fn collision(&self, a: &str, b: &str, file: &str) -> Option<Extent> {
        let xa = self.extents(a, file)?;
        let xb = self.extents(b, file)?;
        xa.writes
            .overlap(&xb.writes)
            .or_else(|| xa.writes.overlap(&xb.reads))
            .or_else(|| xa.reads.overlap(&xb.writes))
    }

    /// Whether both tasks are known and their raw extents on `file` are
    /// provably disjoint — the certificate that lets the verifier accept a
    /// rewrite making them concurrent on that file.
    pub fn provably_disjoint(&self, a: &str, b: &str, file: &str) -> bool {
        match (self.extents(a, file), self.extents(b, file)) {
            (Some(xa), Some(xb)) => {
                xa.writes.overlap(&xb.writes).is_none()
                    && xa.writes.overlap(&xb.reads).is_none()
                    && xa.reads.overlap(&xb.writes).is_none()
            }
            // A task that never touched the file raw-wise cannot collide
            // on it — but only if the catalog actually observed the task.
            (None, _) => self.knows(a) && self.knows(b),
            (_, None) => self.knows(a) && self.knows(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_basics() {
        let a = Extent::of(10, 10); // [10, 20)
        let b = Extent::new(15, 25);
        assert!(a.overlaps(&b));
        assert_eq!(a.intersection(&b), Some(Extent::new(15, 20)));
        assert!(!a.overlaps(&Extent::new(20, 30))); // half-open: touching is disjoint
        assert!(Extent::new(5, 5).is_empty());
        assert!(!Extent::new(5, 5).overlaps(&a));
        assert_eq!(Extent::new(9, 3), Extent::new(9, 9)); // normalized
    }

    #[test]
    fn extent_set_merges_and_covers() {
        let mut s = ExtentSet::new();
        s.insert(Extent::new(0, 10));
        s.insert(Extent::new(20, 30));
        s.insert(Extent::new(10, 20)); // bridges the gap
        assert_eq!(s.runs(), &[Extent::new(0, 30)]);
        assert_eq!(s.total_len(), 30);

        let mut t = ExtentSet::new();
        t.insert(Extent::new(5, 12));
        t.insert(Extent::new(25, 28));
        assert!(s.covers(&t));
        assert!(!t.covers(&s));
        assert_eq!(s.overlap(&t), Some(Extent::new(5, 12)));
        assert_eq!(
            s.overlap_with(Extent::new(29, 40)),
            Some(Extent::new(29, 30))
        );
        assert_eq!(s.overlap_with(Extent::new(30, 40)), None);
    }

    #[test]
    fn interval_tree_finds_all_overlaps() {
        let items = vec![
            (Extent::new(0, 5), "a"),
            (Extent::new(3, 9), "b"),
            (Extent::new(10, 12), "c"),
            (Extent::new(8, 20), "d"),
            (Extent::new(30, 31), "e"),
        ];
        let tree = IntervalTree::build(items);
        let mut hits = Vec::new();
        tree.for_each_overlap(Extent::new(4, 11), |_, v| hits.push(*v));
        hits.sort_unstable();
        assert_eq!(hits, vec!["a", "b", "c", "d"]);
        assert!(tree.any_overlap(Extent::new(21, 30)).is_none());
        assert_eq!(
            tree.any_overlap(Extent::new(30, 32)).map(|(_, v)| *v),
            Some("e")
        );
        assert!(tree.any_overlap(Extent::new(4, 4)).is_none()); // empty query
    }

    #[test]
    fn catalog_separates_metadata_and_judges_disjointness() {
        use dayu_trace::vfd::VfdRecord;
        use dayu_trace::{ObjectKey, Timestamp};
        let mut b = TraceBundle::new("wf");
        let mut op = |task: &str, kind: IoKind, access: AccessType, offset: u64, len: u64| {
            b.vfd.push(VfdRecord {
                task: TaskKey::new(task),
                file: FileKey::new("f.h5"),
                kind,
                offset,
                len,
                access,
                object: ObjectKey::new("/d"),
                start: Timestamp(0),
                end: Timestamp(1),
            });
        };
        op("a", IoKind::Write, AccessType::RawData, 0, 100);
        op("b", IoKind::Write, AccessType::RawData, 100, 100);
        // Overlapping *metadata* writes must not register.
        op("a", IoKind::Write, AccessType::Metadata, 0, 8);
        op("b", IoKind::Write, AccessType::Metadata, 0, 8);
        op("c", IoKind::Read, AccessType::RawData, 50, 10);
        let cat = ExtentCatalog::from_bundle(&b);
        assert!(cat.provably_disjoint("a", "b", "f.h5"));
        assert!(cat.collision("a", "b", "f.h5").is_none());
        assert_eq!(cat.collision("a", "c", "f.h5"), Some(Extent::new(50, 60)));
        assert!(!cat.provably_disjoint("a", "ghost", "f.h5"));
        assert!(cat.knows("c"));
        assert!(!cat.knows("ghost"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_extents(n: usize) -> impl Strategy<Value = Vec<Extent>> {
        prop::collection::vec((0u64..500, 0u64..60), 0..n)
            .prop_map(|v| v.into_iter().map(|(o, l)| Extent::of(o, l)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The interval tree reports exactly the overlaps the naive O(n²)
        /// oracle finds, for arbitrary extents and queries.
        #[test]
        fn tree_matches_naive_oracle(
            items in arb_extents(40),
            queries in arb_extents(12),
        ) {
            let tree = IntervalTree::build(
                items.iter().copied().enumerate().map(|(i, e)| (e, i)).collect(),
            );
            for q in queries {
                let mut got: Vec<usize> = Vec::new();
                tree.for_each_overlap(q, |_, &i| got.push(i));
                got.sort_unstable();
                let mut want: Vec<usize> = items
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.overlaps(&q))
                    .map(|(i, _)| i)
                    .collect();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }

        /// ExtentSet coverage equals the union of inserted bytes: membership
        /// of any probe point matches the naive any-extent-contains check,
        /// and runs stay sorted, disjoint and non-adjacent.
        #[test]
        fn extent_set_matches_union_semantics(
            items in arb_extents(30),
            probes in prop::collection::vec(0u64..600, 24),
        ) {
            let mut s = ExtentSet::new();
            for e in &items {
                s.insert(*e);
            }
            for w in s.runs().windows(2) {
                prop_assert!(w[0].end < w[1].start, "runs must stay disjoint and gapped");
            }
            for p in probes {
                let want = items.iter().any(|e| e.start <= p && p < e.end);
                let got = s.overlap_with(Extent::new(p, p + 1)).is_some();
                prop_assert_eq!(got, want, "probe {}", p);
            }
            prop_assert_eq!(
                s.total_len(),
                s.runs().iter().map(Extent::len).sum::<u64>()
            );
        }
    }
}
