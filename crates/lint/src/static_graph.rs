//! Static dataflow prediction: the contract-derived sFTG/sSDG.
//!
//! [`StaticPrediction::from_spec`] runs an abstract interpretation over
//! every task's declared [`IoContract`](dayu_workflow::IoContract) and
//! constructs the graphs the analyzer would otherwise have to *record* —
//! without opening a single VFD:
//!
//! * the **sFTG** (static File-Task Graph): task↔file read/write edges;
//! * the **sSDG** (static Semantic Dataflow Graph): the dataset layer
//!   between tasks and files, with the same node-label and edge-direction
//!   conventions as [`dayu_analyzer::build_sdg`] (read = dataset→task
//!   `ReadOnly`, write = task→dataset `WriteOnly`, containment =
//!   dataset→file `Structural`) so recorded and predicted graphs diff
//!   structurally;
//! * **producer→consumer flows**: for every dataset, each declared writer
//!   feeds each declared reader of a *later* stage whose symbolic extent
//!   hulls may overlap — the stage barrier of
//!   [`WorkflowSpec`](dayu_workflow::WorkflowSpec) supplies the ordering,
//!   so the flow relation is acyclic by construction;
//! * **dataset live ranges**: the stage span from a dataset's first
//!   declared producer to its last declared toucher, sized by the resolved
//!   dataset extent — the input to the cost model's working-set analysis.
//!
//! ## Byte resolution
//!
//! Contract clauses with bound affine extents resolve exactly (the hull
//! of an exactly-bound span *is* the span). A ⊤ clause (`reads_all` /
//! `writes_all`, or an unbound parameter) declares "the whole dataset"
//! without saying how big that is; it resolves to the widest concrete
//! hull any task declares for the same dataset, and when *nobody* bounds
//! it, to the abstract unit [`TOP_FOOTPRINT_BYTES`]. Costs built on ⊤
//! resolutions are therefore *relative* (plan A vs plan B under the same
//! assumption), while bound-extent costs are absolute predictions.
//!
//! ## Soundness check
//!
//! [`StaticPrediction::compare`] validates a recorded SDG against the
//! prediction, restricted to edges that moved **raw data**
//! (`data_access_count > 0`) between Task and Dataset nodes — metadata
//! brushes are deliberately out of scope, because contracts declare data
//! footprints and a metadata-only touch is exactly the access pattern a
//! well-written contract *omits* (see the ddmd training contract). A
//! recorded raw-data edge with no predicted counterpart is a contract
//! hole ([`Finding::IncompleteContract`]); a recorded task the spec never
//! declares is a structural mismatch ([`Finding::GraphMismatch`]).

use crate::extent::Extent;
use crate::model::{Finding, Report};
use crate::symbolic::ContractCatalog;
use dayu_analyzer::build::dataset_label;
use dayu_analyzer::graph::{EdgeStats, Graph, GraphKind, NodeKind, Operation};
use dayu_sim::{SimOp, SimTask};
use dayu_trace::time::Timestamp;
use dayu_workflow::WorkflowSpec;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Abstract byte size assigned to a ⊤ footprint no declaration bounds:
/// the "one unit of whole-dataset traffic" every unbounded clause costs.
pub const TOP_FOOTPRINT_BYTES: u64 = 1 << 20;

/// One predicted dataset access of one task, with resolved byte runs.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct TaskAccess {
    /// File holding the dataset.
    pub file: String,
    /// Dataset path within the file.
    pub dataset: String,
    /// Predicted raw bytes read.
    pub read_bytes: u64,
    /// Predicted raw bytes written.
    pub write_bytes: u64,
    /// Resolved contiguous read runs (one physical sweep each).
    pub read_runs: Vec<Extent>,
    /// Resolved contiguous write runs.
    pub write_runs: Vec<Extent>,
}

/// One task of the predicted workflow.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct PredictedTask {
    /// Task name.
    pub name: String,
    /// Stage index within the spec.
    pub stage: usize,
    /// Modeled compute time carried over from the spec.
    pub compute_ns: u64,
    /// Whether the task declared a (non-empty) contract. An uncontracted
    /// task predicts *nothing* — every raw byte it moves at run time is a
    /// prediction hole.
    pub contracted: bool,
    /// Predicted dataset accesses, in (file, dataset) order.
    pub accesses: Vec<TaskAccess>,
}

impl PredictedTask {
    /// Total predicted bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.accesses.iter().map(|a| a.read_bytes).sum()
    }

    /// Total predicted bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.accesses.iter().map(|a| a.write_bytes).sum()
    }
}

/// One predicted producer→consumer dataflow edge.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct PredictedFlow {
    /// The writing task.
    pub producer: String,
    /// The reading task (in a strictly later stage).
    pub consumer: String,
    /// File holding the dataset the flow moves through.
    pub file: String,
    /// The dataset.
    pub dataset: String,
    /// Predicted bytes the consumer may take from the producer.
    pub bytes: u64,
}

/// The stage span over which a dataset is live.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct LiveRange {
    /// File holding the dataset.
    pub file: String,
    /// The dataset.
    pub dataset: String,
    /// First stage that declares a write (or, failing that, any access).
    pub born: usize,
    /// Last stage that declares any access.
    pub dies: usize,
    /// Resolved dataset extent in bytes.
    pub bytes: u64,
}

/// Outcome of diffing a recorded SDG against the prediction.
#[derive(Clone, Debug, Default)]
pub struct SdgComparison {
    /// Recorded raw-data task↔dataset edges the prediction contains.
    pub matched: usize,
    /// Recorded raw-data edges with no predicted counterpart (holes).
    pub missing: usize,
    /// Predicted edges the recording never exercised.
    pub extra: usize,
    /// Structural mismatches (recorded tasks outside the spec).
    pub mismatched: usize,
    /// One finding per hole/mismatch.
    pub report: Report,
}

impl SdgComparison {
    /// Fraction of recorded raw-data edges the prediction covers
    /// (soundness; 1.0 when the recording is empty).
    pub fn recall(&self) -> f64 {
        let total = self.matched + self.missing + self.mismatched;
        if total == 0 {
            1.0
        } else {
            self.matched as f64 / total as f64
        }
    }

    /// Fraction of predicted edges the recording exercised (precision;
    /// 1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        let total = self.matched + self.extra;
        if total == 0 {
            1.0
        } else {
            self.matched as f64 / total as f64
        }
    }

    /// Whether the recorded graph is a subgraph of the prediction.
    pub fn is_sound(&self) -> bool {
        self.missing == 0 && self.mismatched == 0
    }
}

/// The full static prediction of one workflow spec.
#[derive(Clone, Debug)]
pub struct StaticPrediction {
    /// Workflow name.
    pub workflow: String,
    /// Stage names, in execution order.
    pub stage_names: Vec<String>,
    /// Predicted tasks, in stage order.
    pub tasks: Vec<PredictedTask>,
    /// Predicted producer→consumer flows (acyclic by stage ordering).
    pub flows: Vec<PredictedFlow>,
    /// Dataset live ranges in stage coordinates.
    pub live_ranges: Vec<LiveRange>,
    /// The static Semantic Dataflow Graph. Node times encode stage
    /// indices (`start` = stage, `end` = stage + 1).
    pub sdg: Graph,
    /// The static File-Task Graph.
    pub ftg: Graph,
}

/// Resolved footprint: total bytes plus the contiguous runs they tile.
fn resolve(fp: &crate::symbolic::SymFootprint, dataset_bytes: u64) -> (u64, Vec<Extent>) {
    if fp.is_empty() {
        (0, Vec::new())
    } else if fp.top {
        (dataset_bytes, vec![Extent::new(0, dataset_bytes)])
    } else {
        (fp.hulls.total_len(), fp.hulls.runs().to_vec())
    }
}

impl StaticPrediction {
    /// Abstract-interprets every declared contract of `spec` into the
    /// static graphs. Pure spec analysis — no VFD, no trace, no run.
    pub fn from_spec(spec: &WorkflowSpec) -> Self {
        let catalog = ContractCatalog::from_spec(spec);

        // Pass 1: resolve each dataset's extent — the widest concrete
        // hull end any task declares for it, else the abstract unit.
        let mut dataset_extent: BTreeMap<(String, String), u64> = BTreeMap::new();
        for stage in &spec.stages {
            for task in &stage.tasks {
                for file in catalog.files_of(&task.name) {
                    let Some(fps) = catalog.footprints(&task.name, file) else {
                        continue;
                    };
                    for (dataset, pair) in fps {
                        let hi = [&pair.reads, &pair.writes]
                            .iter()
                            .filter(|fp| !fp.top)
                            .flat_map(|fp| fp.hulls.runs())
                            .map(|r| r.end)
                            .max()
                            .unwrap_or(0);
                        let e = dataset_extent
                            .entry((file.to_owned(), dataset.clone()))
                            .or_insert(0);
                        *e = (*e).max(hi);
                    }
                }
            }
        }
        for bytes in dataset_extent.values_mut() {
            if *bytes == 0 {
                *bytes = TOP_FOOTPRINT_BYTES;
            }
        }

        // Pass 2: per-task resolved accesses, in stage order.
        let mut tasks = Vec::with_capacity(spec.task_count());
        for (stage_idx, stage) in spec.stages.iter().enumerate() {
            for task in &stage.tasks {
                let contracted = catalog.knows(&task.name);
                let mut accesses = Vec::new();
                for file in catalog.files_of(&task.name) {
                    let Some(fps) = catalog.footprints(&task.name, file) else {
                        continue;
                    };
                    for (dataset, pair) in fps {
                        let bytes = dataset_extent[&(file.to_owned(), dataset.clone())];
                        let (read_bytes, read_runs) = resolve(&pair.reads, bytes);
                        let (write_bytes, write_runs) = resolve(&pair.writes, bytes);
                        if read_bytes == 0 && write_bytes == 0 {
                            continue;
                        }
                        accesses.push(TaskAccess {
                            file: file.to_owned(),
                            dataset: dataset.clone(),
                            read_bytes,
                            write_bytes,
                            read_runs,
                            write_runs,
                        });
                    }
                }
                tasks.push(PredictedTask {
                    name: task.name.clone(),
                    stage: stage_idx,
                    compute_ns: task.compute_ns,
                    contracted,
                    accesses,
                });
            }
        }

        // Pass 3: graphs. Same conventions as the recorded builders so
        // the two sides diff structurally; node times carry stage indices.
        let mut sdg = Graph::new(GraphKind::Sdg, spec.name.clone());
        let mut ftg = Graph::new(GraphKind::Ftg, spec.name.clone());
        for t in &tasks {
            sdg.node(NodeKind::Task, &t.name);
            ftg.node(NodeKind::Task, &t.name);
        }
        for t in &tasks {
            let (s0, s1) = (Timestamp(t.stage as u64), Timestamp(t.stage as u64 + 1));
            let tn = sdg.node(NodeKind::Task, &t.name);
            let tf = ftg.node(NodeKind::Task, &t.name);
            for a in &t.accesses {
                let stats = |bytes: u64, runs: usize| EdgeStats {
                    access_volume: bytes,
                    access_count: runs as u64,
                    data_access_count: runs as u64,
                    data_access_volume: bytes,
                    first: s0,
                    last: s1,
                    ..Default::default()
                };
                let d = sdg.node(NodeKind::Dataset, &dataset_label(&a.file, &a.dataset));
                let f = sdg.node(NodeKind::File, &a.file);
                let ff = ftg.node(NodeKind::File, &a.file);
                let moved = a.read_bytes + a.write_bytes;
                sdg.touch_node(tn, s0, s1, moved);
                sdg.touch_node(d, s0, s1, moved);
                sdg.touch_node(f, s0, s1, moved);
                ftg.touch_node(tf, s0, s1, moved);
                ftg.touch_node(ff, s0, s1, moved);
                if a.read_bytes > 0 {
                    let st = stats(a.read_bytes, a.read_runs.len());
                    sdg.edge(d, tn, Operation::ReadOnly, st.clone());
                    ftg.edge(ff, tf, Operation::ReadOnly, st);
                }
                if a.write_bytes > 0 {
                    let st = stats(a.write_bytes, a.write_runs.len());
                    sdg.edge(tn, d, Operation::WriteOnly, st.clone());
                    ftg.edge(tf, ff, Operation::WriteOnly, st);
                }
                sdg.edge(d, f, Operation::Structural, EdgeStats::default());
            }
        }
        sdg.normalize_times();
        ftg.normalize_times();

        // Pass 4: flows and live ranges. A writer feeds every reader of a
        // strictly later stage whose hulls may overlap — the stage
        // barrier makes the relation acyclic.
        let mut writers: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut readers: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (i, t) in tasks.iter().enumerate() {
            for a in &t.accesses {
                let key = (a.file.clone(), a.dataset.clone());
                if a.write_bytes > 0 {
                    writers.entry(key.clone()).or_default().push(i);
                }
                if a.read_bytes > 0 {
                    readers.entry(key).or_default().push(i);
                }
            }
        }
        let catalog_fp = |i: usize, file: &str, dataset: &str| {
            catalog
                .footprint(&tasks[i].name, file, dataset)
                .expect("access came from this footprint")
        };
        let mut flows = Vec::new();
        for ((file, dataset), ws) in &writers {
            let Some(rs) = readers.get(&(file.clone(), dataset.clone())) else {
                continue;
            };
            for &w in ws {
                for &r in rs {
                    if tasks[w].stage >= tasks[r].stage {
                        continue;
                    }
                    let wf = &catalog_fp(w, file, dataset).writes;
                    let rf = &catalog_fp(r, file, dataset).reads;
                    if wf.may_overlap(rf).is_none() {
                        continue;
                    }
                    let bytes = tasks[w]
                        .accesses
                        .iter()
                        .find(|a| &a.file == file && &a.dataset == dataset)
                        .map(|a| a.write_bytes)
                        .unwrap_or(0)
                        .min(
                            tasks[r]
                                .accesses
                                .iter()
                                .find(|a| &a.file == file && &a.dataset == dataset)
                                .map(|a| a.read_bytes)
                                .unwrap_or(0),
                        );
                    flows.push(PredictedFlow {
                        producer: tasks[w].name.clone(),
                        consumer: tasks[r].name.clone(),
                        file: file.clone(),
                        dataset: dataset.clone(),
                        bytes,
                    });
                }
            }
        }
        let mut live_ranges = Vec::new();
        let touched: BTreeMap<(String, String), Vec<usize>> = {
            let mut m: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
            for (key, v) in writers.iter().chain(readers.iter()) {
                m.entry(key.clone()).or_default().extend(v.iter().copied());
            }
            m
        };
        for ((file, dataset), ts) in &touched {
            let born = writers
                .get(&(file.clone(), dataset.clone()))
                .map(|ws| ws.iter().map(|&i| tasks[i].stage).min().unwrap_or(0))
                .unwrap_or_else(|| ts.iter().map(|&i| tasks[i].stage).min().unwrap_or(0));
            let dies = ts.iter().map(|&i| tasks[i].stage).max().unwrap_or(born);
            live_ranges.push(LiveRange {
                file: file.clone(),
                dataset: dataset.clone(),
                born,
                dies: dies.max(born),
                bytes: dataset_extent[&(file.clone(), dataset.clone())],
            });
        }

        Self {
            workflow: spec.name.clone(),
            stage_names: spec.stages.iter().map(|s| s.name.clone()).collect(),
            tasks,
            flows,
            live_ranges,
            sdg,
            ftg,
        }
    }

    /// The predicted task entry for `name`.
    pub fn task(&self, name: &str) -> Option<&PredictedTask> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Converts the prediction into a simulator DAG: one [`SimTask`] per
    /// predicted task, dependencies from the predicted flows (not the
    /// stage barriers — the sSDG exposes the *dataflow* parallelism a
    /// scheduler could exploit), program = modeled compute followed by
    /// one I/O op per resolved run.
    pub fn to_sim_tasks(&self) -> Vec<SimTask> {
        let index: HashMap<&str, usize> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); self.tasks.len()];
        for f in &self.flows {
            if let (Some(&p), Some(&c)) = (
                index.get(f.producer.as_str()),
                index.get(f.consumer.as_str()),
            ) {
                deps[c].insert(p);
            }
        }
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut program = Vec::new();
                if t.compute_ns > 0 {
                    program.push(SimOp::compute(t.compute_ns));
                }
                for a in &t.accesses {
                    for r in &a.read_runs {
                        program.push(SimOp::read(a.file.clone(), r.len()));
                    }
                    for w in &a.write_runs {
                        program.push(SimOp::write(a.file.clone(), w.len()));
                    }
                }
                let mut d: Vec<usize> = deps[i].iter().copied().collect();
                d.sort_unstable();
                SimTask::new(t.name.clone()).after(&d).with_program(program)
            })
            .collect()
    }

    /// Diffs a recorded SDG against the prediction (see the module docs
    /// for the raw-data restriction). Every hole becomes a
    /// [`Finding::IncompleteContract`], every recorded task outside the
    /// spec a [`Finding::GraphMismatch`].
    pub fn compare(&self, recorded: &Graph) -> SdgComparison {
        let spec_tasks: HashSet<&str> = self.tasks.iter().map(|t| t.name.as_str()).collect();
        // Predicted edge set: (task, file, dataset, is_read).
        let mut predicted: HashMap<(String, String, String, bool), bool> = HashMap::new();
        for t in &self.tasks {
            for a in &t.accesses {
                if a.read_bytes > 0 {
                    predicted.insert(
                        (t.name.clone(), a.file.clone(), a.dataset.clone(), true),
                        false,
                    );
                }
                if a.write_bytes > 0 {
                    predicted.insert(
                        (t.name.clone(), a.file.clone(), a.dataset.clone(), false),
                        false,
                    );
                }
            }
        }

        let mut cmp = SdgComparison::default();
        for e in &recorded.edges {
            if e.stats.data_access_count == 0 {
                continue;
            }
            let (from, to) = (&recorded.nodes[e.from], &recorded.nodes[e.to]);
            // Only task↔dataset raw-data edges carry contract semantics.
            let (task, dataset_node, is_read) = match (from.kind, to.kind) {
                (NodeKind::Dataset, NodeKind::Task) => (to, from, true),
                (NodeKind::Task, NodeKind::Dataset) => (from, to, false),
                _ => continue,
            };
            let Some((file, dataset)) = dataset_node.label.split_once(':') else {
                continue;
            };
            // Unattributed raw I/O (global-heap payloads, superblock bytes)
            // carries the File-Metadata pseudo-object: contracts describe
            // dataset footprints, not file plumbing, so — exactly as in the
            // conformance pass — it is out of scope for containment.
            if dataset == dayu_trace::ObjectKey::file_metadata().as_str() {
                continue;
            }
            if !spec_tasks.contains(task.label.as_str()) {
                cmp.mismatched += 1;
                cmp.report.push(Finding::GraphMismatch {
                    from: from.label.clone(),
                    to: to.label.clone(),
                    detail: format!("task {:?} is not in the workflow spec", task.label),
                });
                continue;
            }
            let key = (
                task.label.clone(),
                file.to_owned(),
                dataset.to_owned(),
                is_read,
            );
            match predicted.get_mut(&key) {
                Some(used) => {
                    *used = true;
                    cmp.matched += 1;
                }
                None => {
                    cmp.missing += 1;
                    cmp.report.push(Finding::IncompleteContract {
                        task: task.label.clone(),
                        file: file.to_owned(),
                        dataset: dataset.to_owned(),
                        access: if is_read { "read" } else { "write" }.to_owned(),
                        bytes: e.stats.data_access_volume,
                    });
                }
            }
        }
        cmp.extra = predicted.values().filter(|used| !**used).count();
        cmp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dayu_workflow::contract::{AffineExpr, IoContract, SymExtent};
    use dayu_workflow::spec::{TaskSpec, WorkflowSpec};

    fn chunked_spec() -> WorkflowSpec {
        // Two writers partition /raw by bound affine chunks; a reader
        // consumes the whole dataset in the next stage.
        let i = AffineExpr::var("i");
        let writer = |name: &str, idx: i64| {
            TaskSpec::new(name, |_| Ok(()))
                .with_compute(100)
                .with_contract(IoContract::new().bind("i", idx).writes(
                    "part.h5",
                    "/raw",
                    SymExtent::span(i.clone() * 4096, (i.clone() + 1) * 4096),
                ))
        };
        WorkflowSpec::new("chunks")
            .stage("write", vec![writer("w0", 0), writer("w1", 1)])
            .stage(
                "read",
                vec![TaskSpec::new("r", |_| Ok(()))
                    .with_contract(IoContract::new().reads_all("part.h5", "/raw"))],
            )
    }

    #[test]
    fn bound_extents_resolve_exactly_and_top_inherits_them() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        assert_eq!(p.task("w0").unwrap().bytes_written(), 4096);
        assert_eq!(p.task("w1").unwrap().bytes_written(), 4096);
        // The reader's ⊤ clause resolves to the widest declared hull end.
        assert_eq!(p.task("r").unwrap().bytes_read(), 8192);
        assert!(p.task("r").unwrap().contracted);
    }

    #[test]
    fn unbounded_datasets_cost_the_abstract_unit() {
        let spec = WorkflowSpec::new("tops")
            .stage(
                "w",
                vec![TaskSpec::new("w", |_| Ok(()))
                    .with_contract(IoContract::new().writes_all("f.h5", "/d"))],
            )
            .stage(
                "r",
                vec![TaskSpec::new("r", |_| Ok(()))
                    .with_contract(IoContract::new().reads_all("f.h5", "/d"))],
            );
        let p = StaticPrediction::from_spec(&spec);
        assert_eq!(p.task("w").unwrap().bytes_written(), TOP_FOOTPRINT_BYTES);
        assert_eq!(p.task("r").unwrap().bytes_read(), TOP_FOOTPRINT_BYTES);
    }

    #[test]
    fn sdg_follows_recorded_conventions() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        assert_eq!(p.sdg.kind, GraphKind::Sdg);
        let d = p
            .sdg
            .find(NodeKind::Dataset, "part.h5:/raw")
            .expect("dataset node");
        let r = p.sdg.find(NodeKind::Task, "r").unwrap();
        let w0 = p.sdg.find(NodeKind::Task, "w0").unwrap();
        let f = p.sdg.find(NodeKind::File, "part.h5").unwrap();
        assert!(p
            .sdg
            .edges
            .iter()
            .any(|e| e.from == d.id && e.to == r.id && e.op == Operation::ReadOnly));
        assert!(p
            .sdg
            .edges
            .iter()
            .any(|e| e.from == w0.id && e.to == d.id && e.op == Operation::WriteOnly));
        assert!(p
            .sdg
            .edges
            .iter()
            .any(|e| e.from == d.id && e.to == f.id && e.op == Operation::Structural));
        // Stage indices rode in on the node times.
        assert_eq!(p.sdg.find(NodeKind::Task, "w0").unwrap().start.0, 0);
        assert_eq!(r.start.0, 1);
        // The sFTG collapses the dataset layer.
        assert_eq!(p.ftg.nodes_of(NodeKind::Dataset).count(), 0);
        assert!(p.ftg.find(NodeKind::File, "part.h5").is_some());
    }

    #[test]
    fn flows_cross_stages_and_respect_hull_disjointness() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        // Both writers feed the reader; the writers never feed each other.
        let mut pairs: Vec<(String, String)> = p
            .flows
            .iter()
            .map(|f| (f.producer.clone(), f.consumer.clone()))
            .collect();
        pairs.sort();
        assert_eq!(
            pairs,
            vec![
                ("w0".to_owned(), "r".to_owned()),
                ("w1".to_owned(), "r".to_owned())
            ]
        );
        // Flow bytes are the min of the two sides: each writer hands over
        // at most its own chunk.
        assert!(p.flows.iter().all(|f| f.bytes == 4096));

        // A disjoint-hull reader gets no flow.
        let i = AffineExpr::var("i");
        let spec = WorkflowSpec::new("disjoint")
            .stage(
                "w",
                vec![TaskSpec::new("w", |_| Ok(())).with_contract(
                    IoContract::new().bind("i", 0).writes(
                        "f.h5",
                        "/d",
                        SymExtent::span(i.clone() * 100, i.clone() * 100 + 100),
                    ),
                )],
            )
            .stage(
                "r",
                vec![
                    TaskSpec::new("r", |_| Ok(())).with_contract(IoContract::new().reads(
                        "f.h5",
                        "/d",
                        SymExtent::bytes(500, 600),
                    )),
                ],
            );
        assert!(StaticPrediction::from_spec(&spec).flows.is_empty());
    }

    #[test]
    fn live_ranges_span_producer_to_last_reader() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        let lr = p
            .live_ranges
            .iter()
            .find(|l| l.dataset == "/raw")
            .expect("live range");
        assert_eq!((lr.born, lr.dies), (0, 1));
        assert_eq!(lr.bytes, 8192);
    }

    #[test]
    fn sim_dag_mirrors_flows() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        let tasks = p.to_sim_tasks();
        assert_eq!(tasks.len(), 3);
        let r = tasks.iter().find(|t| t.name == "r").unwrap();
        assert_eq!(r.deps.len(), 2, "reader waits for both writers");
        assert_eq!(r.total_io_bytes(), 8192);
        let w0 = tasks.iter().find(|t| t.name == "w0").unwrap();
        assert!(w0.deps.is_empty());
        assert_eq!(w0.total_io_bytes(), 4096);
        assert!(w0.program.iter().any(|op| !op.is_io()), "compute op kept");
    }

    #[test]
    fn compare_matches_a_faithful_recording() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        // A "recording" that is exactly the prediction is sound and
        // fully precise.
        let cmp = p.compare(&p.sdg);
        assert!(cmp.is_sound(), "{:?}", cmp.report);
        assert_eq!(cmp.extra, 0);
        assert_eq!(cmp.recall(), 1.0);
        assert_eq!(cmp.precision(), 1.0);
    }

    #[test]
    fn compare_flags_holes_and_unknown_tasks() {
        let p = StaticPrediction::from_spec(&chunked_spec());
        let mut recorded = p.sdg.clone();
        // An undeclared raw-data write by a known task → hole.
        let t = recorded.node(NodeKind::Task, "w0");
        let d = recorded.node(NodeKind::Dataset, "part.h5:/secret");
        recorded.edge(
            t,
            d,
            Operation::WriteOnly,
            EdgeStats {
                data_access_count: 1,
                data_access_volume: 64,
                ..Default::default()
            },
        );
        // A task the spec never declared → structural mismatch.
        let ghost = recorded.node(NodeKind::Task, "ghost");
        let raw = recorded.node(NodeKind::Dataset, "part.h5:/raw");
        recorded.edge(
            raw,
            ghost,
            Operation::ReadOnly,
            EdgeStats {
                data_access_count: 1,
                data_access_volume: 8,
                ..Default::default()
            },
        );
        // A metadata-only edge never counts either way.
        recorded.edge(
            d,
            recorded.find(NodeKind::Task, "r").unwrap().id,
            Operation::ReadOnly,
            EdgeStats {
                metadata_access_count: 3,
                metadata_access_volume: 96,
                ..Default::default()
            },
        );
        let cmp = p.compare(&recorded);
        assert!(!cmp.is_sound());
        assert_eq!(cmp.missing, 1);
        assert_eq!(cmp.mismatched, 1);
        let cats: Vec<&str> = cmp.report.findings.iter().map(|f| f.category()).collect();
        assert!(cats.contains(&"incomplete-contract"));
        assert!(cats.contains(&"graph-mismatch"));
        assert!(cmp.recall() < 1.0);
    }

    #[test]
    fn uncontracted_tasks_predict_nothing() {
        let spec = WorkflowSpec::new("bare").stage("s", vec![TaskSpec::new("t", |_| Ok(()))]);
        let p = StaticPrediction::from_spec(&spec);
        let t = p.task("t").unwrap();
        assert!(!t.contracted);
        assert!(t.accesses.is_empty());
        assert_eq!(p.sdg.edges.len(), 0);
    }
}
