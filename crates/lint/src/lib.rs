//! # dayu-lint
//!
//! Static analysis for the DaYu stack: every pass here runs **without
//! executing the simulator**, answering "is this workflow / trace / file
//! safe?" from structure alone. The passes share one diagnostic model
//! ([`Finding`] / [`Report`]):
//!
//! 1. **Dataflow-hazard analysis** ([`hazard`]) — over a replay plan
//!    (`SimTask`s), a declared [`WorkflowSpec`](dayu_workflow::WorkflowSpec),
//!    or a recorded [`TraceBundle`](dayu_trace::TraceBundle): write-write
//!    races, reads before any ordered producer, reads after stage-out/drop,
//!    and references to files nothing produces. Recorded traces that carry
//!    stage membership are judged by the happens-before engine ([`hb`]) at
//!    byte-extent granularity ([`extent`]): only *concurrent* tasks whose
//!    raw-data extents overlap race — disjoint-extent parallelism is safe
//!    by construction and never flagged.
//!    1b. **Dataset lifetime analysis** ([`lifetime`]) — use-after-close,
//!    dataset-granularity read-before-write, and (opt-in) dead datasets
//!    and redundant full overwrites, the waste class the advisor turns
//!    into elision suggestions.
//! 2. **Transform semantics-preservation verification** ([`verify`]) — the
//!    optimizer's plan rewrites (`dayu_workflow::transform`) are checked to
//!    introduce no new hazards and break no producer→consumer ordering;
//!    violating transforms are rolled back. `dayu_core::auto::optimize`
//!    applies every rewrite through this gate.
//! 3. **Format fsck** ([`fsck`]) — a structural walk of a raw `dayu-hdf`
//!    file image: superblock/object-header invariants, chunk-index entries
//!    inside the allocated file, live global-heap references, and no two
//!    structures claiming the same bytes.
//!    3b. **Format repair** ([`repair`]) — best-effort in-place reconstruction
//!    of a damaged image: journal roll-forward/back, superblock surgery,
//!    then an iterative prune that detaches whatever fsck still flags.
//! 4. **Symbolic contract passes** ([`symbolic`], [`contract`]) — declared
//!    [`IoContract`](dayu_workflow::IoContract) footprints compiled to a
//!    hull algebra ([`ContractCatalog`]). Statically ([`analyze_contracts`])
//!    they prove or refute extent races, read-before-write and
//!    use-after-dispose from the spec alone — before any VFD is opened;
//!    dynamically ([`ConformanceChecker`]) a recorded trace is replayed
//!    against them to flag out-of-footprint I/O and never-exercised
//!    declarations. The contract catalog exposes the same disjointness
//!    oracle as the recorded [`ExtentCatalog`], so the transform verifier
//!    can discharge a `parallelize` from semantics alone.
//! 5. **Static dataflow prediction** ([`static_graph`], [`cost`]) — the
//!    contracts, interpreted abstractly, predict the analyzer's graphs
//!    before any run: a static FTG/sSDG with producer→consumer flows and
//!    dataset live ranges ([`StaticPrediction`]), annotated by an abstract
//!    cost model ([`cost_model`]) with per-task/per-stage bytes, op counts
//!    under a chosen I/O engine, working sets vs cache capacity and the
//!    symbolic critical path. Recorded SDGs validate against the
//!    prediction ([`StaticPrediction::compare`]): an unpredicted raw-data
//!    edge is a contract hole ([`Finding::IncompleteContract`]), and the
//!    plan-DAG walk ([`plan_critical_path_bytes`]) scores optimizer
//!    candidates by predicted critical-path bytes.
//!
//! CLI entry points: `dayu-analyze check <trace.{jsonl,dtb}>` (passes 1 and
//! 1b over a recorded trace, with `--json` / `--deny <class>` for CI
//! gating, plus `--contracts <workload>` for passes 4) and
//! `dayu-h5ls --fsck [--repair] <file>` (passes 3/3b).

pub mod contract;
pub mod cost;
pub mod extent;
pub mod fsck;
pub mod hazard;
pub mod hb;
pub mod lifetime;
pub mod model;
pub mod repair;
pub mod static_graph;
pub mod symbolic;
pub mod verify;

pub use contract::{
    analyze_contracts, check_conformance, check_conformance_stream, ConformanceChecker,
};
pub use cost::{cost_model, plan_critical_path_bytes, CostConfig, CostReport, StageCost, TaskCost};
pub use extent::{Extent, ExtentCatalog, ExtentSet, IntervalTree, TaskFileExtents};
pub use fsck::fsck_bytes;
pub use hazard::{
    analyze_bundle, analyze_plan, analyze_sim_tasks, analyze_spec, analyze_stream,
    plan_from_sim_tasks, plan_from_spec, Access, AccessDecl, LintConfig, PlanTask, TraceChecker,
};
pub use hb::{OpCtx, TaskHb};
pub use lifetime::LifetimePass;
pub use model::{Finding, FindingKey, Report};
pub use repair::{repair_bytes, RepairReport};
pub use static_graph::{
    LiveRange, PredictedFlow, PredictedTask, SdgComparison, StaticPrediction, TaskAccess,
    TOP_FOOTPRINT_BYTES,
};
pub use symbolic::{ContractCatalog, FootprintOracle, SymCollision, SymFootprint};
pub use verify::{
    check, snapshot, snapshot_with, verified, verified_with_contracts, verified_with_extents,
    verified_with_oracles, PlanSnapshot, SemanticsViolation,
};
